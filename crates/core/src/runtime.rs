//! The parallel intervention runtime.
//!
//! The paper's algorithms are strictly sequential: every decision
//! (keep a PVT, recurse into a partition) depends on the score of the
//! previous intervention. What *can* run concurrently is the
//! expensive part — materializing candidate datasets and running the
//! system under diagnosis on them. This module exploits that split
//! with **speculation as cache warming**:
//!
//! 1. An algorithm plans the next few candidate datasets a serial run
//!    *might* query (under explicit hypotheses about its own
//!    decisions) and hands them to
//!    [`InterventionRuntime::speculate`].
//! 2. A parallel runtime ([`ParOracle`]) materializes and scores them
//!    on worker threads, each holding its own [`System`] instance
//!    built by a [`SystemFactory`], into a shared, lock-guarded
//!    fingerprint cache. **No interventions are charged.**
//! 3. The algorithm then replays its decisions exactly as a serial
//!    run would, charging interventions one by one through
//!    [`InterventionRuntime::intervene`]; queries the speculation
//!    guessed right become cache hits. Candidates a serial run would
//!    never have reached are simply discarded.
//!
//! Synchronous [`InterventionRuntime::speculate`] batches block until
//! every job is scored — right for the handful of frames the caller
//! consumes immediately (greedy plans, a GT node's own two halves).
//! Deep group-testing lookahead instead queues **detached** jobs
//! ([`InterventionRuntime::speculate_detached`]): fully owned
//! [`DetachedSpeculation`]s drained FIFO by a persistent background
//! pool while the serial replay keeps running. A frame still in
//! flight when the replay asks for it is simply a cache miss (the
//! replay scores it itself; the racing duplicate is harmless — same
//! deterministic score, idempotent insert), and frontier frames the
//! search never asks for are counted as *speculative waste*
//! ([`CacheStats::speculative_waste`]).
//!
//! Because all charging and all decisions flow through `intervene` in
//! serial order, explanations, malfunction scores, and intervention
//! counts are **bit-for-bit identical for any thread count and any
//! lookahead depth** (the paper's Fig 7/Fig 9 numbers are preserved);
//! only wall-clock time and the cache hit/miss/speculation counters
//! change. `tests/parallel_conformance.rs` pins this invariant across
//! every bundled scenario, `num_threads` in {1, 2, 8}, and
//! `gt_speculation_depth` in {0, 1, 2, 4}.

use crate::cache::ScoreCache;
use crate::config::{OracleSampling, SpeculationMode};
use crate::error::Result;
use crate::oracle::{sanitize, CacheStats, Oracle, SampledDecider, System, SystemFactory};
use crate::pvt::{apply_composition, Pvt};
use dp_frame::DataFrame;
use dp_trace::{
    Event, LatencyHistogram, MetricsShard, OracleQuerySpan, QueryKind, QueryStat, RunMetrics,
    SampledQuerySpan, Tracer,
};
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

// Under `RUSTFLAGS="--cfg loom"` the pool's synchronization
// primitives and worker threads swap to the loom shim so the model
// tests in tests/loom_model.rs can perturb their interleavings. The
// shim's `sync::Arc` is the std `Arc` re-exported, so both cfgs
// share one set of types.
#[cfg(loom)]
use loom::sync::{Arc, Condvar, Mutex};
#[cfg(loom)]
use loom::thread as pool_thread;
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex};
#[cfg(not(loom))]
use std::thread as pool_thread;

/// One candidate dataset an algorithm may query soon.
pub enum Speculation<'a> {
    /// Already materialized by the caller (e.g. because its
    /// transformation consumes the algorithm's RNG stream, which must
    /// advance on the main thread).
    Ready(DataFrame),
    /// To be materialized by applying the composition of `pvts` (in
    /// the given order) to `base`, consuming `rng` — a snapshot of
    /// the exact RNG state a serial run would hold at this point, so
    /// deferred materialization is reproducible.
    Apply {
        /// Transformations to compose, in application order.
        pvts: Vec<&'a Pvt>,
        /// Dataset to transform.
        base: &'a DataFrame,
        /// RNG stream snapshot to consume.
        rng: StdRng,
    },
}

/// A materialized speculation.
pub struct Speculated {
    /// The candidate dataset.
    pub frame: DataFrame,
}

fn materialize(job: Speculation<'_>) -> Result<Speculated> {
    match job {
        Speculation::Ready(frame) => Ok(Speculated { frame }),
        Speculation::Apply {
            pvts,
            base,
            mut rng,
        } => {
            let (frame, _) = apply_composition(&pvts, base, &mut rng)?;
            Ok(Speculated { frame })
        }
    }
}

/// A fully owned, fire-and-forget cache-warming job: apply the
/// composition of `pvts` to `base` consuming `rng`, then score the
/// result into the shared fingerprint cache.
///
/// Unlike [`Speculation`], nothing is borrowed and nothing is
/// returned: the group-testing lookahead queues whole recursion-tree
/// frontiers this way ([`InterventionRuntime::speculate_detached`])
/// and keeps replaying while the pool drains them in the background.
/// A materialization error in a detached job is swallowed — if the
/// serial decision path ever needs that frame, it re-materializes it
/// on the main thread and surfaces the same deterministic error.
pub struct DetachedSpeculation {
    /// Transformations to compose, in application order.
    pub pvts: Vec<Pvt>,
    /// Dataset to transform.
    pub base: Arc<DataFrame>,
    /// RNG stream to consume (derived, never shared).
    pub rng: StdRng,
}

/// The speculation executor's decision for one cold bisection node:
/// how many extra recursion levels to pre-score, and under what
/// budget. Returned by
/// [`InterventionRuntime::plan_speculation_depth`]; the group-testing
/// recursion emits it as a `SpeculationPlan` trace event.
///
/// The plan only steers cache warming. Whatever depth it picks, the
/// serial replay charges the identical query sequence, so
/// explanations are bit-identical across plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationPlan {
    /// The configured depth cap (`gt_speculation_depth`).
    pub cap: usize,
    /// Effective depth chosen (≤ `cap`).
    pub depth: usize,
    /// In-flight frame budget in force, if any.
    pub budget: Option<usize>,
    /// Mean observed cold-query latency the decision was based on,
    /// in nanoseconds (`None` when no sample existed yet).
    pub mean_query_ns: Option<u64>,
}

/// Upper bound on the frames a depth-`d` speculative frontier plans:
/// the full binary pre-bisection tree holds 2^(d+2) − 2 nodes (see
/// `group_test::plan_frontier`; small candidate sets plan fewer).
fn frontier_frames(depth: usize) -> usize {
    1usize
        .checked_shl(depth as u32 + 2)
        .map_or(usize::MAX, |v| v - 2)
}

/// The oracle abstraction the intervention algorithms run against.
///
/// [`Oracle`] implements it serially (speculation only materializes,
/// width 1); [`ParOracle`] scores speculations concurrently. The
/// charged query sequence — and therefore every result the paper
/// reports — must be identical under both.
pub trait InterventionRuntime {
    /// Score a baseline dataset (never charged; stays free forever).
    fn baseline(&mut self, df: &DataFrame) -> f64;
    /// Score a transformed dataset, charging one intervention (cached
    /// or not — an intervention is the act of asking).
    fn intervene(&mut self, df: &DataFrame) -> f64;
    /// Decide whether a transformed dataset passes at τ, charging one
    /// intervention. Returns the verdict plus the exact score when
    /// one was computed — `None` only when a confidence-bounded
    /// sampled decision settled without a full evaluation (possible
    /// only under [`crate::PrismConfig::oracle_sampling`], and only
    /// for FAIL verdicts: every passing decision carries its exact
    /// score). The default always evaluates in full, so third-party
    /// runtimes are parity-exact by construction.
    fn decide(&mut self, df: &DataFrame) -> (bool, Option<f64>) {
        let score = self.intervene(df);
        (self.passes(score), Some(score))
    }
    /// The sampled-decision record of the most recent
    /// [`InterventionRuntime::decide`] that settled without an exact
    /// score, for span emission. The default (`None`) is for runtimes
    /// that never sample.
    fn last_sampled_query(&self) -> Option<SampledQuerySpan> {
        None
    }
    /// Materialize the given candidate datasets, and — in parallel
    /// runtimes — score them into the fingerprint cache without
    /// charging interventions.
    fn speculate(&mut self, jobs: Vec<Speculation<'_>>) -> Result<Vec<Speculated>>;
    /// Queue owned cache-warming jobs to run **asynchronously**: the
    /// call returns immediately and worker threads materialize and
    /// score the jobs while the caller keeps replaying its serial
    /// decisions. Serial runtimes (and `num_threads ≤ 1`) drop the
    /// jobs unexecuted — a serial run would never have asked.
    fn speculate_detached(&mut self, jobs: Vec<DetachedSpeculation>);
    /// How many candidates per batch are worth planning ahead (1 ⇒
    /// don't speculate: plan lazily exactly as the serial algorithm
    /// would).
    fn speculation_width(&self) -> usize;
    /// Decide how deep to speculate at one cold group-testing node,
    /// given the configured cap. The default — and the static
    /// executor's behavior — is the cap itself; adaptive runtimes
    /// read their live latency/waste metrics here. Must never exceed
    /// `cap`, and must not affect charged queries (the plan only
    /// steers cache warming).
    fn plan_speculation_depth(&mut self, cap: usize) -> SpeculationPlan {
        SpeculationPlan {
            cap,
            depth: cap,
            budget: None,
            mean_query_ns: None,
        }
    }
    /// Whether a score is acceptable (`m ≤ τ`).
    fn passes(&self, score: f64) -> bool;
    /// Whether the intervention budget is exhausted.
    fn exhausted(&self) -> bool;
    /// Interventions charged so far.
    fn interventions(&self) -> usize;
    /// The acceptable-malfunction threshold `τ`.
    fn threshold(&self) -> f64;
    /// Cache counters accumulated so far.
    fn cache_stats(&self) -> CacheStats;
    /// Full run metrics accumulated so far (parallel runtimes settle
    /// background speculation first and fold in per-worker shards).
    /// The default derives what it can from [`CacheStats`] so
    /// third-party runtimes keep compiling.
    fn run_metrics(&self) -> RunMetrics {
        let stats = self.cache_stats();
        RunMetrics {
            charged_queries: stats.interventions as u64,
            cache_hits: stats.hits as u64,
            cache_misses: stats.misses as u64,
            speculative_evaluated: stats.speculative as u64,
            speculative_wasted: stats.speculative_waste as u64,
            lint_pruned: stats.lint_pruned as u64,
            lint_subsumed: stats.lint_subsumed as u64,
            ..RunMetrics::default()
        }
    }
    /// Cache behaviour of the most recent `baseline`/`intervene`
    /// query, for span emission. The default (an empty stat) is for
    /// third-party runtimes that don't track it.
    fn last_query(&self) -> QueryStat {
        QueryStat::default()
    }
    /// Name of the system under diagnosis.
    fn system_name(&self) -> String;
}

/// Charge one intervention through `rt` and emit the matching
/// [`OracleQuerySpan`] event. The span fields come from
/// [`InterventionRuntime::last_query`], read only when a sink is
/// attached.
pub(crate) fn intervene_traced<R: InterventionRuntime + ?Sized>(
    rt: &mut R,
    df: &DataFrame,
    tracer: &Tracer,
) -> f64 {
    let score = rt.intervene(df);
    if tracer.enabled() {
        let q = rt.last_query();
        tracer.emit(|| {
            Event::OracleQuery(OracleQuerySpan {
                kind: QueryKind::Intervention,
                fingerprint: q.fingerprint,
                score,
                cached: q.cached,
                speculative_hit: q.speculative_hit,
                latency_ns: q.latency_ns,
            })
        });
    }
    score
}

/// Decide one pass/fail verdict through `rt` and emit the matching
/// event: an [`OracleQuerySpan`] when the decision computed an exact
/// score, an [`Event::SampledQuery`] when it settled on a sample.
pub(crate) fn decide_traced<R: InterventionRuntime + ?Sized>(
    rt: &mut R,
    df: &DataFrame,
    tracer: &Tracer,
) -> (bool, Option<f64>) {
    let (passes, score) = rt.decide(df);
    if tracer.enabled() {
        match score {
            Some(score) => {
                let q = rt.last_query();
                tracer.emit(|| {
                    Event::OracleQuery(OracleQuerySpan {
                        kind: QueryKind::Intervention,
                        fingerprint: q.fingerprint,
                        score,
                        cached: q.cached,
                        speculative_hit: q.speculative_hit,
                        latency_ns: q.latency_ns,
                    })
                });
            }
            None => {
                if let Some(span) = rt.last_sampled_query() {
                    tracer.emit(|| Event::SampledQuery(span));
                }
            }
        }
    }
    (passes, score)
}

/// Score a baseline through `rt` and emit the matching
/// [`OracleQuerySpan`] event (kind [`QueryKind::Baseline`]).
pub(crate) fn baseline_traced<R: InterventionRuntime + ?Sized>(
    rt: &mut R,
    df: &DataFrame,
    tracer: &Tracer,
) -> f64 {
    let score = rt.baseline(df);
    if tracer.enabled() {
        let q = rt.last_query();
        tracer.emit(|| {
            Event::OracleQuery(OracleQuerySpan {
                kind: QueryKind::Baseline,
                fingerprint: q.fingerprint,
                score,
                cached: q.cached,
                speculative_hit: q.speculative_hit,
                latency_ns: q.latency_ns,
            })
        });
    }
    score
}

impl InterventionRuntime for Oracle<'_> {
    fn baseline(&mut self, df: &DataFrame) -> f64 {
        Oracle::baseline(self, df)
    }

    fn intervene(&mut self, df: &DataFrame) -> f64 {
        Oracle::intervene(self, df)
    }

    fn decide(&mut self, df: &DataFrame) -> (bool, Option<f64>) {
        Oracle::decide(self, df)
    }

    fn last_sampled_query(&self) -> Option<SampledQuerySpan> {
        Oracle::last_sampled_query(self)
    }

    fn speculate(&mut self, jobs: Vec<Speculation<'_>>) -> Result<Vec<Speculated>> {
        jobs.into_iter().map(materialize).collect()
    }

    fn speculate_detached(&mut self, _jobs: Vec<DetachedSpeculation>) {}

    fn speculation_width(&self) -> usize {
        1
    }

    fn passes(&self, score: f64) -> bool {
        Oracle::passes(self, score)
    }

    fn exhausted(&self) -> bool {
        Oracle::exhausted(self)
    }

    fn interventions(&self) -> usize {
        self.interventions
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn cache_stats(&self) -> CacheStats {
        Oracle::cache_stats(self)
    }

    fn run_metrics(&self) -> RunMetrics {
        Oracle::run_metrics(self)
    }

    fn last_query(&self) -> QueryStat {
        Oracle::last_query(self)
    }

    fn system_name(&self) -> String {
        Oracle::system_name(self)
    }
}

/// Shared (worker-visible) cache state: fingerprint → score and the
/// set of speculatively scored fingerprints no charged query has
/// consumed yet (the speculative-waste numerator). Evaluation
/// *counts* live outside the lock, in per-worker
/// [`MetricsShard`]s, so workers never contend on the cache mutex
/// just to bump a counter.
struct SharedCache {
    map: HashMap<u64, f64>,
    unconsumed: HashSet<u64>,
}

/// The detached-job pool shared between [`ParOracle`] and its
/// persistent background workers: a FIFO of owned jobs plus a count
/// of jobs enqueued or in flight, so the runtime can wait for
/// quiescence before reporting final cache counters.
struct Pool {
    state: Mutex<PoolState>,
    /// Signals workers that jobs arrived (or shutdown was requested).
    work: Condvar,
    /// Signals waiters that `pending` reached zero.
    idle: Condvar,
}

struct PoolState {
    queue: VecDeque<DetachedSpeculation>,
    /// Jobs enqueued or currently executing.
    pending: usize,
    shutdown: bool,
    /// High-water mark of `pending` over the pool's lifetime.
    peak_pending: usize,
    /// Queued jobs shed by backpressure (oldest first) when an
    /// enqueue would have pushed `pending` past the budget.
    shed: u64,
    /// Queued jobs discarded at settle/shutdown: the search
    /// terminated before any worker started them, so they cost
    /// nothing and are not waste.
    discarded: u64,
}

/// Parallel intervention runtime: an [`Oracle`]-equivalent whose
/// speculation batches are scored by `num_threads` worker threads
/// (one independent [`System`] instance each, built lazily from the
/// factory) into a shared fingerprint cache. Detached lookahead jobs
/// ([`InterventionRuntime::speculate_detached`]) run on a persistent
/// background pool of another `num_threads` workers that outlives
/// individual calls, overlapping with the charged replay.
///
/// With `num_threads ≤ 1` speculation degenerates to serial
/// materialization with no pre-scoring — a true serial baseline.
pub struct ParOracle<'a> {
    factory: &'a dyn SystemFactory,
    workers: Vec<Box<dyn System + Send>>,
    /// Acceptable-malfunction threshold `τ`.
    pub threshold: f64,
    /// Interventions charged so far (thread-count invariant).
    pub interventions: usize,
    /// Hard intervention cap.
    pub budget: usize,
    num_threads: usize,
    /// How the speculation executor schedules lookahead (static
    /// fixed-depth or the adaptive latency-driven controller).
    speculation: SpeculationMode,
    /// Caller-configured in-flight frame bound
    /// (`PrismConfig::speculation_budget`); `None` falls back to the
    /// mode's default (unbounded for Static, derived for Adaptive).
    budget_override: Option<usize>,
    hits: usize,
    misses: usize,
    warm_hits: u64,
    baseline_queries: u64,
    speculative_issued: u64,
    speculative_used: u64,
    query_latency: LatencyHistogram,
    last: QueryStat,
    /// One shard per sync-speculation worker slot (same index as
    /// `workers`), bumped lock-free on the worker's query path.
    sync_shards: Vec<Arc<MetricsShard>>,
    /// One shard per detached-pool worker.
    pool_shards: Vec<Arc<MetricsShard>>,
    cache: Arc<Mutex<SharedCache>>,
    free: HashSet<u64>,
    /// Fingerprints seeded from a cross-run [`ScoreCache`] before the
    /// run started, for [`RunMetrics::warm_hits`] accounting. Seeded
    /// entries never enter `unconsumed`: a warm start is not
    /// speculation and must not read as speculative waste.
    warm: HashSet<u64>,
    /// The confidence-bounded sampled decision procedure (inert under
    /// [`OracleSampling::Off`], the default). Sample probes are
    /// scored synchronously on the primary worker; on parallel runs
    /// speculation usually pre-scores candidate frames into the
    /// shared cache first, making the sampler mostly a no-op there.
    sampling: SampledDecider,
    pool: Option<Arc<Pool>>,
    pool_workers: Vec<pool_thread::JoinHandle<()>>,
}

impl<'a> ParOracle<'a> {
    /// Wrap a system factory with threshold `τ`, an intervention
    /// budget, and a worker count.
    pub fn new(
        factory: &'a dyn SystemFactory,
        threshold: f64,
        budget: usize,
        num_threads: usize,
    ) -> Self {
        ParOracle {
            factory,
            workers: Vec::new(),
            threshold,
            interventions: 0,
            budget,
            num_threads: num_threads.max(1),
            speculation: SpeculationMode::Static,
            budget_override: None,
            hits: 0,
            misses: 0,
            warm_hits: 0,
            baseline_queries: 0,
            speculative_issued: 0,
            speculative_used: 0,
            query_latency: LatencyHistogram::default(),
            last: QueryStat::default(),
            sync_shards: Vec::new(),
            pool_shards: Vec::new(),
            cache: Arc::new(Mutex::new(SharedCache {
                map: HashMap::new(),
                unconsumed: HashSet::new(),
            })),
            free: HashSet::new(),
            warm: HashSet::new(),
            sampling: SampledDecider::new(OracleSampling::Off, 0),
            pool: None,
            pool_workers: Vec::new(),
        }
    }

    /// Configure the sampled decision procedure (see
    /// [`crate::PrismConfig::oracle_sampling`]); `seed` keys the
    /// per-dataset sample streams. Returns `self` for chaining.
    pub fn with_sampling(mut self, mode: OracleSampling, seed: u64) -> Self {
        self.sampling = SampledDecider::new(mode, seed);
        self
    }

    /// Configure the speculation executor: the scheduling mode and an
    /// optional in-flight frame budget (see
    /// [`crate::PrismConfig::speculation`] and
    /// [`crate::PrismConfig::speculation_budget`]). Call before the
    /// first speculation; returns `self` for chaining.
    pub fn with_speculation(mut self, mode: SpeculationMode, budget: Option<usize>) -> Self {
        self.speculation = mode;
        self.budget_override = budget;
        self
    }

    /// The in-flight frame bound actually in force: the caller's
    /// override if set, otherwise unbounded in Static mode and
    /// `8 × num_threads` (min 32) in Adaptive mode — enough frames to
    /// keep every worker busy several waves ahead without letting a
    /// slow oracle pile up unbounded work.
    pub fn effective_budget(&self) -> Option<usize> {
        match (self.budget_override, self.speculation) {
            (Some(b), _) => Some(b.max(1)),
            (None, SpeculationMode::Adaptive) => Some((8 * self.num_threads).max(32)),
            (None, SpeculationMode::Static) => None,
        }
    }

    /// Like [`ParOracle::new`], but seed the shared fingerprint cache
    /// from a cross-run [`ScoreCache`] (trace replay, snapshot, or a
    /// server-resident cache). Seeded entries behave exactly like
    /// scores the run computed itself — systems are deterministic, so
    /// the charged query sequence and every result stay bit-for-bit
    /// identical to a cold run — but they are *not* marked
    /// unconsumed (a warm start is not speculation, so an unqueried
    /// seed is not waste), and charged queries they answer are
    /// counted as [`RunMetrics::warm_hits`].
    pub fn with_warm_cache(
        factory: &'a dyn SystemFactory,
        threshold: f64,
        budget: usize,
        num_threads: usize,
        warm: &ScoreCache,
    ) -> Self {
        let rt = ParOracle::new(factory, threshold, budget, num_threads);
        {
            let mut shared = rt.cache.lock().expect("cache lock");
            for (fp, score) in warm.iter() {
                shared.map.insert(fp, score);
            }
        }
        let mut rt = rt;
        rt.warm.extend(warm.iter().map(|(fp, _)| fp));
        rt
    }

    /// Snapshot the shared fingerprint cache (seeded, charged, and
    /// speculative entries alike) into a cross-run [`ScoreCache`],
    /// after settling in-flight background speculation so the export
    /// is a quiescent, complete view.
    pub fn export_cache(&self) -> ScoreCache {
        self.settle_pool();
        let shared = self.cache.lock().expect("cache lock");
        let mut out = ScoreCache::new();
        for (&fp, &score) in &shared.map {
            out.insert(fp, score);
        }
        out
    }

    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            self.workers.push(self.factory.build());
            self.sync_shards.push(Arc::new(MetricsShard::default()));
        }
    }

    /// Spawn the persistent background pool on first use. Each worker
    /// owns its own [`System`] instance (built here, on the calling
    /// thread) and loops: pop a detached job, materialize it, score
    /// the frame into the shared cache unless some other thread
    /// already did, signal idle when the queue drains.
    fn ensure_pool(&mut self) -> Arc<Pool> {
        if let Some(pool) = &self.pool {
            return Arc::clone(pool);
        }
        let pool = Arc::new(Pool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
                peak_pending: 0,
                shed: 0,
                discarded: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        for _ in 0..self.num_threads {
            let mut system = self.factory.build();
            let pool_ref = Arc::clone(&pool);
            let cache = Arc::clone(&self.cache);
            let shard = Arc::new(MetricsShard::default());
            self.pool_shards.push(Arc::clone(&shard));
            self.pool_workers.push(pool_thread::spawn(move || loop {
                let job = {
                    let mut state = pool_ref.state.lock().expect("pool lock");
                    loop {
                        if let Some(job) = state.queue.pop_front() {
                            break Some(job);
                        }
                        if state.shutdown {
                            break None;
                        }
                        state = pool_ref.work.wait(state).expect("pool lock");
                    }
                };
                let Some(mut job) = job else { return };
                let refs: Vec<&Pvt> = job.pvts.iter().collect();
                if let Ok((frame, _)) = apply_composition(&refs, &job.base, &mut job.rng) {
                    let fp = crate::oracle::fingerprint(&frame);
                    let known = cache.lock().expect("cache lock").map.contains_key(&fp);
                    if !known {
                        // Score outside the lock; a racing duplicate
                        // evaluation is harmless (same deterministic
                        // score, idempotent insert). The evaluation
                        // count and latency go to the worker's own
                        // lock-free shard.
                        let start = Instant::now();
                        let score = sanitize(system.malfunction(&frame));
                        shard.record(start.elapsed().as_nanos() as u64);
                        let mut shared = cache.lock().expect("cache lock");
                        shared.map.insert(fp, score);
                        shared.unconsumed.insert(fp);
                    }
                }
                let mut state = pool_ref.state.lock().expect("pool lock");
                state.pending -= 1;
                if state.pending == 0 {
                    pool_ref.idle.notify_all();
                }
            }));
        }
        self.pool = Some(Arc::clone(&pool));
        pool
    }

    /// Discard detached jobs nobody started yet (the replay is past
    /// the point of consuming them) and wait for the in-flight rest
    /// to finish, so cache counters are read at quiescence. Discarded
    /// jobs are counted ([`RunMetrics::speculative_discarded`]) but
    /// are **not** waste — no worker ever evaluated them.
    fn settle_pool(&self) {
        if let Some(pool) = &self.pool {
            let mut state = pool.state.lock().expect("pool lock");
            let dropped = state.queue.len();
            state.queue.clear();
            state.pending -= dropped;
            state.discarded += dropped as u64;
            while state.pending > 0 {
                state = pool.idle.wait(state).expect("pool lock");
            }
        }
    }

    /// Score `df` through the shared cache on the primary worker,
    /// without charging.
    fn score(&mut self, fp: u64, df: &DataFrame) -> f64 {
        {
            let mut shared = self.cache.lock().expect("cache lock");
            if let Some(&score) = shared.map.get(&fp) {
                // A charged query consuming a speculatively scored
                // frame retires it from the waste set — the lookahead
                // guessed this query right.
                let speculative_hit = shared.unconsumed.remove(&fp);
                drop(shared);
                if speculative_hit {
                    self.speculative_used += 1;
                }
                self.hits += 1;
                if self.warm.contains(&fp) {
                    self.warm_hits += 1;
                }
                self.last = QueryStat {
                    fingerprint: fp,
                    cached: true,
                    speculative_hit,
                    latency_ns: None,
                };
                return score;
            }
        }
        self.misses += 1;
        self.ensure_workers(1);
        let start = Instant::now();
        let score = sanitize(self.workers[0].malfunction(df));
        let latency_ns = start.elapsed().as_nanos() as u64;
        self.query_latency.record(latency_ns);
        self.last = QueryStat {
            fingerprint: fp,
            cached: false,
            speculative_hit: false,
            latency_ns: Some(latency_ns),
        };
        self.cache.lock().expect("cache lock").map.insert(fp, score);
        score
    }

    /// Mean observed cold-query latency so far: the main thread's
    /// charged-miss histogram merged with every worker shard's
    /// speculative evaluations. `None` before the first sample.
    fn observed_mean_query_ns(&self) -> Option<u64> {
        let mut merged = self.query_latency;
        for shard in self.sync_shards.iter().chain(self.pool_shards.iter()) {
            merged.merge(&shard.snapshot());
        }
        (merged.count > 0).then(|| merged.mean_ns())
    }
}

impl InterventionRuntime for ParOracle<'_> {
    fn baseline(&mut self, df: &DataFrame) -> f64 {
        let fp = crate::oracle::fingerprint(df);
        self.free.insert(fp);
        self.baseline_queries += 1;
        // Baselines never count toward the hit/miss split either — the
        // problem definition assumes the two baseline scores are known.
        if let Some(&score) = self.cache.lock().expect("cache lock").map.get(&fp) {
            self.last = QueryStat {
                fingerprint: fp,
                cached: true,
                speculative_hit: false,
                latency_ns: None,
            };
            return score;
        }
        self.ensure_workers(1);
        let start = Instant::now();
        let score = sanitize(self.workers[0].malfunction(df));
        let latency_ns = start.elapsed().as_nanos() as u64;
        // Baselines are free but their evaluations are real latency
        // samples — often the only ones the adaptive controller has
        // before the first cold node.
        self.query_latency.record(latency_ns);
        self.last = QueryStat {
            fingerprint: fp,
            cached: false,
            speculative_hit: false,
            latency_ns: Some(latency_ns),
        };
        self.cache.lock().expect("cache lock").map.insert(fp, score);
        score
    }

    fn intervene(&mut self, df: &DataFrame) -> f64 {
        let fp = crate::oracle::fingerprint(df);
        if !self.free.contains(&fp) {
            self.interventions += 1;
        }
        self.score(fp, df)
    }

    fn decide(&mut self, df: &DataFrame) -> (bool, Option<f64>) {
        let fp = crate::oracle::fingerprint(df);
        let known =
            self.free.contains(&fp) || self.cache.lock().expect("cache lock").map.contains_key(&fp);
        let settled = if known {
            // Speculation (or a warm start) already paid for the
            // exact score — consume it through the normal charged
            // path so hit/waste accounting stays truthful.
            None
        } else {
            self.ensure_workers(1);
            let threshold = self.threshold;
            // Disjoint field borrows: the sample probes run on the
            // primary worker while the decider tracks the schedule.
            let worker = &mut self.workers[0];
            self.sampling
                .try_settle(fp, df, threshold, &mut |d| sanitize(worker.malfunction(d)))
        };
        match settled {
            Some(passes) => {
                self.interventions += 1;
                (passes, None)
            }
            None => {
                let score = self.intervene(df);
                (self.passes(score), Some(score))
            }
        }
    }

    fn last_sampled_query(&self) -> Option<SampledQuerySpan> {
        self.sampling.last
    }

    fn speculate(&mut self, jobs: Vec<Speculation<'_>>) -> Result<Vec<Speculated>> {
        if self.num_threads <= 1 || jobs.len() <= 1 {
            // Serial mode (or nothing to overlap): materialize only,
            // never pre-score — identical work to the serial oracle.
            return jobs.into_iter().map(materialize).collect();
        }
        let n_jobs = jobs.len();
        let n_workers = self.num_threads.min(n_jobs);
        self.ensure_workers(n_workers);
        self.speculative_issued += n_jobs as u64;
        // Index-tagged pop queue (reversed so workers drain in job
        // order) and one result slot per job; plain `Mutex` state
        // keeps the crate `forbid(unsafe_code)`-clean.
        let queue: Mutex<Vec<(usize, Speculation<'_>)>> =
            Mutex::new(jobs.into_iter().enumerate().rev().collect());
        let results: Vec<Mutex<Option<Result<Speculated>>>> =
            (0..n_jobs).map(|_| Mutex::new(None)).collect();
        let cache = &self.cache;
        let queue_ref = &queue;
        let results_ref = &results;
        std::thread::scope(|scope| {
            for (worker, shard) in self
                .workers
                .iter_mut()
                .zip(self.sync_shards.iter())
                .take(n_workers)
            {
                scope.spawn(move || loop {
                    let job = queue_ref.lock().expect("queue lock").pop();
                    let Some((idx, job)) = job else { break };
                    let out = materialize(job).inspect(|speculated| {
                        let fp = crate::oracle::fingerprint(&speculated.frame);
                        let known = cache.lock().expect("cache lock").map.contains_key(&fp);
                        if !known {
                            // Score outside the lock; a racing
                            // duplicate evaluation is harmless (same
                            // deterministic score, idempotent insert).
                            // Count and latency go to the worker's
                            // own lock-free shard.
                            let start = Instant::now();
                            let score = sanitize(worker.malfunction(&speculated.frame));
                            shard.record(start.elapsed().as_nanos() as u64);
                            let mut shared = cache.lock().expect("cache lock");
                            shared.map.insert(fp, score);
                            shared.unconsumed.insert(fp);
                        }
                    });
                    *results_ref[idx].lock().expect("result lock") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result lock")
                    .expect("every queued job produces a result")
            })
            .collect()
    }

    fn speculate_detached(&mut self, jobs: Vec<DetachedSpeculation>) {
        if self.num_threads <= 1 || jobs.is_empty() {
            return;
        }
        self.speculative_issued += jobs.len() as u64;
        let budget = self.effective_budget();
        let pool = self.ensure_pool();
        let mut state = pool.state.lock().expect("pool lock");
        state.pending += jobs.len();
        state.queue.extend(jobs);
        // Hard backpressure: shed the *oldest* queued frames until
        // in-flight work fits the budget again. Oldest frames belong
        // to the shallowest (soonest-replayed) part of the frontier —
        // the frames the serial replay is most likely to reach before
        // a worker would, so shedding them costs the least cache
        // warming. Jobs a worker already started cannot be shed, so
        // `pending` is bounded by budget + worker count.
        if let Some(budget) = budget {
            while state.pending > budget {
                let Some(_dropped) = state.queue.pop_front() else {
                    break;
                };
                state.pending -= 1;
                state.shed += 1;
            }
        }
        state.peak_pending = state.peak_pending.max(state.pending);
        drop(state);
        pool.work.notify_all();
    }

    fn speculation_width(&self) -> usize {
        self.num_threads
    }

    /// The adaptive controller. Reads only *observed* state — the
    /// merged latency histograms and the live waste counters — and
    /// picks a depth within the cap:
    ///
    /// - no latency sample yet → a conservative depth 1 (the first
    ///   cold node runs before any charged miss, but baselines have
    ///   usually recorded by then);
    /// - mean query < 100 µs → depth 0 (scoring overhead rivals the
    ///   query itself; only the node's own halves overlap);
    /// - < 1 ms → depth 1; ≥ 1 ms → depth 2. Deeper never pays: a
    ///   depth-d frontier plans 2^(d+2)−2 frames of which the replay
    ///   path consumes ~2 per level, and because every cold child
    ///   re-plans its own frontier, shallow planning already keeps the
    ///   pipeline one step ahead — extra depth only parks wasted
    ///   frames in front of the next node's useful ones (measured:
    ///   static depth 1–2 beats depth 4 on both gate workloads at
    ///   10 ms/query);
    /// - waste guard: until 16 speculative evaluations have completed
    ///   the plan stays within depth 1 (escalate on evidence, not
    ///   hope); after that, under two-fifths consumed backs the depth
    ///   off one level (a fully-consumed depth-2 pipeline sits at
    ///   ~0.43, so 0.4 fires exactly when depth 2 stops paying for
    ///   itself);
    /// - headroom clamp: the planned frontier (at most 2^(depth+2)−2
    ///   frames) must fit the budget slots still free. Over-issuing
    ///   would immediately shed the *previous* node's oldest frames —
    ///   the ones the serial replay consumes next — converting cache
    ///   warming into pure waste.
    ///
    /// In Static mode this returns the cap unchanged (parity with the
    /// pre-adaptive executor).
    fn plan_speculation_depth(&mut self, cap: usize) -> SpeculationPlan {
        let budget = self.effective_budget();
        if self.speculation == SpeculationMode::Static {
            return SpeculationPlan {
                cap,
                depth: cap,
                budget,
                mean_query_ns: None,
            };
        }
        let mean_query_ns = self.observed_mean_query_ns();
        let mut depth = match mean_query_ns {
            None => cap.min(1),
            Some(ns) if ns < 100_000 => 0,
            Some(ns) if ns < 1_000_000 => cap.min(1),
            Some(_) => cap.min(2),
        };
        let evaluated: u64 = self
            .sync_shards
            .iter()
            .chain(self.pool_shards.iter())
            .map(|s| s.evaluated())
            .sum();
        if evaluated < 16 {
            // No consumption track record yet: stay within one level
            // until the pipeline has proven shallow frames get used.
            depth = depth.min(1);
        } else if self.speculative_used * 5 < evaluated * 2 {
            depth = depth.saturating_sub(1);
        }
        if let Some(budget) = budget {
            let pending = match &self.pool {
                Some(pool) => pool.state.lock().expect("pool lock").pending,
                None => 0,
            };
            let headroom = budget.saturating_sub(pending);
            while depth > 0 && frontier_frames(depth) > headroom {
                depth -= 1;
            }
        }
        SpeculationPlan {
            cap,
            depth,
            budget,
            mean_query_ns,
        }
    }

    fn passes(&self, score: f64) -> bool {
        score <= self.threshold
    }

    fn exhausted(&self) -> bool {
        self.interventions >= self.budget
    }

    fn interventions(&self) -> usize {
        self.interventions
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn cache_stats(&self) -> CacheStats {
        CacheStats::from_metrics(&self.run_metrics())
    }

    fn run_metrics(&self) -> RunMetrics {
        self.settle_pool();
        let (shed, discarded, peak) = match &self.pool {
            Some(pool) => {
                let state = pool.state.lock().expect("pool lock");
                (state.shed, state.discarded, state.peak_pending as u64)
            }
            None => (0, 0, 0),
        };
        let mut metrics = RunMetrics {
            baseline_queries: self.baseline_queries,
            charged_queries: self.interventions as u64,
            cache_hits: self.hits as u64,
            cache_misses: self.misses as u64,
            warm_hits: self.warm_hits,
            speculative_issued: self.speculative_issued,
            speculative_used: self.speculative_used,
            speculative_wasted: self.cache.lock().expect("cache lock").unconsumed.len() as u64,
            speculative_shed: shed,
            speculative_discarded: discarded,
            peak_inflight: peak,
            sampled_queries: self.sampling.sampled_queries,
            escalations: self.sampling.escalations,
            rows_touched: self.sampling.rows_touched,
            query_latency: self.query_latency,
            ..RunMetrics::default()
        };
        for shard in self.sync_shards.iter().chain(self.pool_shards.iter()) {
            metrics.merge_worker(shard);
        }
        metrics
    }

    fn last_query(&self) -> QueryStat {
        self.last
    }

    fn system_name(&self) -> String {
        self.factory.name()
    }
}

impl Drop for ParOracle<'_> {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            let mut state = pool.state.lock().expect("pool lock");
            state.shutdown = true;
            let dropped = state.queue.len();
            state.pending -= dropped;
            state.discarded += dropped as u64;
            state.queue.clear();
            if state.pending == 0 {
                pool.idle.notify_all();
            }
            drop(state);
            pool.work.notify_all();
        }
        for handle in self.pool_workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Map `f` over `items` on up to `num_threads` scoped worker threads,
/// preserving item order in the output. With `num_threads ≤ 1` (or a
/// single item) this is a plain serial map, so results are identical
/// for any thread count as long as `f` is pure.
///
/// This is the fan-out primitive behind parallel discovery — per
/// attribute, per attribute pair, and per frame for the pre-filter
/// sketches — and is public so benchmarks and downstream harnesses
/// can reuse it for deterministic data-parallel work.
pub fn par_map<T, R, F>(items: Vec<T>, num_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if num_threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue_ref = &queue;
    let results_ref = &results;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..num_threads.min(n) {
            scope.spawn(move || loop {
                let item = queue_ref.lock().expect("queue lock").pop();
                let Some((idx, item)) = item else { break };
                *results_ref[idx].lock().expect("result lock") = Some(f_ref(item));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every item produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::Column;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn df(vals: &[i64]) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_ints(
            "x",
            vals.iter().map(|&v| Some(v)).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn speculation_is_never_charged() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        let frames: Vec<DataFrame> = (0..8).map(|i| df(&[i, i + 1])).collect();
        let jobs: Vec<Speculation<'_>> = frames
            .iter()
            .map(|f| Speculation::Ready(f.clone()))
            .collect();
        let out = rt.speculate(jobs).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(rt.interventions, 0, "speculation is free");
        let stats = rt.cache_stats();
        assert_eq!(stats.speculative, 8, "all eight scored by workers");
        // A later charged query of a speculated frame is a cache hit.
        rt.intervene(&frames[3]);
        assert_eq!(rt.interventions, 1);
        let stats = rt.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
    }

    #[test]
    fn serial_mode_materializes_without_scoring() {
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let factory = move || {
            let c = Arc::clone(&c2);
            move |_: &DataFrame| {
                c.fetch_add(1, Ordering::SeqCst);
                0.5
            }
        };
        let mut rt = ParOracle::new(&factory, 0.2, 100, 1);
        let jobs = vec![
            Speculation::Ready(df(&[1])),
            Speculation::Ready(df(&[2])),
            Speculation::Ready(df(&[3])),
        ];
        let out = rt.speculate(jobs).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(
            counter.load(Ordering::SeqCst),
            0,
            "serial speculation must not run the system"
        );
        assert_eq!(rt.cache_stats().speculative, 0);
    }

    #[test]
    fn par_oracle_matches_oracle_accounting() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        let base = df(&[1]);
        rt.baseline(&base);
        assert_eq!(rt.interventions, 0);
        rt.intervene(&base);
        assert_eq!(rt.interventions, 0, "baseline stays free forever");
        rt.intervene(&df(&[1, 2, 3]));
        rt.intervene(&df(&[1, 2, 3]));
        assert_eq!(rt.interventions, 2, "repeat queries are each charged");
        assert!(rt.passes(0.2) && !rt.passes(0.21));
        assert!(!rt.exhausted());
    }

    #[test]
    fn detached_jobs_score_into_the_cache_and_count_waste() {
        use rand::SeedableRng;
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        let frames: Vec<DataFrame> = (0..4).map(|i| df(&[i, i + 1])).collect();
        // No PVTs to compose: each detached job materializes its base
        // frame unchanged and scores it in the background.
        let jobs: Vec<DetachedSpeculation> = frames
            .iter()
            .map(|f| DetachedSpeculation {
                pvts: Vec::new(),
                base: Arc::new(f.clone()),
                rng: StdRng::seed_from_u64(0),
            })
            .collect();
        rt.speculate_detached(jobs);
        assert_eq!(rt.interventions, 0, "detached speculation is free");
        // Wait for the pool to finish all four jobs before settling:
        // cache_stats() discards still-queued jobs (by design — the
        // replay is past consuming them), which this test is not
        // about.
        for _ in 0..1000 {
            let evaluated: u64 = rt.pool_shards.iter().map(|s| s.evaluated()).sum();
            if evaluated == 4 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = rt.cache_stats();
        assert_eq!(stats.speculative, 4);
        assert_eq!(stats.speculative_waste, 4);
        // Charged queries consume two of them (hits); the other two
        // remain waste.
        rt.intervene(&frames[0]);
        rt.intervene(&frames[2]);
        let stats = rt.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 0));
        assert_eq!(stats.speculative_waste, 2);
        assert_eq!(rt.interventions, 2);
    }

    #[test]
    fn detached_jobs_are_dropped_on_serial_runtimes() {
        use rand::SeedableRng;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let factory = move || {
            let c = Arc::clone(&c2);
            move |_: &DataFrame| {
                c.fetch_add(1, Ordering::SeqCst);
                0.5
            }
        };
        let mut rt = ParOracle::new(&factory, 0.2, 100, 1);
        rt.speculate_detached(vec![DetachedSpeculation {
            pvts: Vec::new(),
            base: Arc::new(df(&[1])),
            rng: StdRng::seed_from_u64(0),
        }]);
        let stats = rt.cache_stats();
        assert_eq!(counter.load(Ordering::SeqCst), 0, "no background scoring");
        assert_eq!((stats.speculative, stats.speculative_waste), (0, 0));
        drop(rt); // joins nothing; no pool was ever spawned
    }

    #[test]
    fn drop_joins_the_pool_with_jobs_still_queued() {
        // Queue far more jobs than workers and drop immediately: Drop
        // must discard the unstarted tail, join cleanly, and never
        // deadlock or panic on the pending accounting.
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 2);
        let jobs: Vec<DetachedSpeculation> = (0..64)
            .map(|i| {
                use rand::SeedableRng;
                DetachedSpeculation {
                    pvts: Vec::new(),
                    base: Arc::new(df(&[i, i + 1, i + 2])),
                    rng: StdRng::seed_from_u64(0),
                }
            })
            .collect();
        rt.speculate_detached(jobs);
        drop(rt);
    }

    #[test]
    fn warm_seed_serves_queries_without_reading_as_waste() {
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&calls);
        let factory = move || {
            let c = Arc::clone(&c2);
            move |df: &DataFrame| {
                c.fetch_add(1, Ordering::SeqCst);
                df.n_rows() as f64 / 10.0
            }
        };
        let a = df(&[1]);
        let b = df(&[1, 2]);
        let mut warm = ScoreCache::new();
        warm.insert(crate::oracle::fingerprint(&a), 0.1);
        let mut rt = ParOracle::with_warm_cache(&factory, 0.2, 100, 4, &warm);
        // Seeded entry answers the charged query: no evaluation, a
        // warm hit, still one charged intervention.
        assert_eq!(rt.intervene(&a).to_bits(), 0.1f64.to_bits());
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert_eq!(rt.interventions, 1);
        rt.intervene(&b);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let m = rt.run_metrics();
        assert_eq!((m.cache_hits, m.cache_misses, m.warm_hits), (1, 1, 1));
        assert_eq!(
            m.speculative_wasted, 0,
            "unqueried seeds are not speculative waste"
        );
        // The export is a superset of the seed plus the new score.
        let out = rt.export_cache();
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(crate::oracle::fingerprint(&a)), Some(0.1));
    }

    #[test]
    fn export_absorb_reimport_round_trip() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let frames: Vec<DataFrame> = (0..3).map(|i| df(&[i, i + 1])).collect();
        let mut cross_run = ScoreCache::new();
        {
            let mut rt = ParOracle::new(&factory, 0.2, 100, 2);
            for f in &frames {
                rt.intervene(f);
            }
            cross_run.absorb(&rt.export_cache());
        }
        // Second run warm-started from the first: identical scores,
        // zero misses, all three queries warm.
        let mut rt = ParOracle::with_warm_cache(&factory, 0.2, 100, 2, &cross_run);
        for f in &frames {
            rt.intervene(f);
        }
        let m = rt.run_metrics();
        assert_eq!((m.cache_hits, m.cache_misses, m.warm_hits), (3, 0, 3));
        assert_eq!(m.charged_queries, 3, "charging is per-ask, cache or not");
    }

    #[test]
    fn par_oracle_cold_baseline_records_a_latency_sample() {
        // Regression (mirror of the serial-oracle fix): the parallel
        // runtime's cold-baseline path must also feed the latency
        // histogram, or a fresh system reaches the first cold node
        // with an empty histogram and the adaptive controller flies
        // blind.
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        rt.baseline(&df(&[1, 2]));
        let m = rt.run_metrics();
        assert!(m.query_latency.count >= 1);
        assert!(rt.last_query().latency_ns.is_some());
        // A cached repeat reports no latency at all.
        rt.baseline(&df(&[1, 2]));
        assert_eq!(rt.last_query().latency_ns, None);
    }

    #[test]
    fn backpressure_sheds_oldest_and_bounds_inflight() {
        use rand::SeedableRng;
        use std::sync::Arc as StdArc;
        // A slow oracle: each speculative evaluation blocks long
        // enough that the enqueue bursts outpace the workers.
        let calls = StdArc::new(AtomicUsize::new(0));
        let c2 = StdArc::clone(&calls);
        let factory = move || {
            let c = StdArc::clone(&c2);
            move |df: &DataFrame| {
                c.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                df.n_rows() as f64 / 10.0
            }
        };
        let budget = 4usize;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 2)
            .with_speculation(SpeculationMode::Adaptive, Some(budget));
        assert_eq!(rt.effective_budget(), Some(budget));
        // Three bursts of 8 jobs against a budget of 4: most of each
        // burst must be shed, and in-flight work must never exceed
        // budget + workers.
        for burst in 0..3 {
            let jobs: Vec<DetachedSpeculation> = (0..8)
                .map(|i| DetachedSpeculation {
                    pvts: Vec::new(),
                    base: Arc::new(df(&[burst * 100 + i, burst * 100 + i + 1])),
                    rng: StdRng::seed_from_u64(0),
                })
                .collect();
            rt.speculate_detached(jobs);
        }
        let m = rt.run_metrics();
        assert_eq!(m.speculative_issued, 24);
        assert!(
            m.speculative_shed > 0,
            "a slow oracle under a budget of {budget} must shed: {m:?}"
        );
        assert!(
            m.peak_inflight <= (budget + 2) as u64,
            "peak in-flight {} exceeds budget {budget} + 2 workers",
            m.peak_inflight
        );
        // Conservation: every issued job was evaluated, shed, or
        // discarded at settle.
        assert_eq!(
            m.speculative_evaluated + m.speculative_shed + m.speculative_discarded,
            m.speculative_issued,
            "{m:?}"
        );
    }

    #[test]
    fn static_mode_without_budget_is_unbounded() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let rt = ParOracle::new(&factory, 0.2, 100, 4);
        assert_eq!(rt.effective_budget(), None);
        let rt =
            ParOracle::new(&factory, 0.2, 100, 4).with_speculation(SpeculationMode::Adaptive, None);
        assert_eq!(
            rt.effective_budget(),
            Some(32),
            "adaptive mode derives a default bound"
        );
    }

    #[test]
    fn settle_after_termination_counts_discards_not_waste() {
        use rand::SeedableRng;
        use std::sync::Arc as StdArc;
        // Satellite audit: frames still queued when the search
        // terminates (settle) were never evaluated — they must be
        // reported as `speculative_discarded`, never as waste, and
        // the pending accounting must balance so settle cannot hang
        // or underflow.
        let calls = StdArc::new(AtomicUsize::new(0));
        let c2 = StdArc::clone(&calls);
        let factory = move || {
            let c = StdArc::clone(&c2);
            move |df: &DataFrame| {
                c.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                df.n_rows() as f64 / 10.0
            }
        };
        let mut rt = ParOracle::new(&factory, 0.2, 100, 2);
        let jobs: Vec<DetachedSpeculation> = (0..32)
            .map(|i| DetachedSpeculation {
                pvts: Vec::new(),
                base: Arc::new(df(&[i, i + 1, i + 2])),
                rng: StdRng::seed_from_u64(0),
            })
            .collect();
        rt.speculate_detached(jobs);
        // Settle immediately: the two workers have started at most a
        // couple of jobs; the rest of the queue must be discarded.
        let m = rt.run_metrics();
        assert_eq!(m.speculative_issued, 32);
        assert!(m.speculative_discarded > 0, "{m:?}");
        assert_eq!(
            m.speculative_evaluated + m.speculative_shed + m.speculative_discarded,
            32,
            "{m:?}"
        );
        // Waste counts only *evaluated-but-unconsumed* frames.
        assert_eq!(m.speculative_wasted, m.speculative_evaluated, "{m:?}");
        assert_eq!(
            calls.load(Ordering::SeqCst) as u64,
            m.speculative_evaluated,
            "discarded jobs must never have run the system"
        );
        // A second settle is stable (no double-discard of the same
        // jobs, no underflow).
        let again = rt.run_metrics();
        assert_eq!(again.speculative_discarded, m.speculative_discarded);
    }

    #[test]
    fn adaptive_plan_respects_cap_and_latency() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        // Static mode: the plan is always the cap.
        let mut rt = ParOracle::new(&factory, 0.2, 100, 4);
        assert_eq!(rt.plan_speculation_depth(3).depth, 3);
        // Adaptive, no samples yet: conservative depth 1.
        let mut rt =
            ParOracle::new(&factory, 0.2, 100, 4).with_speculation(SpeculationMode::Adaptive, None);
        let plan = rt.plan_speculation_depth(4);
        assert_eq!(plan.depth, 1);
        assert_eq!(plan.cap, 4);
        assert_eq!(plan.mean_query_ns, None);
        // After observing sub-100µs queries: depth drops to 0 (the
        // in-process system is far cheaper than frame scoring).
        rt.baseline(&df(&[1]));
        rt.intervene(&df(&[1, 2]));
        let plan = rt.plan_speculation_depth(4);
        assert!(plan.mean_query_ns.is_some());
        if plan.mean_query_ns.unwrap() < 100_000 {
            assert_eq!(plan.depth, 0, "{plan:?}");
        }
        assert!(plan.depth <= plan.cap);

        // A slow oracle (≥ 1ms/query) tiers to depth 2, but without a
        // speculative consumption track record (< 16 evaluations) the
        // plan stays within depth 1 — escalate on evidence, not hope.
        let slow_factory = || {
            |df: &DataFrame| {
                std::thread::sleep(std::time::Duration::from_millis(11));
                df.n_rows() as f64 / 10.0
            }
        };
        let mut rt = ParOracle::new(&slow_factory, 0.2, 100, 4)
            .with_speculation(SpeculationMode::Adaptive, None);
        rt.baseline(&df(&[1]));
        rt.intervene(&df(&[1, 2]));
        let plan = rt.plan_speculation_depth(4);
        assert!(plan.mean_query_ns.unwrap() >= 10_000_000);
        assert_eq!(plan.depth, 1, "no track record caps the plan at 1");
        assert_eq!(plan.budget, Some(32));

        // A tight budget override engages the headroom clamp: the
        // depth-1 frontier (6 frames) cannot fit 4 free slots, so
        // the plan steps down to depth 0.
        let mut rt = ParOracle::new(&slow_factory, 0.2, 100, 4)
            .with_speculation(SpeculationMode::Adaptive, Some(4));
        rt.baseline(&df(&[1]));
        rt.intervene(&df(&[1, 2]));
        let plan = rt.plan_speculation_depth(4);
        assert_eq!(plan.budget, Some(4));
        assert_eq!(plan.depth, 0, "{plan:?}");
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 8] {
            let out = par_map((0..100).collect::<Vec<i32>>(), threads, |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
        }
    }
}
