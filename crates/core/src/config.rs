//! Configuration of discovery and diagnosis.

use crate::profile::OutlierSpec;

/// Pre-filter policy for the pairwise independence pass.
///
/// Discovery builds per-column sketches ([`dp_stats::sketch`]) once
/// per frame and skips the exact χ²/Pearson test on pairs whose
/// sketched dependence estimate is already insignificant. The
/// estimates are exact-equivalent in the default configuration —
/// numeric estimates recover the joint-pair statistics through a
/// presence bitmap, and categorical domains at or below the sketch
/// bucket width are coded injectively (only injectively coded pairs
/// are ever screened) — so screening preserves the discovered
/// profile set bit for bit; `tests/prefilter_parity.rs` asserts this
/// on every scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prefilter {
    /// No screening: every eligible pair pays the exact test
    /// (the pre-PR-2 behavior).
    Off,
    /// Screen with the exact-equivalent estimates (floating-point
    /// slack only). The default.
    On,
    /// Like `On`, but demand the numeric estimate clear significance
    /// even after inflating it by this many standard errors — extra
    /// caution that trades screened pairs for slack against the
    /// estimate. `Threshold(0.0)` is equivalent to `On`.
    Threshold(f64),
}

impl Prefilter {
    /// The slack margin in standard-error units, or `None` when
    /// screening is disabled.
    pub fn margin(&self) -> Option<f64> {
        match self {
            Prefilter::Off => None,
            Prefilter::On => Some(0.0),
            Prefilter::Threshold(c) => Some(c.max(0.0)),
        }
    }
}

/// Which PVT classes discovery emits and with what knobs.
///
/// The paper's scope assumption (§1 "Scope") is that the *classes* of
/// candidate profiles are known for the task at hand; this struct is
/// that knowledge. The defaults enable every Fig 1 row that is cheap
/// to discover; causal profiles and pairwise selectivity are opt-in
/// because their candidate spaces are quadratic.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Emit Domain profiles (rows 1–3).
    pub domains: bool,
    /// Emit Outlier profiles (row 4) with this detector.
    pub outliers: Option<OutlierSpec>,
    /// Emit Missing profiles (row 5).
    pub missing: bool,
    /// Emit single-attribute Selectivity profiles (`attr = value`)
    /// for categorical attributes with at most this many distinct
    /// values (row 6). `None` disables.
    pub selectivity_max_domain: Option<usize>,
    /// Additionally emit pairwise Selectivity profiles
    /// (`attr = value ∧ target = value`) conjoined with this
    /// designated attribute — the shape of the paper's
    /// `gender = F ∧ high_expenditure = yes`.
    pub selectivity_pair_with: Option<String>,
    /// Emit χ² Indep profiles for categorical pairs (row 7).
    pub indep_chi2: bool,
    /// Emit Pearson Indep profiles for numeric pairs (row 8).
    pub indep_pearson: bool,
    /// Emit causal Indep profiles (row 9, expensive).
    pub indep_causal: bool,
    /// Categorical attributes with more distinct values than this do
    /// not get Domain/Indep profiles (they are effectively text).
    pub max_categorical_domain: usize,
    /// Discover **conditional profiles** (the paper's §3 extension):
    /// for each value `v` of this categorical attribute, per-slice
    /// numeric Domain profiles `⟨attr = v ⟹ Domain(A_j, …)⟩` are
    /// emitted. `None` disables conditional discovery.
    pub conditional_domains_on: Option<String>,
    /// Sketch-based screening of the O(m²) pairwise independence
    /// pass (see [`Prefilter`]).
    pub prefilter: Prefilter,
    /// Numeric tolerance when deciding whether two concretized
    /// profiles are "identical" (step 1 of §4.1).
    pub param_tolerance: f64,
    /// Also emit the alternative transformation functions Fig 1
    /// lists (winsorize for row 2, clamp for row 4, …) as additional
    /// PVTs sharing the same profile.
    pub alternative_transforms: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            domains: true,
            outliers: Some(OutlierSpec::ZScore(3.0)),
            missing: true,
            selectivity_max_domain: Some(12),
            selectivity_pair_with: None,
            indep_chi2: true,
            indep_pearson: true,
            indep_causal: false,
            max_categorical_domain: 30,
            conditional_domains_on: None,
            prefilter: Prefilter::On,
            param_tolerance: 0.02,
            alternative_transforms: false,
        }
    }
}

/// Static lint policy over the candidate PVT set (crate `dp_lint`).
///
/// The lint pass runs after discovery (or on the caller-supplied
/// candidate set) and **before any oracle query**: rules L1–L5 check
/// schema typing, violation–transform consistency, no-op coverage,
/// write conflicts, and dependency-graph sanity. The findings are
/// surfaced as [`crate::Diagnostics`] in the
/// [`crate::Explanation::lint`] field and the markdown report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lint {
    /// Skip the analysis entirely (`Explanation::lint.analyzed` is
    /// false).
    Off,
    /// Analyze and report, but diagnose the full candidate set — the
    /// pre-lint behavior with diagnostics attached. The default.
    #[default]
    Report,
    /// Analyze, report, and **drop Error-level candidates before
    /// Greedy/GT ranking**. Pruned candidates are provably futile
    /// (certified no-ops, unsatisfiable typings, fixes that cannot
    /// move their profile), so each drop saves the oracle queries a
    /// run would have spent exploring it; the count is surfaced as
    /// [`crate::CacheStats::lint_pruned`]. On candidates produced by
    /// discovery the rules never fire (discriminative PVTs have
    /// positive violation and coverage by construction), so pruning
    /// is a bit-identical no-op there — `tests/lint_parity.rs`
    /// asserts this on every scenario, thread count, and algorithm.
    Prune,
}

/// How the speculation executor schedules lookahead work.
///
/// Either way the serial-replay charging discipline is untouched:
/// speculation only warms the fingerprint cache, so explanations,
/// scores, traces, and intervention counts are bit-identical across
/// modes (asserted per cell by `tests/parallel_conformance.rs` and
/// `tests/trace_parity.rs`). The mode changes *which* frames get
/// pre-scored, never the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpeculationMode {
    /// Every cold bisection node speculates exactly
    /// `gt_speculation_depth` extra levels, and the detached pool
    /// queue is unbounded unless [`PrismConfig::speculation_budget`]
    /// says otherwise — the pre-adaptive behavior. The default.
    #[default]
    Static,
    /// An adaptive controller picks the effective depth per cold
    /// node, with `gt_speculation_depth` as the *cap*: it reads the
    /// run's live [`dp_trace::RunMetrics`] latency histogram and
    /// waste counters and speculates deep only when observed oracle
    /// latency is high (deep lookahead pays off exactly when a query
    /// costs much more than frame scoring). Also enforces a default
    /// in-flight frame budget when none is configured, so a slow
    /// oracle can never pile up unbounded speculative work.
    Adaptive,
}

impl SpeculationMode {
    /// The wire/CLI spelling (`"static"` / `"adaptive"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SpeculationMode::Static => "static",
            SpeculationMode::Adaptive => "adaptive",
        }
    }
}

/// Confidence-bounded sampled oracle queries.
///
/// With sampling on, an oracle query may first estimate `m_S(D)` on a
/// stratified row sample and **early-exit once the pass/fail decision
/// at τ is statistically settled** (a Hoeffding bound at the
/// configured confidence), escalating to the full dataset whenever
/// the estimate sits inside the confidence band of τ. Only queries
/// whose exact score is never consumed downstream (Make-Minimal's
/// rejected drop candidates) are eligible, and a confidently *passing*
/// estimate escalates too — a pass decision feeds the explanation's
/// score — so explanations, traces, and intervention counts stay
/// bit-for-bit identical to `Off` (`tests/sampled_oracle_differential.rs`
/// asserts this across every scenario × algorithm × thread count).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OracleSampling {
    /// Every query scores the full dataset (the pre-sampling
    /// behavior). The default.
    #[default]
    Off,
    /// Allow sampled early exits on decision-only queries.
    Bounded {
        /// Confidence level `1 − δ` of the Hoeffding settlement test,
        /// e.g. `0.999`. Clamped into `[0.5, 1)` at use sites.
        confidence: f64,
    },
}

impl OracleSampling {
    /// Whether sampling is enabled.
    pub fn is_enabled(&self) -> bool {
        matches!(self, OracleSampling::Bounded { .. })
    }
}

/// Top-level configuration for a diagnosis run.
#[derive(Debug, Clone)]
pub struct PrismConfig {
    /// Acceptable-malfunction threshold `τ` (Definition 3).
    pub threshold: f64,
    /// RNG seed for randomized transformations and partitioning.
    pub seed: u64,
    /// Hard cap on oracle interventions.
    pub max_interventions: usize,
    /// Discovery knobs.
    pub discovery: DiscoveryConfig,
    /// Run the Make-Minimal post-processing (Algorithm 1 line 20).
    /// Disable only for ablation studies.
    pub make_minimal: bool,
    /// Use benefit scores (observations O2/O3) to rank candidate
    /// PVTs. When false, candidates rank uniformly (ties broken by
    /// id) — an ablation of the paper's §4.2 design choice.
    pub use_benefit: bool,
    /// Restrict each greedy pick to PVTs adjacent to the
    /// highest-degree attributes (observation O1). When false, every
    /// live PVT is eligible — an ablation of the PVT–attribute-graph
    /// prioritization.
    pub use_high_degree: bool,
    /// Worker threads for the parallel intervention runtime
    /// ([`crate::runtime`]) and parallel discovery. `1` runs fully
    /// serially; any value produces bit-for-bit identical
    /// explanations and intervention counts — parallelism only warms
    /// the oracle's fingerprint cache speculatively. Defaults to the
    /// machine's available parallelism.
    pub num_threads: usize,
    /// Depth of speculative lookahead into the group-testing
    /// recursion tree (`num_threads > 1` only). At every bisection
    /// node not already covered by an ancestor's frontier, worker
    /// threads pre-bisect this many *additional* levels of the
    /// recursion tree and score the descendant half-compositions
    /// into the fingerprint cache: `0` overlaps only the node's own
    /// two halves (the pre-speculation behavior), `1` adds the four
    /// grandchildren, `2` the great-grandchildren, and so on
    /// (`2^(d+2) − 2` candidate frames per cold node). Under
    /// [`SpeculationMode::Static`] this is the exact depth; under
    /// [`SpeculationMode::Adaptive`] it is the **cap** the controller
    /// may choose up to. The knob has **no effect on results** —
    /// explanations, scores, traces, and intervention counts are
    /// bit-identical at every depth and thread count — only on wall
    /// clock and the speculative cache counters
    /// ([`crate::CacheStats`]).
    pub gt_speculation_depth: usize,
    /// How the executor schedules speculative lookahead: fixed-depth
    /// [`SpeculationMode::Static`] (the default) or the
    /// latency-driven [`SpeculationMode::Adaptive`] controller.
    pub speculation: SpeculationMode,
    /// Hard bound on in-flight speculative frames (queued + being
    /// scored) in the detached pool. When the bound is hit the
    /// oldest queued frames are shed — never the search itself — so
    /// a slow oracle cannot pile up unbounded speculative work.
    /// `None` means unbounded in Static mode and a derived default
    /// (`8 × num_threads`, minimum 32) in Adaptive mode.
    pub speculation_budget: Option<usize>,
    /// Static analysis of the candidate PVT set before any oracle
    /// query (see [`Lint`]). Defaults to [`Lint::Report`].
    pub lint: Lint,
    /// Structured tracing of the run (see [`dp_trace::TraceConfig`]).
    /// Defaults to off; any sink observes the identical, serially
    /// ordered event stream — attaching one never changes the
    /// diagnosis (asserted by `tests/trace_parity.rs`).
    pub trace: dp_trace::TraceConfig,
    /// Confidence-bounded sampled oracle queries (see
    /// [`OracleSampling`]). Defaults to [`OracleSampling::Off`];
    /// `Bounded` never changes the diagnosis, only how many rows
    /// decision-only queries touch ([`dp_trace::RunMetrics`]'s
    /// `sampled_queries` / `escalations` / `rows_touched`).
    pub oracle_sampling: OracleSampling,
}

impl Default for PrismConfig {
    fn default() -> Self {
        PrismConfig {
            threshold: 0.2,
            seed: 0xDA7A,
            max_interventions: 100_000,
            discovery: DiscoveryConfig::default(),
            make_minimal: true,
            use_benefit: true,
            use_high_degree: true,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            gt_speculation_depth: 1,
            speculation: SpeculationMode::default(),
            speculation_budget: None,
            lint: Lint::default(),
            trace: dp_trace::TraceConfig::default(),
            oracle_sampling: OracleSampling::default(),
        }
    }
}

impl PrismConfig {
    /// Config with the given threshold, other fields default.
    pub fn with_threshold(threshold: f64) -> Self {
        PrismConfig {
            threshold,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_cheap_profiles() {
        let c = DiscoveryConfig::default();
        assert!(c.domains && c.missing && c.indep_chi2 && c.indep_pearson);
        assert!(!c.indep_causal, "causal discovery is opt-in");
        assert!(c.outliers.is_some());
    }

    #[test]
    fn prefilter_margins() {
        assert_eq!(Prefilter::Off.margin(), None);
        assert_eq!(Prefilter::On.margin(), Some(0.0));
        assert_eq!(Prefilter::Threshold(1.5).margin(), Some(1.5));
        assert_eq!(Prefilter::Threshold(-2.0).margin(), Some(0.0));
        assert_eq!(DiscoveryConfig::default().prefilter, Prefilter::On);
    }

    #[test]
    fn with_threshold_sets_tau() {
        let c = PrismConfig::with_threshold(0.35);
        assert_eq!(c.threshold, 0.35);
        assert!(c.make_minimal);
    }

    #[test]
    fn lint_defaults_to_report() {
        assert_eq!(PrismConfig::default().lint, Lint::Report);
        assert_eq!(Lint::default(), Lint::Report);
    }

    #[test]
    fn speculation_defaults_to_static_and_unbounded() {
        let c = PrismConfig::default();
        assert_eq!(c.speculation, SpeculationMode::Static);
        assert_eq!(c.speculation_budget, None);
    }

    #[test]
    fn oracle_sampling_defaults_off() {
        let c = PrismConfig::default();
        assert_eq!(c.oracle_sampling, OracleSampling::Off);
        assert!(!c.oracle_sampling.is_enabled());
        assert!(OracleSampling::Bounded { confidence: 0.999 }.is_enabled());
    }
}
