//! Profile discovery and discriminative-PVT computation
//! (paper §3 / Fig 1 column "Discovery over D", and §4.1 step 1).

use crate::config::DiscoveryConfig;
use crate::profile::{DependenceKind, Profile};
use crate::pvt::Pvt;
use crate::transform::{ImputeStrategy, OutlierRepair, Transform};
use crate::violation::{dependence, violation};
use dp_frame::{CmpOp, DType, DataFrame, Predicate};
use dp_stats::sketch::{self, CategoricalSketch, NumericSketch};
use dp_stats::Pattern;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counters of the pairwise independence pass, surfaced in
/// [`crate::Explanation`] and the markdown report next to the oracle
/// cache stats. Totals are deterministic for any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Unordered attribute pairs enumerated (summed over both
    /// datasets for a discriminative-PVT run).
    pub pairs: usize,
    /// χ² tests the sketch screened out (the pair's `Indep` profile
    /// was emitted with `alpha = 0` without building the exact
    /// contingency table).
    pub chi2_screened: usize,
    /// χ² tests that ran exactly.
    pub chi2_exact: usize,
    /// Pearson tests the sketch screened out.
    pub pearson_screened: usize,
    /// Pearson tests that ran exactly.
    pub pearson_exact: usize,
}

impl DiscoveryStats {
    /// Pair tests skipped thanks to the pre-filter.
    pub fn screened(&self) -> usize {
        self.chi2_screened + self.pearson_screened
    }

    /// Pair tests considered (screened + exact).
    pub fn tests(&self) -> usize {
        self.screened() + self.chi2_exact + self.pearson_exact
    }

    /// Accumulate another run's counters (e.g. the second dataset of
    /// a discriminative-PVT discovery).
    pub fn merge(&mut self, other: &DiscoveryStats) {
        self.pairs += other.pairs;
        self.chi2_screened += other.chi2_screened;
        self.chi2_exact += other.chi2_exact;
        self.pearson_screened += other.pearson_screened;
        self.pearson_exact += other.pearson_exact;
    }
}

/// Thread-safe counters for the pairwise pass; totals are identical
/// for any thread count because the set of screened pairs is
/// deterministic.
#[derive(Default)]
struct PairCounters {
    chi2_screened: AtomicUsize,
    chi2_exact: AtomicUsize,
    pearson_screened: AtomicUsize,
    pearson_exact: AtomicUsize,
}

impl PairCounters {
    fn snapshot(&self, pairs: usize) -> DiscoveryStats {
        DiscoveryStats {
            pairs,
            chi2_screened: self.chi2_screened.load(Ordering::Relaxed),
            chi2_exact: self.chi2_exact.load(Ordering::Relaxed),
            pearson_screened: self.pearson_screened.load(Ordering::Relaxed),
            pearson_exact: self.pearson_exact.load(Ordering::Relaxed),
        }
    }
}

/// Per-column pre-filter sketches of one frame, built once (fanned
/// out per column over [`crate::runtime::par_map`]) before the O(m²)
/// pairwise pass.
///
/// `categorical[i]` doubles as the cached χ²-eligibility decision:
/// it is `Some` exactly when the column is categorical/boolean with
/// at most `max_categorical_domain` distinct values — the check the
/// seed code re-derived (via `value_counts`) once per *pair*.
struct FrameSketches {
    numeric: Vec<Option<NumericSketch>>,
    categorical: Vec<Option<CategoricalSketch>>,
    /// Extra caution margin in standard-error units
    /// ([`crate::config::Prefilter::margin`]).
    margin: f64,
}

impl FrameSketches {
    fn build(df: &DataFrame, cfg: &DiscoveryConfig, margin: f64, num_threads: usize) -> Self {
        let schema = df.schema();
        let n_rows = df.n_rows();
        // Injective coding whenever the domain is χ²-eligible, capped
        // so a huge `max_categorical_domain` cannot blow up the
        // per-pair count table (beyond the cap codes are hashed and
        // the pair is never screened).
        let buckets = cfg
            .max_categorical_domain
            .clamp(sketch::DEFAULT_BUCKETS, 256);
        let field_indices: Vec<usize> = (0..schema.fields().len()).collect();
        let built = crate::runtime::par_map(field_indices, num_threads, |i| {
            let field = &schema.fields()[i];
            let Ok(col) = df.column(&field.name) else {
                return (None, None);
            };
            match field.dtype {
                DType::Int | DType::Float => {
                    (Some(NumericSketch::build(n_rows, &col.f64_values())), None)
                }
                DType::Categorical | DType::Bool => {
                    let counts = col.value_counts();
                    if counts.len() > cfg.max_categorical_domain {
                        return (None, None);
                    }
                    let mut codes: Vec<Option<u32>> = vec![None; n_rows];
                    if field.dtype == DType::Bool {
                        // `false` sorts before `true`, so the f64
                        // coercion matches the sorted-distinct index
                        // when both values occur.
                        let both = counts.len() == 2;
                        for (i, x) in col.f64_values() {
                            codes[i] = Some(if both { x as u32 } else { 0 });
                        }
                    } else {
                        let sorted: Vec<&str> = counts.iter().map(|(s, _)| s.as_str()).collect();
                        for (i, s) in col.str_values() {
                            codes[i] = sorted.binary_search(&s).ok().map(|p| p as u32);
                        }
                    }
                    (
                        None,
                        Some(CategoricalSketch::from_codes(&codes, counts.len(), buckets)),
                    )
                }
                DType::Text => (None, None),
            }
        });
        let (numeric, categorical) = built.into_iter().unzip();
        FrameSketches {
            numeric,
            categorical,
            margin,
        }
    }
}

/// Discover the concretized profiles a dataset satisfies, per Fig 1.
///
/// Every returned profile has zero violation on `df` by construction
/// (its parameters are read off `df` itself), matching Definition 10's
/// requirement `X_V(D_pass, X_P) = 0` when called on the passing
/// dataset.
pub fn discover_profiles(df: &DataFrame, cfg: &DiscoveryConfig) -> Vec<Profile> {
    discover_profiles_par(df, cfg, 1)
}

/// [`discover_profiles`] with per-attribute (and per-attribute-pair)
/// fan-out over up to `num_threads` scoped worker threads. Results
/// are collected in schema order, so the output is identical for any
/// thread count.
pub fn discover_profiles_par(
    df: &DataFrame,
    cfg: &DiscoveryConfig,
    num_threads: usize,
) -> Vec<Profile> {
    discover_profiles_stats(df, cfg, num_threads).0
}

/// [`discover_profiles_par`] returning the pre-filter counters of the
/// pairwise pass alongside the profiles.
pub fn discover_profiles_stats(
    df: &DataFrame,
    cfg: &DiscoveryConfig,
    num_threads: usize,
) -> (Vec<Profile>, DiscoveryStats) {
    let mut out = Vec::new();
    let schema = df.schema();
    let n = df.n_rows();
    if n == 0 {
        return (out, DiscoveryStats::default());
    }
    // Per-attribute profiles.
    let field_indices: Vec<usize> = (0..schema.fields().len()).collect();
    let per_field = crate::runtime::par_map(field_indices, num_threads, |i| {
        field_profiles(df, &schema.fields()[i], n, cfg)
    });
    out.extend(per_field.into_iter().flatten());
    // Conditional profiles (§3 extension): per-slice numeric domains.
    if let Some(cond_attr) = &cfg.conditional_domains_on {
        if let Ok(cond_col) = df.column(cond_attr) {
            let values = cond_col.value_counts();
            if values.len() <= cfg.max_categorical_domain {
                for (value, count) in values {
                    if count < 2 {
                        continue; // single-tuple slices over-fit
                    }
                    let pred = Predicate::cmp(cond_attr.clone(), CmpOp::Eq, value.clone());
                    let Ok(subset) = df.filter_by(&pred) else {
                        continue;
                    };
                    for field in schema.fields() {
                        if !field.dtype.is_numeric() || &field.name == cond_attr {
                            continue;
                        }
                        let Ok(col) = subset.column(&field.name) else {
                            continue;
                        };
                        if let Some((lb, ub)) = col.min_max() {
                            out.push(Profile::Conditional {
                                condition: pred.clone(),
                                inner: Box::new(Profile::DomainNumeric {
                                    attr: field.name.clone(),
                                    lb,
                                    ub,
                                }),
                            });
                        }
                    }
                }
            }
        }
    }
    // Pairwise independence profiles (rows 7–9), fanned out per pair.
    // With the pre-filter enabled, per-column sketches are built once
    // (also fanned out) and pairs whose sketched dependence is already
    // insignificant emit `alpha = 0` directly — identical to what the
    // exact test would conclude — without paying for column
    // extraction, coding, and the exact statistic.
    let fields = schema.fields();
    let pair_relevant = cfg.indep_chi2 || cfg.indep_pearson || cfg.indep_causal;
    let sketches = match cfg.prefilter.margin() {
        Some(margin) if pair_relevant && fields.len() > 1 => {
            Some(FrameSketches::build(df, cfg, margin, num_threads))
        }
        _ => None,
    };
    let mut pairs = Vec::new();
    for i in 0..fields.len() {
        for j in (i + 1)..fields.len() {
            pairs.push((i, j));
        }
    }
    let n_pairs = pairs.len();
    let counters = PairCounters::default();
    let per_pair = crate::runtime::par_map(pairs, num_threads, |(i, j)| {
        let (fa, fb) = (&fields[i], &fields[j]);
        let mut found = Vec::new();
        // χ² eligibility: categorical/boolean with a bounded domain.
        // The sketch caches this per column; without it the seed
        // re-derives it (via `value_counts`) for every pair.
        let cat = |idx: usize, f: &dp_frame::Field| match &sketches {
            Some(s) => s.categorical[idx].is_some(),
            None => {
                matches!(f.dtype, DType::Categorical | DType::Bool)
                    && df
                        .column(&f.name)
                        .map(|c| c.value_counts().len() <= cfg.max_categorical_domain)
                        .unwrap_or(false)
            }
        };
        let num = |f: &dp_frame::Field| f.dtype.is_numeric();
        if cfg.indep_chi2 && cat(i, fa) && cat(j, fb) {
            // Only order-preservingly coded pairs are screened: their
            // sketched χ² is bit-identical to the exact test, so
            // "insignificant" here is exactly the condition under
            // which `dependence` returns 0. (`is_exact` is weaker —
            // collision-free hashing matches only up to summation
            // order, which is not good enough for parity.)
            let screened = sketches.as_ref().is_some_and(|s| {
                let (Some(sa), Some(sb)) = (&s.categorical[i], &s.categorical[j]) else {
                    return false;
                };
                sa.is_order_preserving()
                    && sb.is_order_preserving()
                    && !sketch::chi2_estimate(sa, sb).significant(0.05)
            });
            let alpha = if screened {
                counters.chi2_screened.fetch_add(1, Ordering::Relaxed);
                0.0
            } else {
                counters.chi2_exact.fetch_add(1, Ordering::Relaxed);
                dependence(df, &fa.name, &fb.name, DependenceKind::Chi2)
            };
            found.push(Profile::Indep {
                a: fa.name.clone(),
                b: fb.name.clone(),
                alpha,
                kind: DependenceKind::Chi2,
            });
        }
        if cfg.indep_pearson && num(fa) && num(fb) {
            // The numeric estimate recovers the exact joint-pair
            // statistics (bitmap-masked when values are missing), so
            // an insignificant inflated estimate implies the exact
            // test is insignificant too.
            let screened = sketches.as_ref().is_some_and(|s| {
                let (Some(sa), Some(sb)) = (&s.numeric[i], &s.numeric[j]) else {
                    return false;
                };
                !sketch::pearson_upper(sa, sb, s.margin).significant(0.05)
            });
            let alpha = if screened {
                counters.pearson_screened.fetch_add(1, Ordering::Relaxed);
                0.0
            } else {
                counters.pearson_exact.fetch_add(1, Ordering::Relaxed);
                dependence(df, &fa.name, &fb.name, DependenceKind::Pearson)
            };
            found.push(Profile::Indep {
                a: fa.name.clone(),
                b: fb.name.clone(),
                alpha,
                kind: DependenceKind::Pearson,
            });
        }
        if cfg.indep_causal && (num(fa) || cat(i, fa)) && (num(fb) || cat(j, fb)) {
            // Never screened: the SEM coefficient has no significance
            // gate, so no sketch outcome implies `alpha = 0`.
            let alpha = dependence(df, &fa.name, &fb.name, DependenceKind::Causal);
            found.push(Profile::Indep {
                a: fa.name.clone(),
                b: fb.name.clone(),
                alpha,
                kind: DependenceKind::Causal,
            });
        }
        // Mixed categorical/numeric pairs: χ² over the coded pair
        // is covered by the causal profile when enabled.
        found
    });
    out.extend(per_pair.into_iter().flatten());
    (out, counters.snapshot(n_pairs))
}

/// All single-attribute profiles of one field (the body of the
/// per-attribute discovery loop, extracted so the parallel variant
/// can fan it out per field).
fn field_profiles(
    df: &DataFrame,
    field: &dp_frame::Field,
    n: usize,
    cfg: &DiscoveryConfig,
) -> Vec<Profile> {
    let mut out = Vec::new();
    let col = df.column(&field.name).expect("schema-listed column");
    let null_frac = col.null_count() as f64 / n as f64;
    if cfg.missing {
        out.push(Profile::Missing {
            attr: field.name.clone(),
            theta: null_frac,
        });
    }
    match field.dtype {
        DType::Int | DType::Float => {
            if cfg.domains {
                if let Some((lb, ub)) = col.min_max() {
                    out.push(Profile::DomainNumeric {
                        attr: field.name.clone(),
                        lb,
                        ub,
                    });
                }
            }
            if let Some(spec) = cfg.outliers {
                let values: Vec<f64> = col.f64_values().into_iter().map(|(_, v)| v).collect();
                if let Some(det) = spec.fit(&values) {
                    let frac =
                        values.iter().filter(|&&v| det.is_outlier(v)).count() as f64 / n as f64;
                    out.push(Profile::Outlier {
                        attr: field.name.clone(),
                        detector: spec,
                        theta: frac,
                    });
                }
            }
        }
        DType::Categorical => {
            let counts = col.value_counts();
            if cfg.domains && counts.len() <= cfg.max_categorical_domain {
                out.push(Profile::DomainCategorical {
                    attr: field.name.clone(),
                    values: counts.iter().map(|(v, _)| v.clone()).collect(),
                });
            }
            if let Some(max_dom) = cfg.selectivity_max_domain {
                if counts.len() <= max_dom {
                    for (value, count) in &counts {
                        out.push(Profile::Selectivity {
                            predicate: Predicate::cmp(field.name.clone(), CmpOp::Eq, value.clone()),
                            theta: *count as f64 / n as f64,
                        });
                    }
                    if let Some(pair_attr) = &cfg.selectivity_pair_with {
                        if pair_attr != &field.name {
                            discover_pair_selectivity(
                                df,
                                &field.name,
                                &counts,
                                pair_attr,
                                max_dom,
                                &mut out,
                            );
                        }
                    }
                }
            }
        }
        DType::Text => {
            if cfg.domains {
                let values: Vec<&str> = col.str_values().into_iter().map(|(_, s)| s).collect();
                let pattern = Pattern::learn(&values).or_else(|| Pattern::length_only(&values));
                if let Some(pattern) = pattern {
                    out.push(Profile::DomainText {
                        attr: field.name.clone(),
                        pattern,
                    });
                }
            }
        }
        DType::Bool => {}
    }
    out
}

fn discover_pair_selectivity(
    df: &DataFrame,
    attr: &str,
    counts: &[(String, usize)],
    pair_attr: &str,
    max_dom: usize,
    out: &mut Vec<Profile>,
) {
    let Ok(pair_col) = df.column(pair_attr) else {
        return;
    };
    let pair_counts = pair_col.value_counts();
    if pair_counts.len() > max_dom {
        return;
    }
    let Ok(col) = df.column(attr) else {
        return;
    };
    // One joint-count pass over the two columns instead of a
    // full-frame `selectivity` scan per (v1, v2) cell — the scan was
    // O(|dom_a| · |dom_b| · n). An `attr = "v"` predicate matches
    // exactly the non-NULL string cells equal to `v` (cross-type
    // comparisons are never equal), so the joint string-cell counts
    // reproduce the conjunction's selectivity.
    let n = df.n_rows() as f64;
    let b_vals = pair_col.str_values();
    let mut b_at: Vec<Option<&str>> = vec![None; df.n_rows()];
    for &(i, s) in &b_vals {
        b_at[i] = Some(s);
    }
    let a_vals = col.str_values();
    let mut joint: HashMap<(&str, &str), usize> = HashMap::new();
    for &(i, sa) in &a_vals {
        if let Some(sb) = b_at[i] {
            *joint.entry((sa, sb)).or_insert(0) += 1;
        }
    }
    for (v1, _) in counts {
        for (v2, _) in &pair_counts {
            let Some(&count) = joint.get(&(v1.as_str(), v2.as_str())) else {
                // Skip empty cells: a never-seen combination is not a
                // meaningful selectivity expectation.
                continue;
            };
            let sel = count as f64 / n;
            // The historical guard, kept bit-for-bit: `sel * n` can
            // round just below 1.0 for a singleton cell at some n.
            if sel * n >= 1.0 {
                let pred = Predicate::cmp(attr, CmpOp::Eq, v1.clone()).and(Predicate::cmp(
                    pair_attr,
                    CmpOp::Eq,
                    v2.clone(),
                ));
                out.push(Profile::Selectivity {
                    predicate: pred,
                    theta: sel,
                });
            }
        }
    }
}

/// The primary transformation for a profile (Fig 1's first listed
/// alternative), plus the extra alternatives when requested.
pub fn transforms_for(profile: &Profile, alternatives: bool) -> Vec<Transform> {
    let mut out = Vec::new();
    match profile {
        Profile::DomainCategorical { attr, values } => {
            out.push(Transform::MapToDomain {
                attr: attr.clone(),
                values: values.clone(),
            });
        }
        Profile::DomainNumeric { attr, lb, ub } => {
            out.push(Transform::LinearRescale {
                attr: attr.clone(),
                lb: *lb,
                ub: *ub,
            });
            if alternatives {
                out.push(Transform::Winsorize {
                    attr: attr.clone(),
                    lb: *lb,
                    ub: *ub,
                });
            }
        }
        Profile::DomainText { attr, pattern } => {
            out.push(Transform::RepairText {
                attr: attr.clone(),
                pattern: pattern.clone(),
            });
        }
        Profile::Outlier { attr, detector, .. } => {
            out.push(Transform::ReplaceOutliers {
                attr: attr.clone(),
                detector: *detector,
                strategy: OutlierRepair::Mean,
            });
            if alternatives {
                out.push(Transform::ReplaceOutliers {
                    attr: attr.clone(),
                    detector: *detector,
                    strategy: OutlierRepair::Clamp,
                });
            }
        }
        Profile::Missing { attr, .. } => {
            out.push(Transform::Impute {
                attr: attr.clone(),
                strategy: ImputeStrategy::Central,
            });
        }
        Profile::Selectivity { predicate, theta } => {
            out.push(Transform::ResampleSelectivity {
                predicate: predicate.clone(),
                theta: *theta,
            });
        }
        Profile::Conditional { condition, inner } => {
            for t in transforms_for(inner, alternatives) {
                // Global inner transforms cannot be row-scoped; only
                // local repairs are lifted into the condition.
                if !t.is_global() {
                    out.push(Transform::Conditional {
                        condition: condition.clone(),
                        inner: Box::new(t),
                    });
                }
            }
        }
        Profile::Indep { a, b, alpha, kind } => match kind {
            DependenceKind::Chi2 => out.push(Transform::BreakDependenceShuffle {
                a: a.clone(),
                b: b.clone(),
                alpha: *alpha,
            }),
            DependenceKind::Pearson => out.push(Transform::DecorrelateNoise {
                a: a.clone(),
                b: b.clone(),
                alpha: *alpha,
            }),
            DependenceKind::Causal => out.push(Transform::Residualize {
                a: a.clone(),
                b: b.clone(),
            }),
        },
    }
    out
}

/// Step 1 of the paper's §4.1: discover PVTs over both datasets and
/// keep the *discriminative* ones — profiles of the passing dataset
/// whose parameter values differ over the failing dataset (or that
/// the failing dataset does not exhibit at all), filtered to those
/// the failing dataset actually violates (Definition 10 condition 5).
pub fn discriminative_pvts(
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    cfg: &DiscoveryConfig,
) -> Vec<Pvt> {
    discriminative_pvts_par(d_pass, d_fail, cfg, 1)
}

/// [`discriminative_pvts`] with profile discovery fanned out over up
/// to `num_threads` worker threads (both datasets concurrently, each
/// per attribute). Output is identical for any thread count.
pub fn discriminative_pvts_par(
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    cfg: &DiscoveryConfig,
    num_threads: usize,
) -> Vec<Pvt> {
    discriminative_pvts_stats(d_pass, d_fail, cfg, num_threads).0
}

/// [`discriminative_pvts_stats`] emitting a
/// [`dp_trace::DiscoverySpan`] event once the pass completes (the
/// span carries only counters and elapsed time, never data).
pub(crate) fn discriminative_pvts_traced(
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    cfg: &DiscoveryConfig,
    num_threads: usize,
    tracer: &dp_trace::Tracer,
) -> (Vec<Pvt>, DiscoveryStats) {
    let start_ns = tracer.now_ns();
    let (pvts, stats) = discriminative_pvts_stats(d_pass, d_fail, cfg, num_threads);
    let elapsed_ns = tracer.now_ns().saturating_sub(start_ns);
    tracer.emit(|| {
        dp_trace::Event::Discovery(dp_trace::DiscoverySpan {
            n_pvts: pvts.len(),
            pairs: stats.pairs as u64,
            screened: stats.screened() as u64,
            exact: (stats.chi2_exact + stats.pearson_exact) as u64,
            elapsed_ns,
        })
    });
    (pvts, stats)
}

/// [`discriminative_pvts_par`] returning the pre-filter counters
/// (merged over both datasets) alongside the PVTs.
pub fn discriminative_pvts_stats(
    d_pass: &DataFrame,
    d_fail: &DataFrame,
    cfg: &DiscoveryConfig,
    num_threads: usize,
) -> (Vec<Pvt>, DiscoveryStats) {
    // Split the workers across the two datasets; each side fans out
    // per attribute with its share.
    let mut results = if num_threads > 1 {
        let side_threads = (num_threads / 2).max(1);
        crate::runtime::par_map(vec![d_pass, d_fail], 2, |df| {
            discover_profiles_stats(df, cfg, side_threads)
        })
    } else {
        vec![
            discover_profiles_stats(d_pass, cfg, 1),
            discover_profiles_stats(d_fail, cfg, 1),
        ]
    };
    let (fail_profiles, fail_stats) = results.pop().expect("two datasets mapped");
    let (pass_profiles, mut stats) = results.pop().expect("two datasets mapped");
    stats.merge(&fail_stats);
    // Index the failing side by template key: the identical-profile
    // check is then a bucket probe instead of a scan over every
    // failing profile (wide schemas discover O(m²) Indep profiles,
    // and a scan per passing profile would be O(m⁴) comparisons).
    let mut fail_index: HashMap<String, Vec<&Profile>> = HashMap::new();
    for fp in &fail_profiles {
        fail_index.entry(fp.template_key()).or_default().push(fp);
    }
    let mut pvts = Vec::new();
    let mut id = 0;
    for profile in pass_profiles {
        let identical = fail_index
            .get(&profile.template_key())
            .is_some_and(|bucket| {
                bucket
                    .iter()
                    .any(|fp| fp.same_parameters(&profile, cfg.param_tolerance))
            });
        if identical {
            continue;
        }
        if violation(d_fail, &profile) <= 0.0 {
            continue;
        }
        for transform in transforms_for(&profile, cfg.alternative_transforms) {
            pvts.push(Pvt {
                id,
                profile: profile.clone(),
                transform,
            });
            id += 1;
        }
    }
    (pvts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::Column;

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    fn sentiment_pair() -> (DataFrame, DataFrame) {
        let pass = DataFrame::from_columns(vec![
            cat("target", &["-1", "1", "1", "-1", "1", "-1"]),
            Column::from_ints(
                "len",
                vec![
                    Some(100),
                    Some(150),
                    Some(120),
                    Some(90),
                    Some(140),
                    Some(100),
                ],
            ),
        ])
        .unwrap();
        let fail = DataFrame::from_columns(vec![
            cat("target", &["0", "4", "4", "0", "4", "0"]),
            Column::from_ints(
                "len",
                vec![Some(20), Some(25), Some(22), Some(18), Some(24), Some(21)],
            ),
        ])
        .unwrap();
        (pass, fail)
    }

    #[test]
    fn discovers_fig1_profiles() {
        let (pass, _) = sentiment_pair();
        let profiles = discover_profiles(&pass, &DiscoveryConfig::default());
        let keys: Vec<String> = profiles.iter().map(|p| p.template_key()).collect();
        assert!(keys.contains(&"domain_cat(target)".to_string()), "{keys:?}");
        assert!(keys.contains(&"domain_num(len)".to_string()));
        assert!(keys.contains(&"missing(target)".to_string()));
        assert!(keys.contains(&"missing(len)".to_string()));
        assert!(keys.iter().any(|k| k.starts_with("selectivity")));
    }

    #[test]
    fn discovered_profiles_have_zero_self_violation() {
        let (pass, _) = sentiment_pair();
        for p in discover_profiles(&pass, &DiscoveryConfig::default()) {
            assert!(
                violation(&pass, &p) < 1e-9,
                "self-violation of {p} was {}",
                violation(&pass, &p)
            );
        }
    }

    #[test]
    fn discriminative_pvts_capture_the_sentiment_mismatch() {
        let (pass, fail) = sentiment_pair();
        let pvts = discriminative_pvts(&pass, &fail, &DiscoveryConfig::default());
        assert!(!pvts.is_empty());
        // The Domain profile on target must be among them.
        assert!(
            pvts.iter()
                .any(|p| p.profile.template_key() == "domain_cat(target)"),
            "{:?}",
            pvts.iter()
                .map(|p| p.profile.template_key())
                .collect::<Vec<_>>()
        );
        // Every discriminative PVT is violated by the failing data and
        // satisfied by the passing data (Definition 10).
        for p in &pvts {
            assert!(p.violation(&fail) > 0.0, "{}", p.profile);
            assert!(p.violation(&pass) < 1e-9, "{}", p.profile);
        }
        // Ids are sequential.
        for (i, p) in pvts.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn identical_datasets_yield_no_discriminative_pvts() {
        let (pass, _) = sentiment_pair();
        let pvts = discriminative_pvts(&pass, &pass.clone(), &DiscoveryConfig::default());
        assert!(pvts.is_empty());
    }

    #[test]
    fn pair_selectivity_discovery() {
        let df = DataFrame::from_columns(vec![
            cat("gender", &["F", "F", "M", "M", "M", "M"]),
            cat("high", &["yes", "no", "yes", "yes", "no", "yes"]),
        ])
        .unwrap();
        let cfg = DiscoveryConfig {
            selectivity_pair_with: Some("high".into()),
            ..Default::default()
        };
        let profiles = discover_profiles(&df, &cfg);
        let pair = profiles.iter().any(|p| {
            matches!(p, Profile::Selectivity { predicate, .. }
                if predicate.to_string().contains('∧'))
        });
        assert!(pair, "conjunctive selectivity profile discovered");
    }

    #[test]
    fn pair_selectivity_matches_bruteforce_on_max_domain() {
        // Maximum-domain categorical pair (12 × 12 at the default
        // `selectivity_max_domain`), with NULLs in both columns and
        // singleton cells at n = 49 — the row count where a
        // singleton's `sel * n` can round below 1.0, exercising the
        // historical guard. The joint-count rewrite must reproduce
        // the per-cell `DataFrame::selectivity` scan bit for bit.
        let n = 49;
        let a_vals: Vec<Option<String>> = (0..n)
            .map(|i| {
                if i % 10 == 9 {
                    None
                } else {
                    Some(format!("a{:02}", i % 12))
                }
            })
            .collect();
        let b_vals: Vec<Option<String>> = (0..n)
            .map(|i| {
                if i % 7 == 6 {
                    None
                } else {
                    Some(format!("b{:02}", (i / 2) % 12))
                }
            })
            .collect();
        let df = DataFrame::from_columns(vec![
            Column::from_strings("a", DType::Categorical, a_vals),
            Column::from_strings("b", DType::Categorical, b_vals),
        ])
        .unwrap();

        // Brute force: the pre-rewrite implementation — a full-frame
        // selectivity scan per (v1, v2) cell.
        let counts = df.column("a").unwrap().value_counts();
        let pair_counts = df.column("b").unwrap().value_counts();
        assert_eq!(counts.len(), 12);
        assert_eq!(pair_counts.len(), 12);
        let nf = df.n_rows() as f64;
        let mut expected = Vec::new();
        for (v1, _) in &counts {
            for (v2, _) in &pair_counts {
                let pred = Predicate::cmp("a", CmpOp::Eq, v1.clone()).and(Predicate::cmp(
                    "b",
                    CmpOp::Eq,
                    v2.clone(),
                ));
                let sel = df.selectivity(&pred).unwrap();
                if sel * nf >= 1.0 {
                    expected.push(Profile::Selectivity {
                        predicate: pred,
                        theta: sel,
                    });
                }
            }
        }
        assert!(!expected.is_empty());

        let mut actual = Vec::new();
        discover_pair_selectivity(&df, "a", &counts, "b", 12, &mut actual);
        assert_eq!(actual, expected);
    }

    #[test]
    fn prefilter_parity_and_counters_on_fixture() {
        let (pass, fail) = sentiment_pair();
        let on = DiscoveryConfig::default();
        let off = DiscoveryConfig {
            prefilter: crate::config::Prefilter::Off,
            ..Default::default()
        };
        for df in [&pass, &fail] {
            let (p_off, s_off) = discover_profiles_stats(df, &off, 1);
            let (p_on, s_on) = discover_profiles_stats(df, &on, 1);
            assert_eq!(p_off, p_on, "profile parity");
            assert_eq!(s_off.screened(), 0, "Off never screens");
            assert_eq!(s_off.pairs, s_on.pairs, "same pairs surveyed");
            assert_eq!(s_on.tests(), s_off.tests(), "same tests considered");
        }
        let (pvts_off, _) = discriminative_pvts_stats(&pass, &fail, &off, 1);
        let (pvts_on, stats_on) = discriminative_pvts_stats(&pass, &fail, &on, 1);
        assert_eq!(pvts_off, pvts_on, "discriminative PVT parity");
        assert_eq!(stats_on.pairs, 2, "one pair per frame");
    }

    #[test]
    fn alternative_transforms_flag() {
        let profile = Profile::DomainNumeric {
            attr: "x".into(),
            lb: 0.0,
            ub: 1.0,
        };
        assert_eq!(transforms_for(&profile, false).len(), 1);
        assert_eq!(transforms_for(&profile, true).len(), 2);
    }

    #[test]
    fn indep_profiles_for_planted_dependence() {
        // pass: independent; fail: perfectly dependent.
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        for i in 0..80 {
            pa.push(if i % 2 == 0 { "x" } else { "y" });
            pb.push(if (i / 2) % 2 == 0 { "p" } else { "q" });
            fa.push(if i % 2 == 0 { "x" } else { "y" });
            fb.push(if i % 2 == 0 { "p" } else { "q" });
        }
        let pass = DataFrame::from_columns(vec![cat("a", &pa), cat("b", &pb)]).unwrap();
        let fail = DataFrame::from_columns(vec![cat("a", &fa), cat("b", &fb)]).unwrap();
        let pvts = discriminative_pvts(&pass, &fail, &DiscoveryConfig::default());
        assert!(
            pvts.iter()
                .any(|p| p.profile.template_key() == "indep_chi2(a,b)"),
            "{:?}",
            pvts.iter()
                .map(|p| p.profile.template_key())
                .collect::<Vec<_>>()
        );
    }
}
