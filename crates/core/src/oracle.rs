//! The system under diagnosis and the intervention-counting oracle.
//!
//! A [`System`] computes the malfunction score `m_S(D) ∈ [0, 1]`
//! (Definition 3). The [`Oracle`] wraps it with the bookkeeping the
//! paper's evaluation reports: every malfunction evaluation of a
//! *transformed* dataset is an **intervention**, the currency of
//! Fig 7 and Fig 9. Identical datasets are content-fingerprinted so a
//! repeated query (e.g. during Make-Minimal) does not double count.
//!
//! [`SystemFactory`] extends the abstraction for the parallel runtime
//! (see [`crate::runtime`]): it builds independent `Send` system
//! instances so worker threads can score speculative candidate
//! datasets concurrently into a shared fingerprint cache.

use crate::cache::ScoreCache;
use crate::config::OracleSampling;
use dp_frame::sample::stratified_sample_indices;
use dp_frame::{Bitmap, Chunk, ColumnData, DataFrame, Value};
use dp_trace::{LatencyHistogram, QueryStat, RunMetrics, SampledQuerySpan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// A (possibly stateful) data-driven system with a malfunction score.
///
/// Implementations retrain models, run pipelines, etc. They must be
/// deterministic functions of the dataset for the diagnosis to be
/// meaningful (seed your models).
pub trait System {
    /// Malfunction score of the system over `df`, in `[0, 1]`
    /// (0 = functions properly).
    fn malfunction(&mut self, df: &DataFrame) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "system"
    }
}

impl<F: FnMut(&DataFrame) -> f64> System for F {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        self(df)
    }
}

/// Builds independent instances of the system under diagnosis so the
/// parallel runtime can hand one to each worker thread.
///
/// Instances must be *observationally identical*: `malfunction` must
/// return the same score for the same dataset on every instance
/// (deterministic systems satisfy this trivially). Implemented via a
/// blanket impl for any `Fn() -> S` constructor closure, so
/// `&|| MySystem::new(...)` is a ready-made factory.
pub trait SystemFactory: Sync {
    /// Build one fresh system instance.
    fn build(&self) -> Box<dyn System + Send>;

    /// Human-readable name for reports (defaults to a probe
    /// instance's name).
    fn name(&self) -> String {
        self.build().name().to_string()
    }
}

impl<S, F> SystemFactory for F
where
    S: System + Send + 'static,
    F: Fn() -> S + Sync,
{
    fn build(&self) -> Box<dyn System + Send> {
        Box::new(self())
    }
}

fn hash_valid_slots<T: Hash>(h: &mut DefaultHasher, tag: u8, values: &[T], validity: &Bitmap) {
    tag.hash(h);
    if validity.count_zeros() == 0 {
        // Fast path: no NULLs, the buffer is canonical as-is.
        values.hash(h);
        return;
    }
    // Slots masked out by the validity bitmap hold stale placeholders
    // (`Column::set(i, Null)` only clears the bit), so only valid
    // slots may contribute to the fingerprint.
    for (i, v) in values.iter().enumerate() {
        if validity.get(i) {
            v.hash(h);
        }
    }
}

/// Content hash of one storage chunk: validity words plus the typed
/// buffer (placeholders under NULL slots masked out). This is the
/// `compute` half of [`Chunk::cached_fingerprint`] — the hash policy
/// lives here with the oracle, the cache lives with the storage.
fn chunk_fingerprint(chunk: &Chunk) -> u64 {
    let mut h = DefaultHasher::new();
    // The bitmap's tail bits past `len` are canonically zero, so the
    // word slice is safe to hash directly; it distinguishes NULL
    // layouts that the value stream alone cannot.
    chunk.validity().words().hash(&mut h);
    match chunk.data() {
        ColumnData::Int(v) => hash_valid_slots(&mut h, 1, v, chunk.validity()),
        ColumnData::Bool(v) => hash_valid_slots(&mut h, 3, v, chunk.validity()),
        ColumnData::Str(v) => hash_valid_slots(&mut h, 4, v, chunk.validity()),
        ColumnData::Float(v) => {
            2u8.hash(&mut h);
            if chunk.validity().count_zeros() == 0 {
                for x in v {
                    x.to_bits().hash(&mut h);
                }
            } else {
                for (i, x) in v.iter().enumerate() {
                    if chunk.validity().get(i) {
                        x.to_bits().hash(&mut h);
                    }
                }
            }
        }
    }
    h.finish()
}

/// Content fingerprint of a dataframe, hashing the raw typed column
/// buffers and validity bitmaps directly — no per-cell [`Value`]
/// boxing or string formatting. Collisions would only merge two
/// intervention cache entries, never corrupt correctness-critical
/// state.
///
/// Per-chunk hashes are memoized on the chunks themselves
/// ([`Chunk::cached_fingerprint`]), so fingerprinting a transformed
/// frame re-hashes only the chunks the transformation actually wrote
/// — every chunk still shared with an already-fingerprinted frame is
/// a single cached `u64` read.
pub fn fingerprint(df: &DataFrame) -> u64 {
    let mut h = DefaultHasher::new();
    for col in df.columns() {
        col.name().hash(&mut h);
        col.dtype().hash(&mut h);
        col.len().hash(&mut h);
        for chunk in col.chunks() {
            chunk.cached_fingerprint(chunk_fingerprint).hash(&mut h);
        }
    }
    h.finish()
}

/// Original per-cell fingerprint, kept as a differential-testing
/// reference for the buffer-level [`fingerprint`]: both walk the same
/// logical content, so they must agree on equality/inequality of any
/// two frames (the hash values themselves differ).
pub fn fingerprint_reference(df: &DataFrame) -> u64 {
    let mut h = DefaultHasher::new();
    for col in df.columns() {
        col.name().hash(&mut h);
        format!("{:?}", col.dtype()).hash(&mut h);
        for i in 0..col.len() {
            match col.get(i) {
                Value::Null => 0u8.hash(&mut h),
                Value::Int(v) => {
                    1u8.hash(&mut h);
                    v.hash(&mut h);
                }
                Value::Float(v) => {
                    2u8.hash(&mut h);
                    v.to_bits().hash(&mut h);
                }
                Value::Bool(v) => {
                    3u8.hash(&mut h);
                    v.hash(&mut h);
                }
                Value::Str(v) => {
                    4u8.hash(&mut h);
                    v.hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

/// Clamp a malfunction score into `[0, 1]`; a NaN (a crashed or
/// undefined measurement) is treated as extreme malfunction so it can
/// never masquerade as "passes" (NaN comparisons are all false, which
/// would otherwise poison the `m ≤ τ` checks).
pub(crate) fn sanitize(score: f64) -> f64 {
    if score.is_nan() {
        1.0
    } else {
        score.clamp(0.0, 1.0)
    }
}

/// Oracle cache counters surfaced in [`crate::Explanation`] and the
/// markdown report.
///
/// `interventions` is the paper's Fig 7/Fig 9 currency and is
/// invariant under the thread count; `hits`/`misses`/`speculative`
/// describe how the fingerprint cache served those queries and *do*
/// vary with scheduling (a speculative worker may turn a would-be
/// miss into a hit).
///
/// **Deprecated as a primary surface**: these counters are now a
/// read-through view of [`RunMetrics`] (see
/// [`CacheStats::from_metrics`], the single derivation point), kept
/// so existing goldens and tests migrate in one place. New counters
/// land on `RunMetrics` — `Explanation::metrics` — not here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Charged oracle queries answered from the fingerprint cache.
    pub hits: usize,
    /// Charged oracle queries that ran the system.
    pub misses: usize,
    /// System evaluations performed speculatively by worker threads
    /// (cache warming; never charged as interventions).
    pub speculative: usize,
    /// Speculative evaluations whose score was never consumed by a
    /// charged query — wasted lookahead (the price of guessing the
    /// recursion's decisions ahead of time). Like `hits`/`misses`,
    /// this varies with scheduling and speculation depth.
    pub speculative_waste: usize,
    /// Interventions charged (every non-baseline query, cached or
    /// not).
    pub interventions: usize,
    /// Candidate PVTs dropped by the static lint pass before ranking
    /// (`Lint::Prune` only) — each one an exploration the run never
    /// had to pay oracle queries for. Like `interventions`, invariant
    /// under the thread count.
    pub lint_pruned: usize,
    /// Candidate PVTs merged into an L6 equivalence-class sibling
    /// before ranking (`Lint::Prune` only): the class representative
    /// carries the single oracle charge. Disjoint from `lint_pruned`
    /// and, like it, invariant under the thread count.
    pub lint_subsumed: usize,
}

impl CacheStats {
    /// Derive the legacy counters from a [`RunMetrics`] — the single
    /// point where the deprecated aliases are populated.
    pub fn from_metrics(m: &RunMetrics) -> CacheStats {
        CacheStats {
            hits: m.cache_hits as usize,
            misses: m.cache_misses as usize,
            speculative: m.speculative_evaluated as usize,
            speculative_waste: m.speculative_wasted as usize,
            interventions: m.charged_queries as usize,
            lint_pruned: m.lint_pruned as usize,
            lint_subsumed: m.lint_subsumed as usize,
        }
    }
}

/// Datasets smaller than this are never worth sampling: the first
/// probe (64 rows) plus the Hoeffding band would cover most of the
/// data anyway, so the full evaluation is both cheaper and exact.
const MIN_SAMPLED_ROWS: usize = 128;

/// First sample size of the doubling schedule.
const INITIAL_SAMPLE_ROWS: usize = 64;

/// Contiguous row-range strata the sampled oracle draws from, so a
/// sample covers the whole index range even when rows are ordered.
const SAMPLE_STRATA: usize = 16;

/// The confidence-bounded sampled decision procedure shared by the
/// serial [`Oracle`] and [`crate::runtime::ParOracle`].
///
/// `try_settle` estimates `m_S(D)` on growing stratified row samples
/// and settles the pass/fail verdict at τ once a two-sided Hoeffding
/// bound puts the estimate confidently on the FAIL side:
/// `est − τ > ε(n)` with `ε(n) = sqrt(ln(2/δ) / 2n)`, `δ = 1 −
/// confidence`. Only FAIL verdicts ever settle — every consumer of a
/// *passing* decision reads the exact score (the greedy loop composes
/// it, Make-Minimal adopts it, reports print it), so confident
/// passes, boundary cases, and exhausted schedules all escalate to a
/// full evaluation and stay bit-identical to an unsampled run.
pub(crate) struct SampledDecider {
    mode: OracleSampling,
    seed: u64,
    /// Verdicts already settled on a sample, by dataset fingerprint:
    /// `(estimate, rows)` of the settling probe. A repeated query
    /// reuses the verdict without re-scoring any rows.
    settled: HashMap<u64, (f64, u64)>,
    /// Charged queries settled on a sample.
    pub(crate) sampled_queries: u64,
    /// Eligible queries that escalated to a full evaluation.
    pub(crate) escalations: u64,
    /// Rows actually scored by sampled probes.
    pub(crate) rows_touched: u64,
    /// Record of the most recent settled decision, for span emission.
    pub(crate) last: Option<SampledQuerySpan>,
}

impl SampledDecider {
    pub(crate) fn new(mode: OracleSampling, seed: u64) -> Self {
        SampledDecider {
            mode,
            seed,
            settled: HashMap::new(),
            sampled_queries: 0,
            escalations: 0,
            rows_touched: 0,
            last: None,
        }
    }

    /// The configured confidence, clamped into a usable range
    /// (δ must stay in `(0, 0.5]` for the bound to mean anything).
    fn confidence(&self) -> Option<f64> {
        match self.mode {
            OracleSampling::Off => None,
            OracleSampling::Bounded { confidence } => Some(confidence.clamp(0.5, 1.0 - 1e-9)),
        }
    }

    /// Try to settle `df`'s verdict at `threshold` on stratified row
    /// samples scored by `eval`. Returns `Some(false)` for a
    /// confident FAIL (never `Some(true)`: passing decisions must
    /// carry exact scores); `None` means the caller must evaluate in
    /// full — sampling off, dataset too small, or escalation.
    pub(crate) fn try_settle(
        &mut self,
        fp: u64,
        df: &DataFrame,
        threshold: f64,
        eval: &mut dyn FnMut(&DataFrame) -> f64,
    ) -> Option<bool> {
        let confidence = self.confidence()?;
        let total = df.n_rows();
        if total < MIN_SAMPLED_ROWS {
            return None;
        }
        if let Some(&(estimate, rows)) = self.settled.get(&fp) {
            self.sampled_queries += 1;
            self.last = Some(SampledQuerySpan {
                fingerprint: fp,
                estimate,
                rows,
                total_rows: total as u64,
                confidence,
            });
            return Some(false);
        }
        let delta = 1.0 - confidence;
        // Deterministic per-dataset stream: the same frame samples the
        // same rows in every run and on every runtime.
        let mut rng = StdRng::seed_from_u64(self.seed ^ fp);
        let mut n = INITIAL_SAMPLE_ROWS.min(total);
        loop {
            let idx = stratified_sample_indices(&mut rng, total, n, SAMPLE_STRATA)
                .expect("sample size is bounded by the row count");
            let sample = df.take(&idx).expect("sampled indices are in range");
            let estimate = sanitize(eval(&sample));
            self.rows_touched += n as u64;
            let eps = ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt();
            if estimate - threshold > eps {
                self.sampled_queries += 1;
                self.settled.insert(fp, (estimate, n as u64));
                self.last = Some(SampledQuerySpan {
                    fingerprint: fp,
                    estimate,
                    rows: n as u64,
                    total_rows: total as u64,
                    confidence,
                });
                return Some(false);
            }
            if threshold - estimate > eps {
                // Confident PASS: the verdict is settled but the
                // exact score is consumed downstream — escalate.
                break;
            }
            if n * 2 <= total {
                n *= 2;
            } else {
                // The estimate still sits inside the confidence band
                // of τ with the schedule exhausted: the boundary case
                // sampling must never decide.
                break;
            }
        }
        self.escalations += 1;
        None
    }
}

/// Intervention-counting, caching wrapper around a [`System`].
pub struct Oracle<'a> {
    system: &'a mut dyn System,
    /// Acceptable-malfunction threshold `τ`.
    pub threshold: f64,
    /// Interventions performed. Every [`Oracle::intervene`] query
    /// counts — even when the content cache spares the recomputation
    /// — because an intervention is the *act of asking the oracle*
    /// about a transformed dataset (the metric of the paper's Fig 7
    /// and Fig 9). Only the two problem-input baselines are free.
    pub interventions: usize,
    /// Hard cap; exceeding it surfaces as
    /// [`crate::PrismError::BudgetExhausted`] in the algorithms.
    pub budget: usize,
    hits: usize,
    misses: usize,
    warm_hits: u64,
    baseline_queries: u64,
    query_latency: LatencyHistogram,
    last: QueryStat,
    cache: HashMap<u64, f64>,
    free: std::collections::HashSet<u64>,
    /// Fingerprints seeded from a cross-run [`ScoreCache`] before the
    /// run started, for [`RunMetrics::warm_hits`] accounting.
    warm: HashSet<u64>,
    /// The confidence-bounded sampled decision procedure (inert under
    /// [`OracleSampling::Off`], the default).
    sampling: SampledDecider,
}

impl<'a> Oracle<'a> {
    /// Wrap `system` with threshold `τ` and an intervention budget.
    pub fn new(system: &'a mut dyn System, threshold: f64, budget: usize) -> Self {
        Oracle {
            system,
            threshold,
            interventions: 0,
            budget,
            hits: 0,
            misses: 0,
            warm_hits: 0,
            baseline_queries: 0,
            query_latency: LatencyHistogram::default(),
            last: QueryStat::default(),
            cache: HashMap::new(),
            free: std::collections::HashSet::new(),
            warm: HashSet::new(),
            sampling: SampledDecider::new(OracleSampling::Off, 0),
        }
    }

    /// Configure the sampled decision procedure (see
    /// [`crate::PrismConfig::oracle_sampling`]); `seed` keys the
    /// per-dataset sample streams. Returns `self` for chaining.
    pub fn with_sampling(mut self, mode: OracleSampling, seed: u64) -> Self {
        self.sampling = SampledDecider::new(mode, seed);
        self
    }

    /// Like [`Oracle::new`], but seed the fingerprint cache from a
    /// cross-run [`ScoreCache`] (trace replay, snapshot, or a
    /// server-resident cache). Systems are deterministic, so seeded
    /// scores equal what a cold evaluation would return bit-for-bit:
    /// the diagnosis result is unchanged, only `cache_misses` drops
    /// and [`RunMetrics::warm_hits`] counts the queries the warm
    /// start answered.
    pub fn with_warm_cache(
        system: &'a mut dyn System,
        threshold: f64,
        budget: usize,
        warm: &ScoreCache,
    ) -> Self {
        let mut oracle = Oracle::new(system, threshold, budget);
        for (fp, score) in warm.iter() {
            oracle.cache.insert(fp, score);
            oracle.warm.insert(fp);
        }
        oracle
    }

    /// Snapshot the fingerprint cache accumulated so far (seeded and
    /// newly scored entries alike) into a cross-run [`ScoreCache`].
    pub fn export_cache(&self) -> ScoreCache {
        let mut out = ScoreCache::new();
        for (&fp, &score) in &self.cache {
            out.insert(fp, score);
        }
        out
    }

    /// Malfunction score of a *baseline* dataset (`D_pass`/`D_fail`
    /// as given). Never counted as an intervention — the problem
    /// definition assumes these two scores are known — and future
    /// queries of the identical dataset stay free.
    pub fn baseline(&mut self, df: &DataFrame) -> f64 {
        let fp = fingerprint(df);
        self.free.insert(fp);
        self.baseline_queries += 1;
        if let Some(&score) = self.cache.get(&fp) {
            self.last = QueryStat {
                fingerprint: fp,
                cached: true,
                speculative_hit: false,
                latency_ns: None,
            };
            return score;
        }
        let start = Instant::now();
        let score = sanitize(self.system.malfunction(df));
        let latency_ns = start.elapsed().as_nanos() as u64;
        // Baselines are free of charge but their evaluations are real
        // latency samples — often the *only* ones a fresh system has
        // before the speculation controller first runs.
        self.query_latency.record(latency_ns);
        self.last = QueryStat {
            fingerprint: fp,
            cached: false,
            speculative_hit: false,
            latency_ns: Some(latency_ns),
        };
        self.cache.insert(fp, score);
        score
    }

    /// Malfunction score of a transformed dataset: one intervention
    /// (the system itself is only re-run when the exact dataset has
    /// not been scored before).
    pub fn intervene(&mut self, df: &DataFrame) -> f64 {
        let fp = fingerprint(df);
        if !self.free.contains(&fp) {
            self.interventions += 1;
        }
        if let Some(&score) = self.cache.get(&fp) {
            self.hits += 1;
            if self.warm.contains(&fp) {
                self.warm_hits += 1;
            }
            self.last = QueryStat {
                fingerprint: fp,
                cached: true,
                speculative_hit: false,
                latency_ns: None,
            };
            return score;
        }
        self.misses += 1;
        let start = Instant::now();
        let score = sanitize(self.system.malfunction(df));
        let latency_ns = start.elapsed().as_nanos() as u64;
        self.query_latency.record(latency_ns);
        self.last = QueryStat {
            fingerprint: fp,
            cached: false,
            speculative_hit: false,
            latency_ns: Some(latency_ns),
        };
        self.cache.insert(fp, score);
        score
    }

    /// Decide whether `df` passes at τ, charging one intervention.
    ///
    /// With sampling off (the default) this is exactly
    /// [`Oracle::intervene`] plus [`Oracle::passes`], and the exact
    /// score is always returned. Under [`OracleSampling::Bounded`],
    /// an uncached query may instead be settled as a confident FAIL
    /// on stratified row samples ([`SampledDecider`]); those return
    /// `(false, None)` without ever scoring the full dataset.
    /// Decisions that pass — or sit inside the confidence band of τ —
    /// escalate to a full evaluation, so a returned score is exact.
    pub fn decide(&mut self, df: &DataFrame) -> (bool, Option<f64>) {
        let fp = fingerprint(df);
        let settled = if self.free.contains(&fp) || self.cache.contains_key(&fp) {
            // The exact score is free or already paid for — sampling
            // could only discard information.
            None
        } else {
            let threshold = self.threshold;
            let system = &mut *self.system;
            self.sampling
                .try_settle(fp, df, threshold, &mut |d| sanitize(system.malfunction(d)))
        };
        match settled {
            Some(passes) => {
                // The act of asking is still one intervention; the
                // hit/miss split, score cache, and latency histogram
                // describe full evaluations only and stay untouched.
                self.interventions += 1;
                (passes, None)
            }
            None => {
                let score = self.intervene(df);
                (self.passes(score), Some(score))
            }
        }
    }

    /// The sampled-decision record of the most recent
    /// [`Oracle::decide`] that settled without an exact score, for
    /// span emission.
    pub fn last_sampled_query(&self) -> Option<SampledQuerySpan> {
        self.sampling.last
    }

    /// Whether a score is acceptable (`m ≤ τ`).
    pub fn passes(&self, score: f64) -> bool {
        score <= self.threshold
    }

    /// Whether the intervention budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.interventions >= self.budget
    }

    /// Cache counters accumulated so far (derived from
    /// [`Oracle::run_metrics`]).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats::from_metrics(&self.run_metrics())
    }

    /// Full metrics accumulated so far. The serial oracle never
    /// speculates, so all speculation counters are zero.
    pub fn run_metrics(&self) -> RunMetrics {
        RunMetrics {
            baseline_queries: self.baseline_queries,
            charged_queries: self.interventions as u64,
            cache_hits: self.hits as u64,
            cache_misses: self.misses as u64,
            warm_hits: self.warm_hits,
            sampled_queries: self.sampling.sampled_queries,
            escalations: self.sampling.escalations,
            rows_touched: self.sampling.rows_touched,
            query_latency: self.query_latency,
            ..RunMetrics::default()
        }
    }

    /// Cache behaviour of the most recent query (for span emission).
    pub fn last_query(&self) -> QueryStat {
        self.last
    }

    /// Name of the wrapped system.
    pub fn system_name(&self) -> String {
        self.system.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::Column;

    fn df(vals: &[i64]) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_ints(
            "x",
            vals.iter().map(|&v| Some(v)).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn every_query_counts_but_computation_is_cached() {
        let mut calls = 0usize;
        let mut system = |_: &DataFrame| {
            calls += 1;
            0.5
        };
        let mut oracle = Oracle::new(&mut system, 0.2, 100);
        let a = df(&[1, 2, 3]);
        let b = df(&[4, 5, 6]);
        assert_eq!(oracle.intervene(&a), 0.5);
        assert_eq!(oracle.intervene(&a), 0.5, "cached result, counted query");
        assert_eq!(oracle.intervene(&b), 0.5);
        assert_eq!(oracle.interventions, 3);
        let stats = oracle.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.interventions, 3);
        drop(oracle);
        assert_eq!(calls, 2, "system invoked once per unique dataset");
    }

    #[test]
    fn baseline_is_free_forever() {
        let mut system = |_: &DataFrame| 0.9;
        let mut oracle = Oracle::new(&mut system, 0.2, 100);
        let d = df(&[1]);
        oracle.baseline(&d);
        assert_eq!(oracle.interventions, 0);
        // Re-querying the exact baseline dataset stays free.
        oracle.intervene(&d);
        assert_eq!(oracle.interventions, 0);
        // A genuinely different dataset counts.
        oracle.intervene(&df(&[2]));
        assert_eq!(oracle.interventions, 1);
    }

    #[test]
    fn cold_baseline_records_a_latency_sample() {
        // Regression: the cold-baseline path used to skip
        // `query_latency.record`, losing the first — often only —
        // latency sample of a fresh system, which starved the
        // adaptive speculation controller.
        let mut system = |_: &DataFrame| 0.9;
        let mut oracle = Oracle::new(&mut system, 0.2, 100);
        oracle.baseline(&df(&[1, 2, 3]));
        let m = oracle.run_metrics();
        assert!(
            m.query_latency.count >= 1,
            "cold baseline must record into the latency histogram"
        );
        assert!(oracle.last_query().latency_ns.is_some());
        // A warm (cached) baseline adds no sample and reports no
        // latency at all — hits must never skew the mean query cost.
        let before = oracle.run_metrics().query_latency.count;
        oracle.baseline(&df(&[1, 2, 3]));
        assert_eq!(oracle.run_metrics().query_latency.count, before);
        assert_eq!(oracle.last_query().latency_ns, None);
    }

    #[test]
    fn passes_and_budget() {
        let mut system = |_: &DataFrame| 0.1;
        let mut oracle = Oracle::new(&mut system, 0.2, 1);
        assert!(oracle.passes(0.2));
        assert!(!oracle.passes(0.21));
        assert!(!oracle.exhausted());
        oracle.intervene(&df(&[1]));
        assert!(oracle.exhausted());
    }

    #[test]
    fn fingerprints_differ_on_content_and_schema() {
        let a = df(&[1, 2]);
        let b = df(&[2, 1]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c =
            DataFrame::from_columns(vec![Column::from_ints("y", vec![Some(1), Some(2)])]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&c), "column name matters");
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn fingerprint_masks_stale_placeholders_behind_nulls() {
        // Two frames whose only difference is the placeholder hidden
        // under a NULL slot must fingerprint identically: `set(i,
        // Null)` clears the validity bit but leaves the old buffer
        // value in place.
        let mut a = DataFrame::from_columns(vec![Column::from_ints(
            "x",
            vec![Some(10), Some(2), Some(3)],
        )])
        .unwrap();
        let mut b = DataFrame::from_columns(vec![Column::from_ints(
            "x",
            vec![Some(99), Some(2), Some(3)],
        )])
        .unwrap();
        a.column_mut("x").unwrap().set(0, Value::Null).unwrap();
        b.column_mut("x").unwrap().set(0, Value::Null).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint_reference(&a), fingerprint_reference(&b));
        // And flipping which slot is NULL must change the hash.
        let c =
            DataFrame::from_columns(vec![Column::from_ints("x", vec![Some(10), None, Some(3)])])
                .unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn factory_builds_independent_equivalent_systems() {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 100.0;
        let f: &dyn SystemFactory = &factory;
        let mut s1 = f.build();
        let mut s2 = f.build();
        let d = df(&[1, 2, 3]);
        assert_eq!(s1.malfunction(&d), s2.malfunction(&d));
    }

    #[test]
    fn scores_clamped_and_nan_is_extreme() {
        let mut system = |_: &DataFrame| 7.5;
        let mut oracle = Oracle::new(&mut system, 0.2, 10);
        assert_eq!(oracle.intervene(&df(&[1])), 1.0);
        // Failure injection: a system returning NaN (crashed
        // measurement) must read as extreme malfunction, not as a
        // vacuous pass.
        let mut nan_system = |_: &DataFrame| f64::NAN;
        let mut oracle = Oracle::new(&mut nan_system, 0.2, 10);
        let score = oracle.intervene(&df(&[2]));
        assert_eq!(score, 1.0);
        assert!(!oracle.passes(score));
    }
}
