//! The system under diagnosis and the intervention-counting oracle.
//!
//! A [`System`] computes the malfunction score `m_S(D) ∈ [0, 1]`
//! (Definition 3). The [`Oracle`] wraps it with the bookkeeping the
//! paper's evaluation reports: every malfunction evaluation of a
//! *transformed* dataset is an **intervention**, the currency of
//! Fig 7 and Fig 9. Identical datasets are content-fingerprinted so a
//! repeated query (e.g. during Make-Minimal) does not double count.

use dp_frame::{DataFrame, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A (possibly stateful) data-driven system with a malfunction score.
///
/// Implementations retrain models, run pipelines, etc. They must be
/// deterministic functions of the dataset for the diagnosis to be
/// meaningful (seed your models).
pub trait System {
    /// Malfunction score of the system over `df`, in `[0, 1]`
    /// (0 = functions properly).
    fn malfunction(&mut self, df: &DataFrame) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "system"
    }
}

impl<F: FnMut(&DataFrame) -> f64> System for F {
    fn malfunction(&mut self, df: &DataFrame) -> f64 {
        self(df)
    }
}

/// Content fingerprint of a dataframe: hashes schema and every cell.
/// Collisions would only merge two intervention cache entries, never
/// corrupt correctness-critical state.
pub fn fingerprint(df: &DataFrame) -> u64 {
    let mut h = DefaultHasher::new();
    for col in df.columns() {
        col.name().hash(&mut h);
        format!("{:?}", col.dtype()).hash(&mut h);
        for i in 0..col.len() {
            match col.get(i) {
                Value::Null => 0u8.hash(&mut h),
                Value::Int(v) => {
                    1u8.hash(&mut h);
                    v.hash(&mut h);
                }
                Value::Float(v) => {
                    2u8.hash(&mut h);
                    v.to_bits().hash(&mut h);
                }
                Value::Bool(v) => {
                    3u8.hash(&mut h);
                    v.hash(&mut h);
                }
                Value::Str(v) => {
                    4u8.hash(&mut h);
                    v.hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

/// Clamp a malfunction score into `[0, 1]`; a NaN (a crashed or
/// undefined measurement) is treated as extreme malfunction so it can
/// never masquerade as "passes" (NaN comparisons are all false, which
/// would otherwise poison the `m ≤ τ` checks).
fn sanitize(score: f64) -> f64 {
    if score.is_nan() {
        1.0
    } else {
        score.clamp(0.0, 1.0)
    }
}

/// Intervention-counting, caching wrapper around a [`System`].
pub struct Oracle<'a> {
    system: &'a mut dyn System,
    /// Acceptable-malfunction threshold `τ`.
    pub threshold: f64,
    /// Interventions performed. Every [`Oracle::intervene`] query
    /// counts — even when the content cache spares the recomputation
    /// — because an intervention is the *act of asking the oracle*
    /// about a transformed dataset (the metric of the paper's Fig 7
    /// and Fig 9). Only the two problem-input baselines are free.
    pub interventions: usize,
    /// Hard cap; exceeding it surfaces as
    /// [`crate::PrismError::BudgetExhausted`] in the algorithms.
    pub budget: usize,
    cache: HashMap<u64, f64>,
    free: std::collections::HashSet<u64>,
}

impl<'a> Oracle<'a> {
    /// Wrap `system` with threshold `τ` and an intervention budget.
    pub fn new(system: &'a mut dyn System, threshold: f64, budget: usize) -> Self {
        Oracle {
            system,
            threshold,
            interventions: 0,
            budget,
            cache: HashMap::new(),
            free: std::collections::HashSet::new(),
        }
    }

    /// Malfunction score of a *baseline* dataset (`D_pass`/`D_fail`
    /// as given). Never counted as an intervention — the problem
    /// definition assumes these two scores are known — and future
    /// queries of the identical dataset stay free.
    pub fn baseline(&mut self, df: &DataFrame) -> f64 {
        let fp = fingerprint(df);
        self.free.insert(fp);
        if let Some(&score) = self.cache.get(&fp) {
            return score;
        }
        let score = sanitize(self.system.malfunction(df));
        self.cache.insert(fp, score);
        score
    }

    /// Malfunction score of a transformed dataset: one intervention
    /// (the system itself is only re-run when the exact dataset has
    /// not been scored before).
    pub fn intervene(&mut self, df: &DataFrame) -> f64 {
        let fp = fingerprint(df);
        if !self.free.contains(&fp) {
            self.interventions += 1;
        }
        if let Some(&score) = self.cache.get(&fp) {
            return score;
        }
        let score = sanitize(self.system.malfunction(df));
        self.cache.insert(fp, score);
        score
    }

    /// Whether a score is acceptable (`m ≤ τ`).
    pub fn passes(&self, score: f64) -> bool {
        score <= self.threshold
    }

    /// Whether the intervention budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.interventions >= self.budget
    }

    /// Name of the wrapped system.
    pub fn system_name(&self) -> String {
        self.system.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::Column;

    fn df(vals: &[i64]) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_ints(
            "x",
            vals.iter().map(|&v| Some(v)).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn every_query_counts_but_computation_is_cached() {
        let mut calls = 0usize;
        let mut system = |_: &DataFrame| {
            calls += 1;
            0.5
        };
        let mut oracle = Oracle::new(&mut system, 0.2, 100);
        let a = df(&[1, 2, 3]);
        let b = df(&[4, 5, 6]);
        assert_eq!(oracle.intervene(&a), 0.5);
        assert_eq!(oracle.intervene(&a), 0.5, "cached result, counted query");
        assert_eq!(oracle.intervene(&b), 0.5);
        assert_eq!(oracle.interventions, 3);
        drop(oracle);
        assert_eq!(calls, 2, "system invoked once per unique dataset");
    }

    #[test]
    fn baseline_is_free_forever() {
        let mut system = |_: &DataFrame| 0.9;
        let mut oracle = Oracle::new(&mut system, 0.2, 100);
        let d = df(&[1]);
        oracle.baseline(&d);
        assert_eq!(oracle.interventions, 0);
        // Re-querying the exact baseline dataset stays free.
        oracle.intervene(&d);
        assert_eq!(oracle.interventions, 0);
        // A genuinely different dataset counts.
        oracle.intervene(&df(&[2]));
        assert_eq!(oracle.interventions, 1);
    }

    #[test]
    fn passes_and_budget() {
        let mut system = |_: &DataFrame| 0.1;
        let mut oracle = Oracle::new(&mut system, 0.2, 1);
        assert!(oracle.passes(0.2));
        assert!(!oracle.passes(0.21));
        assert!(!oracle.exhausted());
        oracle.intervene(&df(&[1]));
        assert!(oracle.exhausted());
    }

    #[test]
    fn fingerprints_differ_on_content_and_schema() {
        let a = df(&[1, 2]);
        let b = df(&[2, 1]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c =
            DataFrame::from_columns(vec![Column::from_ints("y", vec![Some(1), Some(2)])]).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&c), "column name matters");
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn scores_clamped_and_nan_is_extreme() {
        let mut system = |_: &DataFrame| 7.5;
        let mut oracle = Oracle::new(&mut system, 0.2, 10);
        assert_eq!(oracle.intervene(&df(&[1])), 1.0);
        // Failure injection: a system returning NaN (crashed
        // measurement) must read as extreme malfunction, not as a
        // vacuous pass.
        let mut nan_system = |_: &DataFrame| f64::NAN;
        let mut oracle = Oracle::new(&mut nan_system, 0.2, 10);
        let score = oracle.intervene(&df(&[2]));
        assert_eq!(score, 1.0);
        assert!(!oracle.passes(score));
    }
}
