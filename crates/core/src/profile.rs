//! Data profiles — the `P` of a PVT triplet (paper §2.2.1, Fig 1).
//!
//! A profile denotes a property that the tuples of a dataset
//! (collectively) satisfy. The nine templates below are exactly the
//! rows of the paper's Fig 1; each carries the concrete parameters
//! filled in by discovery over a dataset.

use dp_frame::Predicate;
use dp_stats::Pattern;
use std::collections::BTreeSet;
use std::fmt;

/// Specification of an outlier-detection function `O` (Fig 1 row 4).
/// Parameters are kept symbolic and refit on whichever dataset a
/// violation is computed over — Fig 1's violation applies
/// `O(D.A_j, t.A_j)`, i.e. the detector is relative to the evaluated
/// attribute's own distribution, while the tolerated fraction `θ`
/// stays frozen from discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierSpec {
    /// Mean ± k·σ (the paper's `O_k`).
    ZScore(f64),
    /// Tukey fences with multiplier k.
    Iqr(f64),
    /// Median ± k·1.4826·MAD.
    Mad(f64),
}

impl OutlierSpec {
    /// Build the corresponding fitted detector for `values`.
    /// `None` if the data is degenerate (constant / empty).
    pub fn fit(&self, values: &[f64]) -> Option<Box<dyn dp_stats::OutlierDetector>> {
        use dp_stats::{IqrDetector, MadDetector, OutlierDetector, ZScoreDetector};
        let mut det: Box<dyn OutlierDetector> = match self {
            OutlierSpec::ZScore(k) => Box::new(ZScoreDetector::new(*k)),
            OutlierSpec::Iqr(k) => Box::new(IqrDetector::new(*k)),
            OutlierSpec::Mad(k) => Box::new(MadDetector::new(*k)),
        };
        det.fit(values).then_some(det)
    }
}

impl fmt::Display for OutlierSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutlierSpec::ZScore(k) => write!(f, "O_zscore({k})"),
            OutlierSpec::Iqr(k) => write!(f, "O_iqr({k})"),
            OutlierSpec::Mad(k) => write!(f, "O_mad({k})"),
        }
    }
}

/// Which kind of dependence an `Indep` profile measures (Fig 1 rows
/// 7–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceKind {
    /// χ² statistic between categorical attributes (row 7). Because
    /// the raw statistic scales with `n`, the profile stores and
    /// compares Cramér's V alongside it.
    Chi2,
    /// Pearson correlation between numeric attributes (row 8).
    Pearson,
    /// Linear-SEM causal coefficient (row 9, TETRAD substitute).
    Causal,
}

impl fmt::Display for DependenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependenceKind::Chi2 => write!(f, "chi2"),
            DependenceKind::Pearson => write!(f, "pcc"),
            DependenceKind::Causal => write!(f, "causal"),
        }
    }
}

/// A concretized data profile (Fig 1, one variant per row family).
#[derive(Debug, Clone, PartialEq)]
pub enum Profile {
    /// Row 1 — `⟨Domain, A_j, S⟩` over categorical data: values are
    /// drawn from the set `S`.
    DomainCategorical {
        /// Attribute name.
        attr: String,
        /// The allowed value set.
        values: BTreeSet<String>,
    },
    /// Row 2 — `⟨Domain, A_j, [lb, ub]⟩` over numeric data.
    DomainNumeric {
        /// Attribute name.
        attr: String,
        /// Inclusive lower bound.
        lb: f64,
        /// Inclusive upper bound.
        ub: f64,
    },
    /// Row 3 — `⟨Domain, A_j, S⟩` over text: values satisfy a learned
    /// pattern (with length bounds).
    DomainText {
        /// Attribute name.
        attr: String,
        /// The learned pattern.
        pattern: Pattern,
    },
    /// Row 4 — `⟨Outlier, A_j, O, θ⟩`: the outlier fraction under `O`
    /// does not exceed `θ`.
    Outlier {
        /// Attribute name.
        attr: String,
        /// The detection function.
        detector: OutlierSpec,
        /// Tolerated outlier fraction.
        theta: f64,
    },
    /// Row 5 — `⟨Missing, A_j, θ⟩`: the NULL fraction does not
    /// exceed `θ`.
    Missing {
        /// Attribute name.
        attr: String,
        /// Tolerated missing fraction.
        theta: f64,
    },
    /// Row 6 — `⟨Selectivity, P, θ⟩`: the fraction of tuples
    /// satisfying `P` equals `θ` (see `violation` for the two-sided
    /// semantics this implementation uses).
    Selectivity {
        /// The selection predicate.
        predicate: Predicate,
        /// Expected selectivity.
        theta: f64,
    },
    /// Rows 7–9 — `⟨Indep, A_j, A_k, α⟩`: dependence between the two
    /// attributes does not exceed `α`.
    Indep {
        /// First attribute.
        a: String,
        /// Second attribute.
        b: String,
        /// Dependence bound: |Pearson r|, Cramér's V, or |SEM
        /// coefficient| depending on `kind` — all scale-free values
        /// in `[0, 1]`.
        alpha: f64,
        /// How dependence is measured.
        kind: DependenceKind,
    },
    /// The paper's §3 extension: **conditional profiles**, "where
    /// only a subset of the data is required to satisfy the
    /// profiles" (analogous to conditional functional dependencies).
    /// The inner profile must hold on the tuples selected by the
    /// condition; the rest of the data is unconstrained.
    Conditional {
        /// The tuples the inner profile applies to.
        condition: Predicate,
        /// The profile those tuples must satisfy.
        inner: Box<Profile>,
    },
}

impl Profile {
    /// Attributes this profile is defined over — the edges it
    /// contributes to the PVT–attribute graph (paper §4, Fig 4).
    pub fn attributes(&self) -> Vec<String> {
        match self {
            Profile::DomainCategorical { attr, .. }
            | Profile::DomainNumeric { attr, .. }
            | Profile::DomainText { attr, .. }
            | Profile::Outlier { attr, .. }
            | Profile::Missing { attr, .. } => vec![attr.clone()],
            Profile::Selectivity { predicate, .. } => predicate.columns(),
            Profile::Indep { a, b, .. } => vec![a.clone(), b.clone()],
            Profile::Conditional { condition, inner } => {
                let mut attrs = condition.columns();
                for a in inner.attributes() {
                    if !attrs.contains(&a) {
                        attrs.push(a);
                    }
                }
                attrs
            }
        }
    }

    /// Coarse template identity: two profiles are the "same template"
    /// when they instantiate the same Fig 1 row over the same
    /// attributes (ignoring parameter values). Discriminative-PVT
    /// computation pairs up profiles of the two datasets by this key.
    pub fn template_key(&self) -> String {
        match self {
            Profile::DomainCategorical { attr, .. } => format!("domain_cat({attr})"),
            Profile::DomainNumeric { attr, .. } => format!("domain_num({attr})"),
            Profile::DomainText { attr, .. } => format!("domain_text({attr})"),
            Profile::Outlier { attr, detector, .. } => format!("outlier({attr},{detector})"),
            Profile::Missing { attr, .. } => format!("missing({attr})"),
            Profile::Selectivity { predicate, .. } => format!("selectivity({predicate})"),
            Profile::Indep { a, b, kind, .. } => format!("indep_{kind}({a},{b})"),
            Profile::Conditional { condition, inner } => {
                format!("conditional({condition})[{}]", inner.template_key())
            }
        }
    }

    /// Whether two concretized profiles have (approximately) the same
    /// parameter values — the paper's step 1 "discards the identical
    /// ones". Numeric parameters compare within `tol` (absolute for
    /// values already in `[0,1]`, relative for unbounded bounds).
    pub fn same_parameters(&self, other: &Profile, tol: f64) -> bool {
        use Profile::*;
        match (self, other) {
            (
                DomainCategorical {
                    attr: a1,
                    values: v1,
                },
                DomainCategorical {
                    attr: a2,
                    values: v2,
                },
            ) => a1 == a2 && v1 == v2,
            (
                DomainNumeric {
                    attr: a1,
                    lb: l1,
                    ub: u1,
                },
                DomainNumeric {
                    attr: a2,
                    lb: l2,
                    ub: u2,
                },
            ) => a1 == a2 && approx_rel(*l1, *l2, tol) && approx_rel(*u1, *u2, tol),
            (
                DomainText {
                    attr: a1,
                    pattern: p1,
                },
                DomainText {
                    attr: a2,
                    pattern: p2,
                },
            ) => a1 == a2 && p1 == p2,
            (
                Outlier {
                    attr: a1,
                    detector: d1,
                    theta: t1,
                },
                Outlier {
                    attr: a2,
                    detector: d2,
                    theta: t2,
                },
            ) => a1 == a2 && d1 == d2 && (t1 - t2).abs() <= tol,
            (
                Missing {
                    attr: a1,
                    theta: t1,
                },
                Missing {
                    attr: a2,
                    theta: t2,
                },
            ) => a1 == a2 && (t1 - t2).abs() <= tol,
            (
                Selectivity {
                    predicate: p1,
                    theta: t1,
                },
                Selectivity {
                    predicate: p2,
                    theta: t2,
                },
            ) => p1 == p2 && (t1 - t2).abs() <= tol,
            (
                Indep {
                    a: a1,
                    b: b1,
                    alpha: x1,
                    kind: k1,
                },
                Indep {
                    a: a2,
                    b: b2,
                    alpha: x2,
                    kind: k2,
                },
            ) => a1 == a2 && b1 == b2 && k1 == k2 && (x1 - x2).abs() <= tol,
            (
                Conditional {
                    condition: c1,
                    inner: i1,
                },
                Conditional {
                    condition: c2,
                    inner: i2,
                },
            ) => c1 == c2 && i1.same_parameters(i2, tol),
            _ => false,
        }
    }
}

/// Relative comparison for unbounded numeric parameters.
fn approx_rel(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Profile::DomainCategorical { attr, values } => {
                let vs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
                write!(f, "⟨Domain, {attr}, {{{}}}⟩", vs.join(", "))
            }
            Profile::DomainNumeric { attr, lb, ub } => {
                write!(f, "⟨Domain, {attr}, [{lb:.4}, {ub:.4}]⟩")
            }
            Profile::DomainText { attr, pattern } => {
                write!(f, "⟨Domain, {attr}, /{pattern}/⟩")
            }
            Profile::Outlier {
                attr,
                detector,
                theta,
            } => {
                write!(f, "⟨Outlier, {attr}, {detector}, {theta:.4}⟩")
            }
            Profile::Missing { attr, theta } => {
                write!(f, "⟨Missing, {attr}, {theta:.4}⟩")
            }
            Profile::Selectivity { predicate, theta } => {
                write!(f, "⟨Selectivity, {predicate}, {theta:.4}⟩")
            }
            Profile::Indep { a, b, alpha, kind } => {
                write!(f, "⟨Indep[{kind}], {a}, {b}, {alpha:.4}⟩")
            }
            Profile::Conditional { condition, inner } => {
                write!(f, "⟨{condition} ⟹ {inner}⟩")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::CmpOp;

    fn domain_cat(attr: &str, vals: &[&str]) -> Profile {
        Profile::DomainCategorical {
            attr: attr.into(),
            values: vals.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn attributes_cover_graph_edges() {
        assert_eq!(
            domain_cat("gender", &["F", "M"]).attributes(),
            vec!["gender"]
        );
        let sel = Profile::Selectivity {
            predicate: Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp(
                "high_expenditure",
                CmpOp::Eq,
                "yes",
            )),
            theta: 0.44,
        };
        assert_eq!(sel.attributes(), vec!["gender", "high_expenditure"]);
        let indep = Profile::Indep {
            a: "race".into(),
            b: "high_expenditure".into(),
            alpha: 0.04,
            kind: DependenceKind::Chi2,
        };
        assert_eq!(indep.attributes(), vec!["race", "high_expenditure"]);
    }

    #[test]
    fn template_keys_ignore_parameters() {
        let p1 = domain_cat("target", &["-1", "1"]);
        let p2 = domain_cat("target", &["0", "4"]);
        assert_eq!(p1.template_key(), p2.template_key());
        assert_ne!(
            p1.template_key(),
            domain_cat("other", &["x"]).template_key()
        );
    }

    #[test]
    fn same_parameters_detects_discrimination() {
        // The Sentiment case's discriminative Domain profile.
        let pass = domain_cat("target", &["-1", "1"]);
        let fail = domain_cat("target", &["0", "4"]);
        assert!(!pass.same_parameters(&fail, 0.01));
        assert!(pass.same_parameters(&pass.clone(), 0.01));

        let a = Profile::DomainNumeric {
            attr: "age".into(),
            lb: 22.0,
            ub: 51.0,
        };
        let b = Profile::DomainNumeric {
            attr: "age".into(),
            lb: 20.0,
            ub: 60.0,
        };
        assert!(!a.same_parameters(&b, 0.01));
        let close = Profile::DomainNumeric {
            attr: "age".into(),
            lb: 22.05,
            ub: 51.1,
        };
        assert!(a.same_parameters(&close, 0.01), "within relative tolerance");
    }

    #[test]
    fn indep_kinds_are_distinct_templates() {
        let chi = Profile::Indep {
            a: "x".into(),
            b: "y".into(),
            alpha: 0.1,
            kind: DependenceKind::Chi2,
        };
        let pcc = Profile::Indep {
            a: "x".into(),
            b: "y".into(),
            alpha: 0.1,
            kind: DependenceKind::Pearson,
        };
        assert_ne!(chi.template_key(), pcc.template_key());
        assert!(!chi.same_parameters(&pcc, 0.5));
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = domain_cat("gender", &["F", "M"]);
        assert_eq!(p.to_string(), "⟨Domain, gender, {F, M}⟩");
        let m = Profile::Missing {
            attr: "zip_code".into(),
            theta: 0.11,
        };
        assert_eq!(m.to_string(), "⟨Missing, zip_code, 0.1100⟩");
    }

    #[test]
    fn outlier_spec_fit_roundtrip() {
        let spec = OutlierSpec::ZScore(1.5);
        let ages = [45.0, 40.0, 60.0, 22.0, 41.0, 32.0, 25.0, 35.0, 25.0, 20.0];
        let det = spec.fit(&ages).unwrap();
        assert!(det.is_outlier(60.0));
        assert!(!det.is_outlier(45.0));
        assert!(spec.fit(&[1.0, 1.0]).is_none(), "degenerate data");
    }
}
