//! Profile violation functions — the `V` of a PVT triplet
//! (paper §2.2.2, Fig 1 column "Violation by D").
//!
//! `violation(D, P) ∈ [0, 1]`; 0 means `D` fully complies with `P`.
//! The formulas follow Fig 1 exactly, with two documented choices:
//!
//! 1. **Selectivity is two-sided.** Fig 1 row 6 penalizes only
//!    selectivity *above* `θ`, but the paper's own running example
//!    blames the failing dataset for selectivity *below* `θ` (0.1 vs
//!    0.44 for `gender=F ∧ high_expenditure=yes`, fixed by
//!    **over**sampling). We therefore use
//!    `|sel(D) − θ| / max(θ, 1−θ)`, which is 0 exactly when the
//!    selectivity matches and normalizes to `[0, 1]`.
//! 2. **Dependence parameters are scale-free.** Row 7's raw χ²
//!    statistic grows with `|D|`, which would make the violation of a
//!    large failing dataset against a small passing dataset's `α`
//!    meaningless; we store Cramér's V (in `[0,1]`) as `α` and use
//!    `max(0, (V(D) − α) / (1 − α))`, the same shape as rows 8–9.

use crate::profile::{DependenceKind, Profile};
use dp_frame::groupby::ContingencyTable;
use dp_frame::{DType, DataFrame};
use dp_stats::causal::sem_coefficient;
use dp_stats::{chi_squared, pearson};

/// How much `df` violates `profile`, in `[0, 1]`.
///
/// Degenerate situations (missing column, empty frame, non-numeric
/// data for a numeric profile) yield 0 — a dataset cannot violate a
/// profile it has no data for, and discovery never produces such
/// pairings in the first place.
pub fn violation(df: &DataFrame, profile: &Profile) -> f64 {
    match profile {
        Profile::DomainCategorical { attr, values } => {
            let Ok(col) = df.column(attr) else { return 0.0 };
            let total = col.len();
            if total == 0 {
                return 0.0;
            }
            let out = col
                .str_values()
                .iter()
                .filter(|(_, s)| !values.contains(*s))
                .count();
            out as f64 / total as f64
        }
        Profile::DomainNumeric { attr, lb, ub } => {
            let Ok(col) = df.column(attr) else { return 0.0 };
            let total = col.len();
            if total == 0 {
                return 0.0;
            }
            let out = col
                .f64_values()
                .iter()
                .filter(|(_, v)| *v < *lb || *v > *ub)
                .count();
            out as f64 / total as f64
        }
        Profile::DomainText { attr, pattern } => {
            let Ok(col) = df.column(attr) else { return 0.0 };
            let total = col.len();
            if total == 0 {
                return 0.0;
            }
            let out = col
                .str_values()
                .iter()
                .filter(|(_, s)| !pattern.matches(s))
                .count();
            out as f64 / total as f64
        }
        Profile::Outlier {
            attr,
            detector,
            theta,
        } => {
            let Ok(col) = df.column(attr) else { return 0.0 };
            let total = col.len();
            if total == 0 {
                return 0.0;
            }
            let values: Vec<f64> = col.f64_values().into_iter().map(|(_, v)| v).collect();
            let Some(det) = detector.fit(&values) else {
                return 0.0;
            };
            let outliers = values.iter().filter(|&&v| det.is_outlier(v)).count();
            threshold_excess(outliers as f64 / total as f64, *theta)
        }
        Profile::Missing { attr, theta } => {
            let Ok(col) = df.column(attr) else { return 0.0 };
            let total = col.len();
            if total == 0 {
                return 0.0;
            }
            threshold_excess(col.null_count() as f64 / total as f64, *theta)
        }
        Profile::Selectivity { predicate, theta } => {
            let Ok(sel) = df.selectivity(predicate) else {
                return 0.0;
            };
            let denom = theta.max(1.0 - theta);
            if denom == 0.0 {
                0.0
            } else {
                ((sel - theta).abs() / denom).clamp(0.0, 1.0)
            }
        }
        Profile::Indep { a, b, alpha, kind } => {
            let dep = dependence(df, a, b, *kind);
            parameter_excess(dep, *alpha)
        }
        Profile::Conditional { condition, inner } => {
            // §3 extension: the inner profile is evaluated on the
            // selected subset only.
            match df.filter_by(condition) {
                Ok(subset) if !subset.is_empty() => violation(&subset, inner),
                _ => 0.0,
            }
        }
    }
}

/// Fig 1's "thresholded by data coverage" shape:
/// `max(0, (fraction − θ) / (1 − θ))`.
fn threshold_excess(fraction: f64, theta: f64) -> f64 {
    if theta >= 1.0 {
        return 0.0;
    }
    ((fraction - theta) / (1.0 - theta)).clamp(0.0, 1.0)
}

/// Fig 1's "thresholded by parameter" shape:
/// `max(0, (|value| − α) / (1 − α))`.
fn parameter_excess(value: f64, alpha: f64) -> f64 {
    let alpha = alpha.abs().min(1.0);
    if alpha >= 1.0 {
        return 0.0;
    }
    ((value.abs() - alpha) / (1.0 - alpha)).clamp(0.0, 1.0)
}

/// Scale-free dependence measurement between two attributes of `df`:
/// Cramér's V (χ²), |Pearson r|, or |SEM coefficient|, all in
/// `[0, 1]`. Returns 0 for missing columns or degenerate data.
pub fn dependence(df: &DataFrame, a: &str, b: &str, kind: DependenceKind) -> f64 {
    match kind {
        DependenceKind::Chi2 => {
            let Ok(table) = ContingencyTable::from_frame(df, a, b) else {
                return 0.0;
            };
            let res = chi_squared(&table);
            if res.significant(0.05) {
                res.cramers_v
            } else {
                0.0
            }
        }
        DependenceKind::Pearson => {
            let Some((xs, ys)) = paired_numeric(df, a, b) else {
                return 0.0;
            };
            let c = pearson(&xs, &ys);
            if c.significant(0.05) {
                c.r.abs()
            } else {
                0.0
            }
        }
        DependenceKind::Causal => {
            let Some((xs, ys)) = paired_numeric(df, a, b) else {
                return 0.0;
            };
            sem_coefficient(&xs, &ys, &[]).abs()
        }
    }
}

/// Aligned non-NULL numeric pairs from two columns. Categorical and
/// boolean columns are numerically coded by their sorted distinct
/// value index so mixed-type dependence (Fig 1 row 9 supports
/// "categorical, numerical") is measurable.
pub fn paired_numeric(df: &DataFrame, a: &str, b: &str) -> Option<(Vec<f64>, Vec<f64>)> {
    let ca = df.column(a).ok()?;
    let cb = df.column(b).ok()?;
    let code = |col: &dp_frame::Column, i: usize| -> Option<f64> {
        if col.is_null(i) {
            return None;
        }
        if col.dtype().is_numeric() || col.dtype() == DType::Bool {
            col.get(i).as_f64()
        } else {
            // Stable integer coding of categorical values.
            let v = col.get(i).to_string();
            let values = col.value_counts();
            values.iter().position(|(s, _)| *s == v).map(|p| p as f64)
        }
    };
    // Precompute categorical codings once (value_counts per row would
    // be quadratic).
    let coded = |col: &dp_frame::Column| -> Vec<Option<f64>> {
        if col.dtype().is_numeric() || col.dtype() == DType::Bool {
            (0..col.len()).map(|i| code(col, i)).collect()
        } else {
            let values = col.value_counts();
            (0..col.len())
                .map(|i| {
                    if col.is_null(i) {
                        None
                    } else {
                        let v = col.get(i).to_string();
                        values.iter().position(|(s, _)| *s == v).map(|p| p as f64)
                    }
                })
                .collect()
        }
    };
    let xa = coded(ca);
    let xb = coded(cb);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (va, vb) in xa.into_iter().zip(xb) {
        if let (Some(x), Some(y)) = (va, vb) {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.len() < 2 {
        None
    } else {
        Some((xs, ys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OutlierSpec;
    use dp_frame::{CmpOp, Column, Predicate};

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    #[test]
    fn domain_categorical_fraction_outside() {
        // Sentiment case: target ∈ {0,4} vs pass domain {-1,1}.
        let df = DataFrame::from_columns(vec![cat("target", &["0", "4", "4", "0"])]).unwrap();
        let profile = Profile::DomainCategorical {
            attr: "target".into(),
            values: ["-1", "1"].iter().map(|s| s.to_string()).collect(),
        };
        assert_eq!(violation(&df, &profile), 1.0);
        let ok = DataFrame::from_columns(vec![cat("target", &["-1", "1", "1", "-1"])]).unwrap();
        assert_eq!(violation(&ok, &profile), 0.0);
    }

    #[test]
    fn domain_numeric_unit_mismatch() {
        // Cardio case: heights in inches all fall outside the cm range.
        let heights: Vec<Option<f64>> = vec![Some(65.0), Some(70.0), Some(72.0)];
        let df = DataFrame::from_columns(vec![Column::from_floats("height", heights)]).unwrap();
        let profile = Profile::DomainNumeric {
            attr: "height".into(),
            lb: 150.0,
            ub: 195.0,
        };
        assert_eq!(violation(&df, &profile), 1.0);
    }

    #[test]
    fn missing_threshold_excess() {
        let df = DataFrame::from_columns(vec![Column::from_ints(
            "zip",
            vec![Some(1), None, None, None, Some(2)],
        )])
        .unwrap();
        // 60% missing vs θ = 0.2: (0.6 - 0.2) / 0.8 = 0.5.
        let profile = Profile::Missing {
            attr: "zip".into(),
            theta: 0.2,
        };
        assert!((violation(&df, &profile) - 0.5).abs() < 1e-12);
        // Below threshold: zero.
        let profile = Profile::Missing {
            attr: "zip".into(),
            theta: 0.7,
        };
        assert_eq!(violation(&df, &profile), 0.0);
    }

    #[test]
    fn outlier_refits_on_evaluated_data() {
        let values: Vec<Option<f64>> = (0..99)
            .map(|i| Some((i % 10) as f64))
            .chain(std::iter::once(Some(1000.0)))
            .collect();
        let df = DataFrame::from_columns(vec![Column::from_floats("x", values)]).unwrap();
        let profile = Profile::Outlier {
            attr: "x".into(),
            detector: OutlierSpec::ZScore(3.0),
            theta: 0.0,
        };
        let v = violation(&df, &profile);
        assert!(
            (v - 0.01).abs() < 1e-9,
            "one of 100 values is an outlier, got {v}"
        );
    }

    #[test]
    fn selectivity_is_two_sided() {
        let df = DataFrame::from_columns(vec![cat(
            "gender",
            &["F", "M", "M", "M", "M", "M", "M", "M", "M", "M"],
        )])
        .unwrap();
        let pred = Predicate::cmp("gender", CmpOp::Eq, "F");
        // Observed selectivity 0.1 vs θ = 0.44 (the paper example's
        // under-representation direction): |0.1-0.44|/0.56 ≈ 0.607.
        let profile = Profile::Selectivity {
            predicate: pred.clone(),
            theta: 0.44,
        };
        let v = violation(&df, &profile);
        assert!((v - 0.34 / 0.56).abs() < 1e-9, "got {v}");
        // Exact match: zero violation.
        let profile = Profile::Selectivity {
            predicate: pred,
            theta: 0.1,
        };
        assert!(violation(&df, &profile).abs() < 1e-12);
    }

    #[test]
    fn indep_chi2_detects_planted_dependence() {
        // race perfectly determines high_expenditure.
        let mut race = Vec::new();
        let mut high = Vec::new();
        for _ in 0..30 {
            race.push("A");
            high.push("no");
            race.push("W");
            high.push("yes");
        }
        let df = DataFrame::from_columns(vec![cat("race", &race), cat("high", &high)]).unwrap();
        let profile = Profile::Indep {
            a: "race".into(),
            b: "high".into(),
            alpha: 0.04,
            kind: DependenceKind::Chi2,
        };
        let v = violation(&df, &profile);
        assert!(v > 0.9, "perfect dependence vs tiny alpha, got {v}");
        // Independent data: no violation.
        let mut race = Vec::new();
        let mut high = Vec::new();
        for i in 0..40 {
            race.push(if i % 2 == 0 { "A" } else { "W" });
            high.push(if (i / 2) % 2 == 0 { "no" } else { "yes" });
        }
        let df = DataFrame::from_columns(vec![cat("race", &race), cat("high", &high)]).unwrap();
        assert_eq!(violation(&df, &profile), 0.0);
    }

    #[test]
    fn indep_pearson_and_causal() {
        let xs: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (0..100).map(|i| Some(2.0 * i as f64 + 1.0)).collect();
        let df = DataFrame::from_columns(vec![
            Column::from_floats("x", xs),
            Column::from_floats("y", ys),
        ])
        .unwrap();
        for kind in [DependenceKind::Pearson, DependenceKind::Causal] {
            let profile = Profile::Indep {
                a: "x".into(),
                b: "y".into(),
                alpha: 0.1,
                kind,
            };
            let v = violation(&df, &profile);
            assert!(v > 0.95, "{kind:?} violation was {v}");
        }
    }

    #[test]
    fn missing_column_cannot_violate() {
        let df = DataFrame::from_columns(vec![cat("a", &["x"])]).unwrap();
        let profile = Profile::Missing {
            attr: "nope".into(),
            theta: 0.0,
        };
        assert_eq!(violation(&df, &profile), 0.0);
    }

    #[test]
    fn paired_numeric_codes_categoricals() {
        let df = DataFrame::from_columns(vec![
            cat("g", &["F", "M", "F", "M"]),
            Column::from_ints("y", vec![Some(0), Some(1), Some(0), None]),
        ])
        .unwrap();
        let (xs, ys) = paired_numeric(&df, "g", "y").unwrap();
        assert_eq!(xs.len(), 3, "NULL row dropped");
        assert_eq!(xs, vec![0.0, 1.0, 0.0], "F=0, M=1 by sorted order");
        assert_eq!(ys, vec![0.0, 1.0, 0.0]);
    }
}
