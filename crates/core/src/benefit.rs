//! Benefit scores (paper §4.2 "Benefit score calculation").
//!
//! The benefit of a PVT estimates — *without* performing the
//! intervention — how likely its transformation is to reduce the
//! malfunction score: the product of the failing dataset's violation
//! score w.r.t. the PVT's profile (observation O2) and the coverage
//! of its transformation, i.e. the fraction of tuples it would modify
//! (observation O3).

use crate::pvt::Pvt;
use dp_frame::DataFrame;
use std::collections::BTreeMap;

/// Benefit of one PVT on the (current) failing dataset:
/// `violation × coverage`.
pub fn benefit(pvt: &Pvt, d_fail: &DataFrame) -> f64 {
    pvt.violation(d_fail) * pvt.transform.coverage(d_fail)
}

/// Benefit scores for a whole candidate set, keyed by PVT id
/// (Alg 1 line 6).
pub fn benefit_scores(pvts: &[Pvt], d_fail: &DataFrame) -> BTreeMap<usize, f64> {
    pvts.iter().map(|p| (p.id, benefit(p, d_fail))).collect()
}

/// Recompute benefits for the PVTs whose ids are listed (Alg 1
/// line 17's incremental update after an intervention changes the
/// dataset).
pub fn update_benefits(
    scores: &mut BTreeMap<usize, f64>,
    pvts: &[Pvt],
    ids: &[usize],
    d_fail: &DataFrame,
) {
    for &id in ids {
        if let Some(pvt) = pvts.iter().find(|p| p.id == id) {
            scores.insert(id, benefit(pvt, d_fail));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::transform::{ImputeStrategy, Transform};
    use dp_frame::{Column, DType, DataFrame};

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_strings(
                "target",
                DType::Categorical,
                vec![Some("0".into()), Some("4".into()), Some("4".into()), None],
            ),
            Column::from_ints("zip", vec![Some(1), None, None, Some(2)]),
        ])
        .unwrap()
    }

    fn domain_pvt() -> Pvt {
        let values = ["-1", "1"].iter().map(|s| s.to_string()).collect();
        Pvt {
            id: 0,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: ["-1", "1"].iter().map(|s| s.to_string()).collect(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values,
            },
        }
    }

    fn missing_pvt() -> Pvt {
        Pvt {
            id: 1,
            profile: Profile::Missing {
                attr: "zip".into(),
                theta: 0.0,
            },
            transform: Transform::Impute {
                attr: "zip".into(),
                strategy: ImputeStrategy::Central,
            },
        }
    }

    #[test]
    fn benefit_is_violation_times_coverage() {
        let df = frame();
        // Domain: violation 3/4 (3 foreign values of 4 rows),
        // coverage 3/4 → benefit 9/16.
        let b = benefit(&domain_pvt(), &df);
        assert!((b - 0.75 * 0.75).abs() < 1e-12, "{b}");
        // Missing: violation 1/2 (θ=0), coverage 1/2 → 1/4.
        let b = benefit(&missing_pvt(), &df);
        assert!((b - 0.25).abs() < 1e-12, "{b}");
    }

    #[test]
    fn higher_coverage_ranks_first() {
        // Mirrors the paper's §4.1 step 3 intuition: the transform
        // affecting more tuples gets the higher benefit.
        let df = frame();
        let scores = benefit_scores(&[domain_pvt(), missing_pvt()], &df);
        assert!(scores[&0] > scores[&1]);
    }

    #[test]
    fn update_recomputes_selected_ids() {
        let df = frame();
        let pvts = vec![domain_pvt(), missing_pvt()];
        let mut scores = benefit_scores(&pvts, &df);
        // Repair the missing values, then update only PVT 1.
        let fixed = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0);
            pvts[1].apply(&df, &mut rng).unwrap().0
        };
        update_benefits(&mut scores, &pvts, &[1], &fixed);
        assert_eq!(scores[&1], 0.0, "no missing values remain");
        assert!(scores[&0] > 0.0, "untouched PVT keeps its old score");
    }
}
