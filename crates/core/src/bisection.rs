//! Algorithm 4 (appendix A) — local-search minimum bisection of the
//! PVT-dependency graph.
//!
//! Group testing wants both partitions to keep dependent PVTs (those
//! sharing attributes) together, so that discarding a useless
//! partition prunes whole attribute neighborhoods at once. Minimum
//! bisection is NP-hard; the paper uses the classic local-search
//! heuristic: start from a random balanced split, then swap PVT pairs
//! across the cut while the number of cut edges decreases.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Derive the seed of one of the documented per-node RNG streams of
/// the group-testing recursion: a SplitMix64-style mix of the run
/// seed ([`crate::PrismConfig::seed`]), a stream tag, and the
/// canonical (sorted) id set identifying the node. The mix is fully
/// specified here — no `std` hasher — so derived streams are stable
/// across runs, platforms, and toolchains.
///
/// Making every partition and every composed application a *pure
/// function* of `(seed, ids)` — instead of consuming one global
/// sequential stream — is what lets the parallel runtime speculate
/// arbitrary descendants of the recursion tree: any future node's
/// candidate frame can be materialized on a worker thread without
/// replaying the serial history, and the serial replay derives the
/// exact same stream when it arrives. It also makes `GrpTest`
/// baseline partitions reproducible across thread counts and
/// intervention histories.
pub fn stream_seed(seed: u64, tag: u64, ids: &[usize]) -> u64 {
    let mut acc = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &id in ids {
        let mut z = acc
            .wrapping_add(id as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

/// Stream tag for partitioning draws (bisection shuffles and local
/// search) — see [`stream_seed`].
pub const PARTITION_STREAM: u64 = 0x50_41_52_54; // "PART"

/// Stream tag for transformation-application draws (composed
/// transforms consuming randomness) — see [`stream_seed`].
pub const APPLY_STREAM: u64 = 0x41_50_50_4C; // "APPL"

/// The RNG for partitioning the candidate set `ids`: seeded from the
/// documented [`PARTITION_STREAM`] over the canonicalized id set, so
/// the same candidates always partition the same way for a given run
/// seed — regardless of thread count, speculation depth, or how many
/// interventions preceded the call.
pub fn partition_rng(seed: u64, ids: &[usize]) -> StdRng {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    StdRng::seed_from_u64(stream_seed(seed, PARTITION_STREAM, &sorted))
}

/// Partition `items` into two halves whose sizes differ by at most
/// one, minimizing (locally) the number of `edges` crossing the cut.
///
/// `edges` are unordered pairs of item values (ids). Items appearing
/// in no edge are free movers the search places wherever balance
/// requires.
pub fn min_bisection(
    items: &[usize],
    edges: &[(usize, usize)],
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    let n = items.len();
    if n <= 1 {
        return (items.to_vec(), Vec::new());
    }
    // Line 1: random balanced initialization.
    let mut shuffled = items.to_vec();
    shuffled.shuffle(rng);
    let half = n.div_ceil(2);
    let mut left: Vec<usize> = shuffled[..half].to_vec();
    let mut right: Vec<usize> = shuffled[half..].to_vec();

    let cut = |l: &[usize], r: &[usize]| -> usize {
        let ls: BTreeSet<usize> = l.iter().copied().collect();
        let rs: BTreeSet<usize> = r.iter().copied().collect();
        edges
            .iter()
            .filter(|(a, b)| {
                (ls.contains(a) && rs.contains(b)) || (rs.contains(a) && ls.contains(b))
            })
            .count()
    };

    // Lines 2–14: swap pairs while the cut shrinks.
    let mut current = cut(&left, &right);
    loop {
        let mut improved = false;
        'search: for i in 0..left.len() {
            for j in 0..right.len() {
                std::mem::swap(&mut left[i], &mut right[j]);
                let candidate = cut(&left, &right);
                if candidate < current {
                    current = candidate;
                    improved = true;
                    break 'search;
                }
                std::mem::swap(&mut left[i], &mut right[j]);
            }
        }
        if !improved {
            break;
        }
    }
    (left, right)
}

/// Random balanced bisection — the partitioning used by the `GrpTest`
/// baseline (traditional adaptive group testing, \[21\]).
pub fn random_bisection(items: &[usize], rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
    let mut shuffled = items.to_vec();
    shuffled.shuffle(rng);
    let half = shuffled.len().div_ceil(2);
    let right = shuffled.split_off(half);
    (shuffled, right)
}

/// Number of dependency edges crossing a bisection — the objective
/// [`min_bisection`] minimizes, re-derived from the graph's edge
/// predicate. Quadratic in the half sizes; used to annotate
/// [`dp_trace::Event::BisectionPartition`] events, so it only runs
/// when a trace sink is attached.
pub fn cut_size(
    left: &[usize],
    right: &[usize],
    dependent: impl Fn(usize, usize) -> bool,
) -> usize {
    left.iter()
        .map(|&i| right.iter().filter(|&&j| dependent(i, j)).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn cut_size(l: &[usize], r: &[usize], edges: &[(usize, usize)]) -> usize {
        let ls: BTreeSet<usize> = l.iter().copied().collect();
        let rs: BTreeSet<usize> = r.iter().copied().collect();
        edges
            .iter()
            .filter(|(a, b)| {
                (ls.contains(a) && rs.contains(b)) || (rs.contains(a) && ls.contains(b))
            })
            .count()
    }

    #[test]
    fn perfect_split_of_two_cliques() {
        // Two 4-cliques with no inter-clique edges: the optimum cut
        // is 0, and local search must find it.
        let items: Vec<usize> = (0..8).collect();
        let mut edges = Vec::new();
        for group in [[0, 1, 2, 3], [4, 5, 6, 7]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((group[i], group[j]));
                }
            }
        }
        let mut r = rng();
        let (l, rp) = min_bisection(&items, &edges, &mut r);
        assert_eq!(l.len(), 4);
        assert_eq!(rp.len(), 4);
        assert_eq!(cut_size(&l, &rp, &edges), 0, "{l:?} | {rp:?}");
    }

    #[test]
    fn paper_fig6_pair_structure() {
        // Fig 6(a): pairs (X1,X4), (X2,X3), (X5,X7), (X6,X8) are
        // dependent. Min bisection must never split a pair.
        let items: Vec<usize> = (1..=8).collect();
        let edges = vec![(1, 4), (2, 3), (5, 7), (6, 8)];
        let mut r = rng();
        let (l, rp) = min_bisection(&items, &edges, &mut r);
        assert_eq!(cut_size(&l, &rp, &edges), 0);
        for (a, b) in &edges {
            let same = (l.contains(a) && l.contains(b)) || (rp.contains(a) && rp.contains(b));
            assert!(same, "pair ({a},{b}) split across {l:?} | {rp:?}");
        }
    }

    #[test]
    fn balanced_sizes_odd_count() {
        let items: Vec<usize> = (0..7).collect();
        let mut r = rng();
        let (l, rp) = min_bisection(&items, &[], &mut r);
        assert_eq!(l.len(), 4);
        assert_eq!(rp.len(), 3);
        let mut all: Vec<usize> = l.iter().chain(rp.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn random_bisection_is_balanced_partition() {
        let items: Vec<usize> = (0..9).collect();
        let mut r = rng();
        let (l, rp) = random_bisection(&items, &mut r);
        assert_eq!(l.len(), 5);
        assert_eq!(rp.len(), 4);
        let mut all: Vec<usize> = l.iter().chain(rp.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn degenerate_inputs() {
        let mut r = rng();
        let (l, rp) = min_bisection(&[], &[], &mut r);
        assert!(l.is_empty() && rp.is_empty());
        let (l, rp) = min_bisection(&[42], &[], &mut r);
        assert_eq!(l, vec![42]);
        assert!(rp.is_empty());
    }
}
