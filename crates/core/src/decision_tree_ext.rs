//! Appendix B / Algorithm 5 — handling interacting PVTs with a
//! decision tree over multiple passing and failing datasets.
//!
//! When assumption A2 fails (intervening on PVT `P1` alone does not
//! help, but `P1` together with `P2` does), the greedy and
//! group-testing algorithms can miss the cause. Given *several*
//! passing and failing datasets, Algorithm 5 fits a decision tree on
//! (PVT-violation vector → pass/fail) instances, reads off the pure
//! "pass" paths as candidate conjunctions, and verifies them by
//! intervention, feeding failed attempts back as new training
//! instances.
//!
//! The tree here is a purpose-built ID3-style tree over *binary*
//! violation indicators (violated / not violated), which is all
//! Algorithm 5 requires.

use crate::config::PrismConfig;
use crate::error::{PrismError, Result};
use crate::explanation::{Explanation, TraceEvent};
use crate::oracle::{Oracle, System};
use crate::pvt::{apply_composition, Pvt};
use dp_frame::DataFrame;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// One training instance: which PVTs a dataset violates, and whether
/// the system passed on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// `violated[i]` — does the dataset violate `pvts[i].profile`?
    pub violated: Vec<bool>,
    /// Did the system pass (`m_S ≤ τ`)?
    pub pass: bool,
}

/// Compute the violation indicator vector of a dataset.
pub fn violation_vector(df: &DataFrame, pvts: &[Pvt]) -> Vec<bool> {
    pvts.iter().map(|p| p.violation(df) > 0.0).collect()
}

/// Binary decision tree over violation indicators.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        pass: bool,
        pure: bool,
    },
    Split {
        feature: usize,
        /// Child for `violated == false`.
        clean: Box<Node>,
        /// Child for `violated == true`.
        violated: Box<Node>,
    },
}

fn entropy(pos: usize, neg: usize) -> f64 {
    let total = (pos + neg) as f64;
    if total == 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for c in [pos, neg] {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

fn fit_tree(instances: &[&Instance], used: &BTreeSet<usize>, n_features: usize) -> Node {
    let pos = instances.iter().filter(|i| i.pass).count();
    let neg = instances.len() - pos;
    if pos == 0 || neg == 0 || used.len() == n_features {
        return Node::Leaf {
            pass: pos >= neg,
            pure: pos == 0 || neg == 0,
        };
    }
    // Best information-gain split among unused features.
    let parent = entropy(pos, neg);
    let mut best: Option<(usize, f64)> = None;
    for f in 0..n_features {
        if used.contains(&f) {
            continue;
        }
        let (mut vp, mut vn, mut cp, mut cn) = (0usize, 0usize, 0usize, 0usize);
        for inst in instances {
            match (inst.violated[f], inst.pass) {
                (true, true) => vp += 1,
                (true, false) => vn += 1,
                (false, true) => cp += 1,
                (false, false) => cn += 1,
            }
        }
        if vp + vn == 0 || cp + cn == 0 {
            continue; // feature constant on this subset
        }
        let total = instances.len() as f64;
        let child = ((vp + vn) as f64 / total) * entropy(vp, vn)
            + ((cp + cn) as f64 / total) * entropy(cp, cn);
        let gain = parent - child;
        if gain > 1e-12 && best.is_none_or(|(_, g)| gain > g) {
            best = Some((f, gain));
        }
    }
    let Some((feature, _)) = best else {
        return Node::Leaf {
            pass: pos >= neg,
            pure: false,
        };
    };
    let mut used2 = used.clone();
    used2.insert(feature);
    let clean: Vec<&Instance> = instances
        .iter()
        .copied()
        .filter(|i| !i.violated[feature])
        .collect();
    let violated: Vec<&Instance> = instances
        .iter()
        .copied()
        .filter(|i| i.violated[feature])
        .collect();
    Node::Split {
        feature,
        clean: Box::new(fit_tree(&clean, &used2, n_features)),
        violated: Box::new(fit_tree(&violated, &used2, n_features)),
    }
}

/// Collect the paths that end in *pure pass* leaves. Each path yields
/// the set of features required to be clean (non-violated) along it.
fn pass_paths(node: &Node, require_clean: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    match node {
        Node::Leaf { pass, pure } => {
            if *pass && *pure {
                out.push(require_clean.clone());
            }
        }
        Node::Split {
            feature,
            clean,
            violated,
        } => {
            require_clean.push(*feature);
            pass_paths(clean, require_clean, out);
            require_clean.pop();
            pass_paths(violated, require_clean, out);
        }
    }
}

/// Run Algorithm 5: diagnose `d_fail` using a decision tree trained
/// on `datasets` (each labeled pass/fail by the oracle) plus the
/// baseline pair, verifying candidate conjunctions by intervention.
///
/// `pvts` is the candidate PVT set (for the A2-violating synthetic
/// scenarios, the discriminative set of any fail/pass pair works).
pub fn explain_with_decision_tree(
    system: &mut dyn System,
    d_fail: &DataFrame,
    datasets: &[DataFrame],
    pvts: &[Pvt],
    config: &PrismConfig,
) -> Result<Explanation> {
    if pvts.is_empty() {
        return Err(PrismError::NoDiscriminativePvts);
    }
    let mut oracle = Oracle::new(system, config.threshold, config.max_interventions);
    let initial_score = oracle.baseline(d_fail);
    let mut trace = vec![TraceEvent::Discovered { n_pvts: pvts.len() }];
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD7EE);

    // Seed training instances from the provided datasets (these are
    // observations, not interventions).
    let mut instances: Vec<Instance> = Vec::new();
    for df in datasets {
        let score = oracle.baseline(df);
        instances.push(Instance {
            violated: violation_vector(df, pvts),
            pass: oracle.passes(score),
        });
    }
    instances.push(Instance {
        violated: violation_vector(d_fail, pvts),
        pass: false,
    });

    let fail_violations = violation_vector(d_fail, pvts);

    // Lines 2–11: explore tree paths until a verified fix is found.
    let max_rebuilds = 2 * pvts.len() + 4;
    for _ in 0..max_rebuilds {
        if oracle.exhausted() {
            break;
        }
        let refs: Vec<&Instance> = instances.iter().collect();
        let tree = fit_tree(&refs, &BTreeSet::new(), pvts.len());
        let mut paths = Vec::new();
        pass_paths(&tree, &mut Vec::new(), &mut paths);
        // Candidate conjunction = clean-required features that the
        // failing dataset currently violates. Sort by total benefit.
        let mut candidates: Vec<Vec<usize>> = paths
            .into_iter()
            .map(|path| {
                path.into_iter()
                    .filter(|&f| fail_violations[f])
                    .collect::<Vec<usize>>()
            })
            .filter(|c| !c.is_empty())
            .collect();
        candidates.sort_by(|a, b| {
            let score = |c: &Vec<usize>| -> f64 {
                c.iter()
                    .map(|&f| crate::benefit::benefit(&pvts[f], d_fail))
                    .sum()
            };
            score(b).total_cmp(&score(a))
        });
        candidates.dedup();
        if candidates.is_empty() {
            // No informative pass path: grow the training set by
            // trying the full conjunction (exploration step).
            candidates.push((0..pvts.len()).filter(|&f| fail_violations[f]).collect());
        }
        let mut progressed = false;
        for conj in candidates {
            if oracle.exhausted() {
                break;
            }
            let refs: Vec<&Pvt> = conj.iter().map(|&f| &pvts[f]).collect();
            let (transformed, _) = apply_composition(&refs, d_fail, &mut rng)?;
            let score = oracle.intervene(&transformed);
            let pass = oracle.passes(score);
            trace.push(TraceEvent::Intervention {
                pvt_ids: conj.clone(),
                before: initial_score,
                after: score,
                kept: pass,
            });
            if pass {
                // Found: minimize and report.
                let selected: Vec<Pvt> = conj.iter().map(|&f| pvts[f].clone()).collect();
                let (selected, repaired, final_score) = crate::greedy::make_minimal(
                    &mut oracle,
                    d_fail,
                    selected,
                    transformed,
                    score,
                    config.seed,
                    &mut trace,
                    &dp_trace::Tracer::off(),
                )?;
                return Ok(Explanation {
                    pvts: selected,
                    interventions: oracle.interventions,
                    cache: oracle.cache_stats(),
                    discovery: Default::default(),
                    lint: Default::default(),
                    metrics: oracle.run_metrics(),
                    trace_records: Vec::new(),
                    initial_score,
                    final_score,
                    resolved: true,
                    repaired,
                    trace,
                });
            }
            // Line 10: feed the failed attempt back into the tree.
            let new_instance = Instance {
                violated: violation_vector(&transformed, pvts),
                pass: false,
            };
            if !instances.contains(&new_instance) {
                instances.push(new_instance);
                progressed = true;
                break; // rebuild the tree with the new evidence
            }
        }
        if !progressed {
            break;
        }
    }

    Ok(Explanation {
        pvts: Vec::new(),
        interventions: oracle.interventions,
        cache: oracle.cache_stats(),
        discovery: Default::default(),
        lint: Default::default(),
        metrics: oracle.run_metrics(),
        trace_records: Vec::new(),
        initial_score,
        final_score: initial_score,
        resolved: false,
        repaired: d_fail.clone(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::transform::Transform;
    use dp_frame::Column;

    /// Two numeric attributes; PVT i is "attr_i within [0, 1]" fixed
    /// by winsorizing. The system passes only when BOTH attributes
    /// are in range — but fixing either one alone does not reduce the
    /// malfunction at all (A2 violated: no partial credit).
    fn interacting_scenario() -> (
        Vec<Pvt>,
        DataFrame,
        DataFrame,
        impl FnMut(&DataFrame) -> f64,
    ) {
        let pvt = |id: usize, attr: &str| Pvt {
            id,
            profile: Profile::DomainNumeric {
                attr: attr.into(),
                lb: 0.0,
                ub: 1.0,
            },
            transform: Transform::Winsorize {
                attr: attr.into(),
                lb: 0.0,
                ub: 1.0,
            },
        };
        let pvts = vec![pvt(0, "a"), pvt(1, "b")];
        let fail = DataFrame::from_columns(vec![
            Column::from_floats("a", vec![Some(5.0), Some(6.0), Some(0.5)]),
            Column::from_floats("b", vec![Some(7.0), Some(0.2), Some(9.0)]),
        ])
        .unwrap();
        let pass = DataFrame::from_columns(vec![
            Column::from_floats("a", vec![Some(0.1), Some(0.9), Some(0.5)]),
            Column::from_floats("b", vec![Some(0.3), Some(0.2), Some(0.8)]),
        ])
        .unwrap();
        let system = |df: &DataFrame| {
            let in_range = |name: &str| {
                df.column(name)
                    .map(|c| c.f64_values().iter().all(|(_, v)| (0.0..=1.0).contains(v)))
                    .unwrap_or(false)
            };
            if in_range("a") && in_range("b") {
                0.0
            } else {
                0.8 // all-or-nothing: violates A2
            }
        };
        (pvts, pass, fail, system)
    }

    #[test]
    fn finds_conjunctive_cause_despite_a2_violation() {
        let (pvts, pass, fail, mut system) = interacting_scenario();
        let config = PrismConfig::with_threshold(0.2);
        let exp = explain_with_decision_tree(&mut system, &fail, &[pass], &pvts, &config).unwrap();
        assert!(exp.resolved, "{exp}");
        assert_eq!(exp.pvt_ids(), vec![0, 1], "both PVTs required");
        assert_eq!(exp.final_score, 0.0);
    }

    #[test]
    fn greedy_fails_on_the_same_scenario() {
        // Motivates Algorithm 5: greedy keeps nothing because no
        // single intervention reduces the all-or-nothing malfunction.
        let (_, pass, fail, mut system) = interacting_scenario();
        let config = PrismConfig::with_threshold(0.2);
        let exp = crate::explain_greedy(&mut system, &fail, &pass, &config).unwrap();
        assert!(!exp.resolved);
    }

    #[test]
    fn violation_vector_marks_violated_profiles() {
        let (pvts, pass, fail, _) = interacting_scenario();
        assert_eq!(violation_vector(&fail, &pvts), vec![true, true]);
        assert_eq!(violation_vector(&pass, &pvts), vec![false, false]);
    }

    #[test]
    fn empty_pvts_error() {
        let (_, pass, fail, mut system) = interacting_scenario();
        let err = explain_with_decision_tree(
            &mut system,
            &fail,
            &[pass],
            &[],
            &PrismConfig::with_threshold(0.2),
        )
        .unwrap_err();
        assert!(matches!(err, PrismError::NoDiscriminativePvts));
    }
}
