//! PVT triplets (paper §2.2): ⟨Profile, Violation, Transformation⟩.
//!
//! The violation function is fully determined by the profile (Fig 1),
//! so a triplet materializes as a `(Profile, Transform)` pair plus an
//! identity. Composition of transformations (Definition 9) is a
//! sequential fold, provided by [`apply_composition`].

use crate::error::Result;
use crate::profile::Profile;
use crate::transform::Transform;
use crate::violation::violation;
use dp_frame::DataFrame;
use rand::rngs::StdRng;
use std::fmt;

/// A PVT triplet: the unit of explanation (cause = profile whose
/// violation distinguishes the datasets; fix = the transformation).
#[derive(Debug, Clone, PartialEq)]
pub struct Pvt {
    /// Stable identifier within one diagnosis run (index into the
    /// discriminative set).
    pub id: usize,
    /// The profile `X_P`, parameterized from the passing dataset.
    pub profile: Profile,
    /// The transformation `X_T` that repairs violations of `X_P`.
    pub transform: Transform,
}

impl Pvt {
    /// Violation score of `df` with respect to this PVT's profile
    /// (`X_V(df, X_P)`).
    pub fn violation(&self, df: &DataFrame) -> f64 {
        violation(df, &self.profile)
    }

    /// Attributes this PVT connects to in the PVT–attribute graph:
    /// the union of the profile's attributes and the transformation's
    /// targets.
    pub fn attributes(&self) -> Vec<String> {
        let mut attrs = self.profile.attributes();
        for a in self.transform.target_attributes() {
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
        attrs
    }

    /// Apply this PVT's transformation (`X_T(df)`), returning the
    /// repaired frame and the number of tuples modified.
    pub fn apply(&self, df: &DataFrame, rng: &mut StdRng) -> Result<(DataFrame, usize)> {
        self.transform.apply(df, rng)
    }
}

impl fmt::Display for Pvt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PVT#{} {} ⇒ {}", self.id, self.profile, self.transform)
    }
}

/// Apply a composition of PVT transformations
/// `(X1_T ∘ X2_T ∘ …)(df)` — Definition 9 — in the given order.
/// Returns the transformed frame and total tuples modified.
pub fn apply_composition(
    pvts: &[&Pvt],
    df: &DataFrame,
    rng: &mut StdRng,
) -> Result<(DataFrame, usize)> {
    // One clone for the whole composition: group interventions
    // compose thousands of transformations, and per-constituent
    // clones of a wide frame would make them quadratic.
    let mut cur = df.clone();
    let mut total = 0;
    for pvt in pvts {
        total += pvt.transform.apply_in_place(&mut cur, rng)?;
    }
    Ok((cur, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::{Column, DType};
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn pvt_for_domain(id: usize) -> Pvt {
        let values: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
        Pvt {
            id,
            profile: Profile::DomainCategorical {
                attr: "target".into(),
                values: values.clone(),
            },
            transform: Transform::MapToDomain {
                attr: "target".into(),
                values,
            },
        }
    }

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![Column::from_strings(
            "target",
            DType::Categorical,
            vec![Some("0".into()), Some("4".into())],
        )])
        .unwrap()
    }

    #[test]
    fn pvt_violation_and_apply() {
        let pvt = pvt_for_domain(0);
        let d = df();
        assert_eq!(pvt.violation(&d), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let (fixed, changed) = pvt.apply(&d, &mut rng).unwrap();
        assert_eq!(changed, 2);
        assert_eq!(pvt.violation(&fixed), 0.0, "Definition 8: V(T(D), P) = 0");
    }

    #[test]
    fn composition_applies_in_order() {
        // Definition 9: after composing, both profiles are satisfied.
        let pvt1 = pvt_for_domain(0);
        let pvt2 = Pvt {
            id: 1,
            profile: Profile::Missing {
                attr: "target".into(),
                theta: 0.0,
            },
            transform: Transform::Impute {
                attr: "target".into(),
                strategy: crate::transform::ImputeStrategy::Mode,
            },
        };
        let d = DataFrame::from_columns(vec![Column::from_strings(
            "target",
            DType::Categorical,
            vec![Some("0".into()), None, Some("4".into())],
        )])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (fixed, _) = apply_composition(&[&pvt2, &pvt1], &d, &mut rng).unwrap();
        assert_eq!(pvt1.violation(&fixed), 0.0);
        assert_eq!(pvt2.violation(&fixed), 0.0);
    }

    #[test]
    fn attributes_union_profile_and_transform() {
        let pvt = pvt_for_domain(3);
        assert_eq!(pvt.attributes(), vec!["target".to_string()]);
        assert!(pvt.to_string().contains("PVT#3"));
    }
}
