//! Tests for the §3 conditional-profiles extension (analogous to
//! conditional functional dependencies): profiles that only a
//! predicate-selected subset of the data must satisfy, and the
//! row-scoped transformations that repair exactly that subset.

#![cfg(test)]

use crate::config::DiscoveryConfig;
use crate::discovery::{discover_profiles, discriminative_pvts};
use crate::profile::Profile;
use crate::transform::Transform;
use crate::violation::violation;
use dp_frame::{CmpOp, Column, DType, DataFrame, Predicate, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Patients from two sites; site B reports heights in inches.
fn mixed_site_frame(inches_for_b: bool) -> DataFrame {
    let mut site = Vec::new();
    let mut height = Vec::new();
    for i in 0..40 {
        if i % 2 == 0 {
            site.push(Some("A".to_string()));
            height.push(Some(160.0 + (i % 10) as f64 * 3.0));
        } else {
            site.push(Some("B".to_string()));
            let cm = 162.0 + (i % 10) as f64 * 3.0;
            height.push(Some(if inches_for_b { cm / 2.54 } else { cm }));
        }
    }
    DataFrame::from_columns(vec![
        Column::from_strings("site", DType::Categorical, site),
        Column::from_floats("height", height),
    ])
    .unwrap()
}

fn conditional_height_profile() -> Profile {
    Profile::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "B"),
        inner: Box::new(Profile::DomainNumeric {
            attr: "height".into(),
            lb: 150.0,
            ub: 195.0,
        }),
    }
}

#[test]
fn conditional_violation_scopes_to_the_slice() {
    let clean = mixed_site_frame(false);
    let corrupt = mixed_site_frame(true);
    let profile = conditional_height_profile();
    assert_eq!(violation(&clean, &profile), 0.0);
    // Every site-B height is out of range: the *conditional* violation
    // is 1.0 even though only half the overall rows are affected.
    assert_eq!(violation(&corrupt, &profile), 1.0);
    // The unconditional profile only sees a 0.5 violation.
    let global = Profile::DomainNumeric {
        attr: "height".into(),
        lb: 150.0,
        ub: 195.0,
    };
    assert!((violation(&corrupt, &global) - 0.5).abs() < 1e-9);
}

#[test]
fn conditional_transform_repairs_only_matching_rows() {
    let corrupt = mixed_site_frame(true);
    let transform = Transform::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "B"),
        inner: Box::new(Transform::LinearRescale {
            attr: "height".into(),
            lb: 162.0,
            ub: 189.0,
        }),
    };
    assert!(!transform.is_global());
    let mut rng = StdRng::seed_from_u64(1);
    let (repaired, changed) = transform.apply(&corrupt, &mut rng).unwrap();
    assert_eq!(changed, 20, "exactly the site-B rows change");
    // Site-A rows untouched.
    let site = repaired.column("site").unwrap();
    for i in 0..repaired.n_rows() {
        let h = repaired.cell(i, "height").unwrap().as_f64().unwrap();
        if site.get(i).to_string() == "A" {
            assert_eq!(h, corrupt.cell(i, "height").unwrap().as_f64().unwrap());
        } else {
            assert!((150.0..=195.0).contains(&h), "row {i}: {h}");
        }
    }
    // Definition 8 for the conditional profile.
    assert_eq!(violation(&repaired, &conditional_height_profile()), 0.0);
}

#[test]
fn conditional_transform_with_global_inner_is_identity() {
    let corrupt = mixed_site_frame(true);
    let transform = Transform::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "B"),
        inner: Box::new(Transform::ResampleSelectivity {
            predicate: Predicate::True,
            theta: 0.5,
        }),
    };
    assert!(transform.is_global());
    let mut rng = StdRng::seed_from_u64(1);
    let (out, changed) = transform.apply(&corrupt, &mut rng).unwrap();
    assert_eq!(changed, 0);
    assert_eq!(out, corrupt);
}

#[test]
fn conditional_coverage_scales_by_slice_share() {
    let corrupt = mixed_site_frame(true);
    let transform = Transform::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "B"),
        inner: Box::new(Transform::Winsorize {
            attr: "height".into(),
            lb: 150.0,
            ub: 195.0,
        }),
    };
    // All 20 of 40 rows in the slice violate: coverage 0.5.
    assert!((transform.coverage(&corrupt) - 0.5).abs() < 1e-9);
}

#[test]
fn conditional_discovery_emits_per_slice_domains() {
    let clean = mixed_site_frame(false);
    let cfg = DiscoveryConfig {
        conditional_domains_on: Some("site".into()),
        ..DiscoveryConfig::default()
    };
    let profiles = discover_profiles(&clean, &cfg);
    let conditional: Vec<&Profile> = profiles
        .iter()
        .filter(|p| matches!(p, Profile::Conditional { .. }))
        .collect();
    assert_eq!(
        conditional.len(),
        2,
        "one height Domain per site: {conditional:?}"
    );
    // Self-violation is zero by construction.
    for p in conditional {
        assert_eq!(violation(&clean, p), 0.0, "{p}");
    }
}

#[test]
fn conditional_pvts_diagnose_partial_corruption_end_to_end() {
    let clean = mixed_site_frame(false);
    let corrupt = mixed_site_frame(true);
    let cfg = DiscoveryConfig {
        conditional_domains_on: Some("site".into()),
        ..DiscoveryConfig::default()
    };
    let pvts = discriminative_pvts(&clean, &corrupt, &cfg);
    let cond_pvt = pvts
        .iter()
        .find(|p| {
            matches!(&p.profile, Profile::Conditional { condition, .. }
                if condition.to_string().contains('B'))
        })
        .expect("the site-B conditional Domain must be discriminative");
    // The system: fails while any site-B height is below 100 cm.
    let mut system = |df: &DataFrame| {
        let site = df.column("site").unwrap();
        let height = df.column("height").unwrap();
        let bad = (0..df.n_rows())
            .filter(|&i| {
                site.get(i).to_string() == "B"
                    && height.get(i).as_f64().map(|h| h < 100.0).unwrap_or(false)
            })
            .count();
        bad as f64 / df.n_rows().max(1) as f64
    };
    let config = crate::PrismConfig {
        threshold: 0.05,
        discovery: cfg,
        ..Default::default()
    };
    let exp = crate::explain_greedy_with_pvts(&mut system, &corrupt, &clean, pvts.clone(), &config)
        .unwrap();
    assert!(exp.resolved, "{exp}");
    // The conditional PVT (or the unconditional height Domain, which
    // also repairs site B) resolves it; assert the repaired slice.
    let _ = cond_pvt;
    let site = exp.repaired.column("site").unwrap();
    let height = exp.repaired.column("height").unwrap();
    for i in 0..exp.repaired.n_rows() {
        if site.get(i).to_string() == "B" {
            let h = height.get(i).as_f64().unwrap();
            assert!(h >= 100.0, "row {i}: {h}");
        }
    }
}

#[test]
fn conditional_display_and_identity() {
    let p = conditional_height_profile();
    assert!(p.to_string().contains("⟹"));
    assert!(p.template_key().starts_with("conditional("));
    assert!(p.same_parameters(&p.clone(), 0.01));
    let other = Profile::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "B"),
        inner: Box::new(Profile::DomainNumeric {
            attr: "height".into(),
            lb: 60.0,
            ub: 75.0,
        }),
    };
    assert!(!p.same_parameters(&other, 0.01));
    assert_eq!(p.template_key(), other.template_key());
    assert_eq!(
        p.attributes(),
        vec!["site".to_string(), "height".to_string()]
    );
}

#[test]
fn empty_slice_neither_violates_nor_transforms() {
    let df = mixed_site_frame(true);
    let profile = Profile::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "Z"),
        inner: Box::new(Profile::DomainNumeric {
            attr: "height".into(),
            lb: 0.0,
            ub: 1.0,
        }),
    };
    assert_eq!(violation(&df, &profile), 0.0);
    let transform = Transform::Conditional {
        condition: Predicate::cmp("site", CmpOp::Eq, "Z"),
        inner: Box::new(Transform::Winsorize {
            attr: "height".into(),
            lb: 0.0,
            ub: 1.0,
        }),
    };
    let mut rng = StdRng::seed_from_u64(1);
    let (out, changed) = transform.apply(&df, &mut rng).unwrap();
    assert_eq!(changed, 0);
    assert_eq!(out, df);
    let _ = Value::Null; // keep the import exercised
}
