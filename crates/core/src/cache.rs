//! The cross-run oracle score cache.
//!
//! A [`ScoreCache`] is a plain content-fingerprint → malfunction-score
//! map, decoupled from any single run: the serving story
//! (`dp_serve`) keeps one per registered system and threads it
//! through consecutive diagnoses, so a second diagnosis of the same
//! system never re-pays the first one's system evaluations.
//!
//! Three ways entries get in:
//!
//! 1. **Export after a run** — [`crate::ParOracle::export_cache`] /
//!    [`crate::Oracle::export_cache`] hand back everything the run
//!    scored (charged *and* speculative).
//! 2. **Trace replay** — every charged query of a traced run is an
//!    [`OracleQuerySpan`] carrying fingerprint and score in exact
//!    encodings, so [`ScoreCache::warm_from_jsonl`] bootstraps the
//!    cache bit-for-bit from a prior run's `--trace` output.
//! 3. **Snapshot load** — [`ScoreCache::from_snapshot`] reads the
//!    text format [`ScoreCache::to_snapshot`] writes (`dp_serve`
//!    flushes these on graceful shutdown).
//!
//! Scores are cached *as the system returned them* (post-sanitize);
//! because systems are deterministic functions of the dataset, a
//! warm hit returns the identical `f64` bit pattern a cold
//! evaluation would have produced — which is what makes cache-warm
//! diagnoses bit-identical to cold ones (`tests/serve_conformance.rs`).

use dp_trace::{replay_oracle_queries, OracleQuerySpan, ParseError};
use std::collections::HashMap;
use std::fmt;

/// Magic first line of the snapshot text format.
const SNAPSHOT_HEADER: &str = "dp-score-cache v1";

/// A malformed cache snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// 1-based line number of the offending snapshot line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// A reusable fingerprint → score cache that outlives single runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreCache {
    entries: HashMap<u64, f64>,
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> ScoreCache {
        ScoreCache::default()
    }

    /// Number of cached scores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no scores.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert one fingerprint → score entry (last write wins).
    pub fn insert(&mut self, fingerprint: u64, score: f64) {
        self.entries.insert(fingerprint, score);
    }

    /// Look up a cached score.
    pub fn get(&self, fingerprint: u64) -> Option<f64> {
        self.entries.get(&fingerprint).copied()
    }

    /// Iterate over `(fingerprint, score)` entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().map(|(&fp, &s)| (fp, s))
    }

    /// Fold another cache's entries in (theirs win on collision —
    /// scores for the same fingerprint are identical anyway for a
    /// deterministic system). Returns how many entries were new.
    pub fn absorb(&mut self, other: &ScoreCache) -> usize {
        let before = self.entries.len();
        for (&fp, &score) in &other.entries {
            self.entries.insert(fp, score);
        }
        self.entries.len() - before
    }

    /// Absorb the fingerprint/score pairs of recorded oracle-query
    /// spans (baselines included — their scores are just as
    /// reusable). Returns how many entries were new.
    pub fn absorb_spans<'a, I>(&mut self, spans: I) -> usize
    where
        I: IntoIterator<Item = &'a OracleQuerySpan>,
    {
        let before = self.entries.len();
        for span in spans {
            // A NaN score can only come from a hand-edited stream
            // (the oracle sanitizes); refuse to cache it rather than
            // poison the `m ≤ τ` checks of a warm run.
            if !span.score.is_nan() {
                self.entries.insert(span.fingerprint, span.score);
            }
        }
        self.entries.len() - before
    }

    /// Bootstrap from a prior run's JSONL trace stream (the
    /// `--trace` output): every recorded oracle query becomes a
    /// cache entry, bit-for-bit. Returns how many entries were new;
    /// fails on malformed input or a schema version this build does
    /// not write (see [`dp_trace::replay_oracle_queries`]).
    pub fn warm_from_jsonl(&mut self, input: &str) -> Result<usize, ParseError> {
        let replay = replay_oracle_queries(input)?;
        Ok(self.absorb_spans(&replay.queries))
    }

    /// Serialize to the versioned snapshot text format: a header
    /// line, then one `fingerprint score_bits` pair per line, both
    /// as raw decimal digit strings (the score is `f64::to_bits`),
    /// sorted by fingerprint so equal caches serialize identically.
    /// Exact for every bit pattern, NaN payloads included.
    pub fn to_snapshot(&self) -> String {
        let mut fps: Vec<u64> = self.entries.keys().copied().collect();
        fps.sort_unstable();
        let mut out = String::with_capacity(24 + fps.len() * 44);
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        for fp in fps {
            let score = self.entries[&fp];
            out.push_str(&fp.to_string());
            out.push(' ');
            out.push_str(&score.to_bits().to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a snapshot produced by [`ScoreCache::to_snapshot`].
    pub fn from_snapshot(input: &str) -> Result<ScoreCache, SnapshotError> {
        let mut lines = input.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == SNAPSHOT_HEADER => {}
            Some((_, header)) => {
                return Err(SnapshotError {
                    line: 1,
                    message: format!(
                        "unsupported snapshot header '{}' (this reader reads '{SNAPSHOT_HEADER}')",
                        header.trim()
                    ),
                })
            }
            None => {
                return Err(SnapshotError {
                    line: 1,
                    message: "empty snapshot (missing header)".into(),
                })
            }
        }
        let mut cache = ScoreCache::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| SnapshotError {
                line: i + 1,
                message,
            };
            let mut parts = line.split_ascii_whitespace();
            let fp = parts
                .next()
                .ok_or_else(|| err("missing fingerprint".into()))?
                .parse::<u64>()
                .map_err(|_| err(format!("bad fingerprint in '{line}'")))?;
            let bits = parts
                .next()
                .ok_or_else(|| err(format!("missing score bits in '{line}'")))?
                .parse::<u64>()
                .map_err(|_| err(format!("bad score bits in '{line}'")))?;
            if parts.next().is_some() {
                return Err(err(format!("trailing data in '{line}'")));
            }
            cache.entries.insert(fp, f64::from_bits(bits));
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_trace::QueryKind;

    fn span(fp: u64, score: f64) -> OracleQuerySpan {
        OracleQuerySpan {
            kind: QueryKind::Intervention,
            fingerprint: fp,
            score,
            cached: false,
            speculative_hit: false,
            latency_ns: Some(1),
        }
    }

    #[test]
    fn insert_get_absorb() {
        let mut a = ScoreCache::new();
        assert!(a.is_empty());
        a.insert(1, 0.5);
        a.insert(2, 0.25);
        let mut b = ScoreCache::new();
        b.insert(2, 0.25);
        b.insert(3, 0.75);
        assert_eq!(a.absorb(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(3), Some(0.75));
        assert_eq!(a.get(9), None);
    }

    #[test]
    fn spans_are_absorbed_but_nan_is_refused() {
        let mut c = ScoreCache::new();
        let n = c.absorb_spans(&[span(1, 0.5), span(2, f64::NAN), span(1, 0.5)]);
        assert_eq!(n, 1);
        assert_eq!(c.get(2), None, "NaN scores never enter the cache");
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut c = ScoreCache::new();
        c.insert(u64::MAX, 1.0);
        c.insert(0, 0.1 + 0.2); // not shortest-decimal representable
        c.insert(0xFEDC_BA98_7654_3210, f64::MIN_POSITIVE);
        let text = c.to_snapshot();
        let back = ScoreCache::from_snapshot(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (fp, score) in c.iter() {
            assert_eq!(back.get(fp).unwrap().to_bits(), score.to_bits());
        }
        // Deterministic serialization: same entries, same bytes.
        assert_eq!(text, back.to_snapshot());
    }

    #[test]
    fn snapshot_rejects_bad_input() {
        assert!(ScoreCache::from_snapshot("").is_err());
        assert!(ScoreCache::from_snapshot("dp-score-cache v2\n").is_err());
        let err =
            ScoreCache::from_snapshot("dp-score-cache v1\n1 2 3\n").expect_err("trailing data");
        assert_eq!(err.line, 2);
        assert!(ScoreCache::from_snapshot("dp-score-cache v1\nnope 1\n").is_err());
        assert!(ScoreCache::from_snapshot("dp-score-cache v1\n1 -0.5\n").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let c = ScoreCache::new();
        let back = ScoreCache::from_snapshot(&c.to_snapshot()).unwrap();
        assert!(back.is_empty());
    }
}
