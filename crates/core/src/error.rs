//! Error type for the DataPrism framework.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PrismError>;

/// Errors surfaced by discovery and diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum PrismError {
    /// A dataframe operation failed.
    Frame(dp_frame::FrameError),
    /// The passing dataset does not actually pass (`m_S(D_pass) > τ`)
    /// or the failing dataset does not fail. Payload describes which.
    BadInput(String),
    /// No discriminative PVTs were found between the two datasets, so
    /// assumption A1 cannot hold and there is nothing to intervene on.
    NoDiscriminativePvts,
    /// Group testing detected a violation of assumption A3 (the
    /// composition of all candidate transformations does not reduce
    /// the malfunction score) and is therefore not applicable — the
    /// "NA" cells of the paper's Fig 7.
    AssumptionViolated(String),
    /// The intervention budget was exhausted before the malfunction
    /// score dropped below the threshold.
    BudgetExhausted {
        /// Interventions performed.
        used: usize,
        /// Best malfunction score reached.
        best_score: f64,
    },
    /// The trace sink requested by `PrismConfig::trace` could not be
    /// set up (e.g. the JSONL file could not be created). Raised
    /// before any oracle query runs.
    Trace(String),
}

impl fmt::Display for PrismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrismError::Frame(e) => write!(f, "dataframe error: {e}"),
            PrismError::BadInput(msg) => write!(f, "bad input: {msg}"),
            PrismError::NoDiscriminativePvts => {
                write!(f, "no discriminative PVTs between the datasets")
            }
            PrismError::AssumptionViolated(msg) => {
                write!(
                    f,
                    "assumption violated (group testing not applicable): {msg}"
                )
            }
            PrismError::BudgetExhausted { used, best_score } => write!(
                f,
                "intervention budget exhausted after {used} interventions (best score {best_score})"
            ),
            PrismError::Trace(msg) => write!(f, "trace sink setup failed: {msg}"),
        }
    }
}

impl std::error::Error for PrismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrismError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dp_frame::FrameError> for PrismError {
    fn from(e: dp_frame::FrameError) -> Self {
        PrismError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: PrismError = dp_frame::FrameError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("x"));
        assert!(std::error::Error::source(&e).is_some());
        let e = PrismError::AssumptionViolated("A3".into());
        assert!(e.to_string().contains("A3"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
