//! Diagnosis results: the explanation of a system malfunction
//! (Definition 10/11) plus an audit trail.

use crate::discovery::DiscoveryStats;
use crate::oracle::CacheStats;
use crate::pvt::Pvt;
use dp_frame::DataFrame;
use dp_lint::Diagnostics;
use dp_trace::{RunMetrics, TraceRecord};
use std::fmt;

/// One event of the diagnosis trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Discovery finished with this many discriminative PVTs.
    Discovered {
        /// Number of discriminative PVTs.
        n_pvts: usize,
    },
    /// An intervention was performed.
    Intervention {
        /// Ids of the PVTs whose transformations were applied
        /// (singleton for the greedy algorithm, a partition for group
        /// testing).
        pvt_ids: Vec<usize>,
        /// Malfunction score before.
        before: f64,
        /// Malfunction score after.
        after: f64,
        /// Whether the intervention was kept (reduced malfunction).
        kept: bool,
    },
    /// Make-Minimal dropped a redundant PVT.
    MinimalityDropped {
        /// Id of the dropped PVT.
        pvt_id: usize,
    },
}

/// The output of a diagnosis: the minimal explanation (causes and
/// fixes), the interventions spent finding it, and the repaired
/// dataset.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The explanation set `X*`: failing to satisfy these profiles is
    /// the cause; their transformations are the fix.
    pub pvts: Vec<Pvt>,
    /// Oracle interventions performed.
    pub interventions: usize,
    /// `m_S(D_fail)` before any intervention.
    pub initial_score: f64,
    /// Malfunction score of the repaired dataset.
    pub final_score: f64,
    /// Whether the final score is at or below the threshold `τ`. When
    /// false, `pvts` is a best-effort partial explanation.
    pub resolved: bool,
    /// The repaired failing dataset
    /// `(∘_{X ∈ X*} X_T)(D_fail)`.
    pub repaired: DataFrame,
    /// Ordered audit trail of the run.
    pub trace: Vec<TraceEvent>,
    /// Oracle cache counters: how the fingerprint cache (and, in
    /// parallel runs, speculative worker evaluations) served the
    /// charged interventions. Unlike every other field, these vary
    /// with `num_threads` — scheduling decides which queries become
    /// hits.
    pub cache: CacheStats,
    /// Pre-filter counters of the profile-discovery pairwise pass:
    /// how many pair tests the sketches screened out before the
    /// exact χ²/Pearson statistic ran. Zero when the run was given
    /// its PVTs directly (the `*_with_pvts` entry points skip
    /// discovery). Unlike `cache`, these are identical for any
    /// thread count.
    pub discovery: DiscoveryStats,
    /// Static-analysis findings over the candidate PVT set, produced
    /// before any oracle query (rules L1–L5 of `dp_lint`; see
    /// [`crate::Lint`]). `analyzed` is false under `Lint::Off`; under
    /// `Lint::Prune`, `pruned` lists the candidate ids dropped before
    /// ranking. Identical for any thread count.
    pub lint: Diagnostics,
    /// All counters and latency histograms of the run, merged across
    /// worker threads at settle ([`RunMetrics`]). The counts that
    /// matter to the paper (`charged_queries`, lint, prefilter) are
    /// thread-count invariant; cache/speculation splits and latencies
    /// vary with scheduling. [`CacheStats`] (the `cache` field) is a
    /// derived legacy view of this.
    pub metrics: RunMetrics,
    /// The structured event stream of the run, when
    /// `PrismConfig::trace` was [`dp_trace::TraceConfig::Collect`]
    /// (empty otherwise — JSONL streams go to their file). Feed to
    /// [`dp_trace::SearchTree::from_records`] for the recursion tree.
    pub trace_records: Vec<TraceRecord>,
}

impl Explanation {
    /// Ids of the explanation PVTs, ascending.
    pub fn pvt_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.pvts.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Whether a PVT whose profile has this template key is part of
    /// the explanation — convenient for asserting that a planted
    /// ground-truth cause was found.
    pub fn contains_template(&self, template_key: &str) -> bool {
        self.pvts
            .iter()
            .any(|p| p.profile.template_key() == template_key)
    }

    /// Content digest of the *result* of the diagnosis: the PVT ids
    /// (in explanation order), intervention count, exact bit patterns
    /// of the initial and final malfunction scores, resolution flag,
    /// audit trail, and the content fingerprint of the repaired
    /// dataset.
    ///
    /// Two explanations digest equal iff the diagnosis reached the
    /// same conclusion through the same charged decisions — which is
    /// exactly what is invariant under thread count, speculation
    /// depth, and cache warm-starts. Scheduling-dependent observability
    /// (cache/metrics counters, latencies, trace-record timestamps) is
    /// deliberately excluded, so `dp_serve` clients can assert warm
    /// vs cold bit-identity over the wire with one `u64`.
    pub fn digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.pvts.len().hash(&mut h);
        for pvt in &self.pvts {
            pvt.id.hash(&mut h);
            pvt.profile.to_string().hash(&mut h);
            pvt.transform.to_string().hash(&mut h);
        }
        self.interventions.hash(&mut h);
        self.initial_score.to_bits().hash(&mut h);
        self.final_score.to_bits().hash(&mut h);
        self.resolved.hash(&mut h);
        self.trace.len().hash(&mut h);
        for event in &self.trace {
            match event {
                TraceEvent::Discovered { n_pvts } => {
                    0u8.hash(&mut h);
                    n_pvts.hash(&mut h);
                }
                TraceEvent::Intervention {
                    pvt_ids,
                    before,
                    after,
                    kept,
                } => {
                    1u8.hash(&mut h);
                    pvt_ids.hash(&mut h);
                    before.to_bits().hash(&mut h);
                    after.to_bits().hash(&mut h);
                    kept.hash(&mut h);
                }
                TraceEvent::MinimalityDropped { pvt_id } => {
                    2u8.hash(&mut h);
                    pvt_id.hash(&mut h);
                }
            }
        }
        crate::oracle::fingerprint(&self.repaired).hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Explanation ({} PVT{}, {} intervention{}, malfunction {:.3} → {:.3}, {}):",
            self.pvts.len(),
            if self.pvts.len() == 1 { "" } else { "s" },
            self.interventions,
            if self.interventions == 1 { "" } else { "s" },
            self.initial_score,
            self.final_score,
            if self.resolved {
                "resolved"
            } else {
                "UNRESOLVED"
            },
        )?;
        for pvt in &self.pvts {
            writeln!(f, "  cause: {}", pvt.profile)?;
            writeln!(f, "    fix: {}", pvt.transform)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::transform::{ImputeStrategy, Transform};

    fn dummy() -> Explanation {
        Explanation {
            pvts: vec![Pvt {
                id: 3,
                profile: Profile::Missing {
                    attr: "zip".into(),
                    theta: 0.1,
                },
                transform: Transform::Impute {
                    attr: "zip".into(),
                    strategy: ImputeStrategy::Central,
                },
            }],
            interventions: 2,
            initial_score: 0.75,
            final_score: 0.15,
            resolved: true,
            repaired: DataFrame::new(),
            trace: vec![TraceEvent::Discovered { n_pvts: 4 }],
            cache: CacheStats::default(),
            discovery: DiscoveryStats::default(),
            lint: Diagnostics::default(),
            metrics: RunMetrics::default(),
            trace_records: Vec::new(),
        }
    }

    #[test]
    fn accessors() {
        let e = dummy();
        assert_eq!(e.pvt_ids(), vec![3]);
        assert!(e.contains_template("missing(zip)"));
        assert!(!e.contains_template("missing(age)"));
    }

    #[test]
    fn digest_ignores_scheduling_but_not_results() {
        let a = dummy();
        // Counters that vary with scheduling must not move the digest.
        let mut b = dummy();
        b.cache.hits = 99;
        b.metrics.cache_misses = 7;
        b.metrics.warm_hits = 7;
        assert_eq!(a.digest(), b.digest());
        // Any result-bearing field must.
        let mut c = dummy();
        c.final_score = 0.150000001;
        assert_ne!(a.digest(), c.digest());
        let mut d = dummy();
        d.interventions = 3;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn display_summarizes() {
        let s = dummy().to_string();
        assert!(s.contains("1 PVT"));
        assert!(s.contains("2 interventions"));
        assert!(s.contains("resolved"));
        assert!(s.contains("cause") && s.contains("fix"));
    }
}
