//! Transformation functions — the `T` of a PVT triplet
//! (paper §2.2.3, Fig 1 column "Transformation function").
//!
//! A transformation alters a dataset so it no longer violates the
//! associated profile (Definition 8). Each variant documents which
//! Fig 1 row and alternative it implements. Local transformations
//! modify tuples in isolation; [`Transform::ResampleSelectivity`],
//! [`Transform::BreakDependenceShuffle`], [`Transform::DecorrelateNoise`],
//! and [`Transform::Residualize`] are global (paper §3).
//!
//! [`Transform::coverage`] estimates the fraction of tuples an
//! application would modify *without applying it* — the paper's
//! benefit score needs exactly this ("the benefit calculation
//! procedure acts as a proxy … without actually applying any
//! intervention").

use crate::error::Result;
use crate::profile::OutlierSpec;
use dp_frame::{DType, DataFrame, Predicate, Value};
use dp_stats::causal::{ols, standardize};
use dp_stats::descriptive::{mean, median, std_dev};
use dp_stats::pearson;
use dp_stats::Pattern;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// How [`Transform::ReplaceOutliers`] repairs flagged values
/// (Fig 1 row 4's two alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierRepair {
    /// Replace outliers with the attribute mean (alternative 1).
    Mean,
    /// Replace outliers with the attribute median (alternative 1).
    Median,
    /// Clamp to the detector's valid range (alternative 2: "map all
    /// values above (below) the maximum (minimum) limit with the
    /// highest (lowest) valid value").
    Clamp,
}

/// How [`Transform::Impute`] fills NULLs (Fig 1 row 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Numeric mean / categorical mode, chosen by dtype.
    Central,
    /// Most frequent value regardless of dtype.
    Mode,
}

/// A concrete transformation function.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Row 1: map values outside the domain set onto values inside it
    /// "using domain knowledge". The domain-knowledge proxy is an
    /// order-preserving map: the sorted out-of-domain values map onto
    /// the sorted in-domain values by rank (so `{0, 4} → {-1, 1}`
    /// maps `0 → -1` and `4 → 1`, exactly the Sentiment fix).
    MapToDomain {
        /// Attribute to repair.
        attr: String,
        /// Target domain.
        values: BTreeSet<String>,
    },
    /// Row 2, alternative 1: monotonic linear transformation of *all*
    /// values onto `[lb, ub]` (the unit-mismatch fix: rescaling
    /// inches onto the centimeter range is exactly a linear map).
    LinearRescale {
        /// Attribute to repair.
        attr: String,
        /// Target lower bound.
        lb: f64,
        /// Target upper bound.
        ub: f64,
    },
    /// Row 2, alternative 2: winsorize only the violating values
    /// (clamp into `[lb, ub]`).
    Winsorize {
        /// Attribute to repair.
        attr: String,
        /// Target lower bound.
        lb: f64,
        /// Target upper bound.
        ub: f64,
    },
    /// Row 3: minimally edit text values to satisfy the learned
    /// pattern (insert/remove characters).
    RepairText {
        /// Attribute to repair.
        attr: String,
        /// Pattern to satisfy.
        pattern: Pattern,
    },
    /// Row 4: repair outliers flagged by the detector.
    ReplaceOutliers {
        /// Attribute to repair.
        attr: String,
        /// Detector specification (refit on the data being repaired).
        detector: OutlierSpec,
        /// Repair strategy.
        strategy: OutlierRepair,
    },
    /// Row 5: impute missing values.
    Impute {
        /// Attribute to repair.
        attr: String,
        /// Fill strategy.
        strategy: ImputeStrategy,
    },
    /// Row 6: re-sample tuples so the selectivity of the predicate
    /// matches `theta` (undersample when above, oversample when
    /// below — the paper's example oversamples
    /// `gender=F ∧ high_expenditure=yes` tuples).
    ResampleSelectivity {
        /// The predicate whose selectivity is adjusted.
        predicate: Predicate,
        /// Target selectivity.
        theta: f64,
    },
    /// Row 7: break categorical dependence by independently
    /// re-drawing attribute `b` from its own marginal distribution
    /// (a uniform random permutation of the column), preserving the
    /// marginal but destroying the joint.
    BreakDependenceShuffle {
        /// Attribute kept fixed.
        a: String,
        /// Attribute whose values are permuted.
        b: String,
        /// Dependence bound (Cramér's V); a no-op when the current
        /// dependence is already within it (Definition 8 holds
        /// trivially on satisfied profiles).
        alpha: f64,
    },
    /// Row 8: add calibrated Gaussian noise to `b` so the Pearson
    /// correlation with `a` drops to (at most) `alpha`.
    DecorrelateNoise {
        /// Attribute kept fixed.
        a: String,
        /// Attribute perturbed.
        b: String,
        /// Target |correlation|.
        alpha: f64,
    },
    /// Row 9: change the distribution to modify the causal
    /// relationship — remove `a`'s linear contribution from `b`
    /// (residualization), zeroing the SEM coefficient.
    Residualize {
        /// Cause attribute.
        a: String,
        /// Effect attribute (replaced by its residual).
        b: String,
    },
    /// §3-extension repair: apply the inner transformation only to
    /// the tuples matching the condition (the counterpart of
    /// [`crate::Profile::Conditional`]). Only *local* inner
    /// transformations are supported — a row-scoped resample or
    /// shuffle has no well-defined semantics — and a global inner
    /// transform makes this a no-op.
    Conditional {
        /// The tuples to repair.
        condition: Predicate,
        /// The row-local repair to apply to them.
        inner: Box<Transform>,
    },
}

impl Transform {
    /// Attributes this transformation writes to (for the
    /// PVT–attribute graph and for side-effect reasoning).
    pub fn target_attributes(&self) -> Vec<String> {
        match self {
            Transform::MapToDomain { attr, .. }
            | Transform::LinearRescale { attr, .. }
            | Transform::Winsorize { attr, .. }
            | Transform::RepairText { attr, .. }
            | Transform::ReplaceOutliers { attr, .. }
            | Transform::Impute { attr, .. } => vec![attr.clone()],
            Transform::ResampleSelectivity { predicate, .. } => predicate.columns(),
            Transform::BreakDependenceShuffle { b, .. }
            | Transform::DecorrelateNoise { b, .. }
            | Transform::Residualize { b, .. } => vec![b.clone()],
            Transform::Conditional { condition, inner } => {
                let mut attrs = condition.columns();
                for a in inner.target_attributes() {
                    if !attrs.contains(&a) {
                        attrs.push(a);
                    }
                }
                attrs
            }
        }
    }

    /// Whether the transformation is global (needs knowledge of other
    /// tuples while transforming one) — paper §3's classification.
    pub fn is_global(&self) -> bool {
        match self {
            Transform::ResampleSelectivity { .. }
            | Transform::BreakDependenceShuffle { .. }
            | Transform::DecorrelateNoise { .. }
            | Transform::Residualize { .. } => true,
            Transform::Conditional { inner, .. } => inner.is_global(),
            _ => false,
        }
    }

    /// Whether applying the transformation never consumes randomness,
    /// for any input dataset. The parallel runtime may only defer a
    /// deterministic application to a worker thread without tracking
    /// the RNG stream; stochastic transformations (and those that are
    /// stochastic only on some inputs, like a shuffle that no-ops
    /// when the dependence is already broken) are conservatively
    /// classified `false`.
    pub fn is_deterministic(&self) -> bool {
        match self {
            Transform::MapToDomain { .. }
            | Transform::LinearRescale { .. }
            | Transform::Winsorize { .. }
            | Transform::RepairText { .. }
            | Transform::ReplaceOutliers { .. }
            | Transform::Impute { .. }
            | Transform::Residualize { .. } => true,
            Transform::ResampleSelectivity { .. }
            | Transform::BreakDependenceShuffle { .. }
            | Transform::DecorrelateNoise { .. } => false,
            Transform::Conditional { inner, .. } => inner.is_deterministic(),
        }
    }

    /// Whether an application writes *only* the columns named by
    /// [`Transform::target_attributes`] — the write-set fact
    /// `dp_lint`'s L4 side-effect check reasons with. True for every
    /// transformation except the resampler, which rebuilds all
    /// columns row-wise (its targets name the predicate's columns,
    /// not its write set). `Conditional` inherits its inner repair's
    /// classification.
    ///
    /// [`Transform::apply`] turns this fact into a debug-build
    /// invariant: non-target columns of the output must still *share
    /// chunk storage* with the input, i.e. copy-on-write must not
    /// have cloned anything outside the write set.
    pub fn writes_only_targets(&self) -> bool {
        match self {
            Transform::ResampleSelectivity { .. } => false,
            Transform::Conditional { inner, .. } => inner.writes_only_targets(),
            _ => true,
        }
    }

    /// Estimated fraction of tuples an application would modify,
    /// without applying (observation O3's coverage).
    pub fn coverage(&self, df: &DataFrame) -> f64 {
        let n = df.n_rows();
        if n == 0 {
            return 0.0;
        }
        match self {
            Transform::MapToDomain { attr, values } => {
                let Ok(col) = df.column(attr) else { return 0.0 };
                col.str_values()
                    .iter()
                    .filter(|(_, s)| !values.contains(*s))
                    .count() as f64
                    / n as f64
            }
            Transform::LinearRescale { attr, lb, ub } => {
                // Rescaling moves every non-NULL value unless the
                // range already matches.
                let Ok(col) = df.column(attr) else { return 0.0 };
                match col.min_max() {
                    Some((lo, hi)) if (lo - lb).abs() > 1e-9 || (hi - ub).abs() > 1e-9 => {
                        (n - col.null_count()) as f64 / n as f64
                    }
                    _ => 0.0,
                }
            }
            Transform::Winsorize { attr, lb, ub } => {
                let Ok(col) = df.column(attr) else { return 0.0 };
                col.f64_values()
                    .iter()
                    .filter(|(_, v)| *v < *lb || *v > *ub)
                    .count() as f64
                    / n as f64
            }
            Transform::RepairText { attr, pattern } => {
                let Ok(col) = df.column(attr) else { return 0.0 };
                col.str_values()
                    .iter()
                    .filter(|(_, s)| !pattern.matches(s))
                    .count() as f64
                    / n as f64
            }
            Transform::ReplaceOutliers { attr, detector, .. } => {
                let Ok(col) = df.column(attr) else { return 0.0 };
                let values: Vec<f64> = col.f64_values().into_iter().map(|(_, v)| v).collect();
                match detector.fit(&values) {
                    Some(det) => {
                        values.iter().filter(|&&v| det.is_outlier(v)).count() as f64 / n as f64
                    }
                    None => 0.0,
                }
            }
            Transform::Impute { attr, .. } => {
                let Ok(col) = df.column(attr) else { return 0.0 };
                col.null_count() as f64 / n as f64
            }
            Transform::ResampleSelectivity { predicate, theta } => {
                let Ok(sel) = df.selectivity(predicate) else {
                    return 0.0;
                };
                (sel - theta).abs().clamp(0.0, 1.0)
            }
            Transform::BreakDependenceShuffle { b, .. }
            | Transform::DecorrelateNoise { b, .. }
            | Transform::Residualize { b, .. } => {
                let Ok(col) = df.column(b) else { return 0.0 };
                (n - col.null_count()) as f64 / n as f64
            }
            Transform::Conditional { condition, inner } => {
                // Coverage of the inner repair, measured on the
                // selected subset, scaled by the subset's share.
                match df.filter_by(condition) {
                    Ok(subset) if !subset.is_empty() => {
                        inner.coverage(&subset) * subset.n_rows() as f64 / n as f64
                    }
                    _ => 0.0,
                }
            }
        }
    }

    /// Apply to `df`, producing the repaired dataset and the number
    /// of tuples modified. Randomized transformations draw from
    /// `rng`, so a seeded diagnosis run is fully reproducible.
    pub fn apply(&self, df: &DataFrame, rng: &mut StdRng) -> Result<(DataFrame, usize)> {
        let mut out = df.clone();
        let changed = self.apply_in_place(&mut out, rng)?;
        #[cfg(debug_assertions)]
        if self.writes_only_targets() {
            let targets = self.target_attributes();
            for col in df.columns() {
                debug_assert!(
                    targets.iter().any(|t| t == col.name())
                        || out.column_shares_chunks(df, col.name()),
                    "write-set violation: column {:?} is outside the transform's \
                     target attributes {targets:?} but no longer shares chunk \
                     storage with the input",
                    col.name()
                );
            }
        }
        Ok((out, changed))
    }

    /// In-place variant of [`Transform::apply`]. Compositions of many
    /// transformations (group interventions over thousands of PVTs)
    /// use this to avoid cloning a wide frame once per constituent.
    pub fn apply_in_place(&self, out: &mut DataFrame, rng: &mut StdRng) -> Result<usize> {
        let changed = match self {
            Transform::MapToDomain { attr, values } => {
                let mapping = order_preserving_map(out, attr, values)?;
                let col = out.column_mut(attr)?;
                col.map_str_in_place(|s| mapping.get(s).cloned())
            }
            Transform::LinearRescale { attr, lb, ub } => {
                let col = out.column_mut(attr)?;
                match col.min_max() {
                    Some((lo, hi)) if hi > lo => {
                        let scale = (ub - lb) / (hi - lo);
                        col.map_numeric_in_place(|x| lb + (x - lo) * scale)
                    }
                    Some((lo, _)) => col.map_numeric_in_place(|x| x - lo + (lb + ub) / 2.0),
                    None => 0,
                }
            }
            Transform::Winsorize { attr, lb, ub } => {
                let (lb, ub) = (*lb, *ub);
                out.column_mut(attr)?
                    .map_numeric_in_place(|x| x.clamp(lb, ub))
            }
            Transform::RepairText { attr, pattern } => out
                .column_mut(attr)?
                .map_str_in_place(|s| Some(pattern.repair(s))),
            Transform::ReplaceOutliers {
                attr,
                detector,
                strategy,
            } => {
                let col = out.column_mut(attr)?;
                let values: Vec<f64> = col.f64_values().into_iter().map(|(_, v)| v).collect();
                let Some(det) = detector.fit(&values) else {
                    return Ok(0);
                };
                let inliers: Vec<f64> = values
                    .iter()
                    .copied()
                    .filter(|&v| !det.is_outlier(v))
                    .collect();
                let replacement = match strategy {
                    OutlierRepair::Mean => mean(&inliers),
                    OutlierRepair::Median => median(&inliers),
                    OutlierRepair::Clamp => None,
                };
                let bounds = det.bounds();
                col.map_numeric_in_place(|x| {
                    if det.is_outlier(x) {
                        match (strategy, replacement, bounds) {
                            (OutlierRepair::Clamp, _, Some((lo, hi))) => x.clamp(lo, hi),
                            (_, Some(r), _) => r,
                            _ => x,
                        }
                    } else {
                        x
                    }
                })
            }
            Transform::Impute { attr, strategy } => impute(out, attr, *strategy)?,
            Transform::ResampleSelectivity { predicate, theta } => {
                let (resampled, changed) = resample(out, predicate, *theta, rng)?;
                *out = resampled;
                changed
            }
            Transform::BreakDependenceShuffle { a, b, alpha } => {
                // Identity when the dependence already satisfies the
                // bound (insignificant dependence measures as 0).
                let current =
                    crate::violation::dependence(out, a, b, crate::profile::DependenceKind::Chi2);
                if current <= alpha * 1.05 {
                    0
                } else {
                    let col = out.column_mut(b)?;
                    let n = col.len();
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.shuffle(rng);
                    let shuffled = col.take(&perm);
                    let changed = (0..n).filter(|&i| col.get(i) != shuffled.get(i)).count();
                    out.replace_column(shuffled)?;
                    changed
                }
            }
            Transform::DecorrelateNoise { a, b, alpha } => decorrelate(out, a, b, *alpha, rng)?,
            Transform::Residualize { a, b } => residualize(out, a, b)?,
            Transform::Conditional { condition, inner } => {
                if inner.is_global() {
                    0 // unsupported: see variant docs
                } else {
                    apply_conditional(out, condition, inner, rng)?
                }
            }
        };
        Ok(changed)
    }
}

/// Apply a row-local `inner` transform to the rows of `df` matching
/// `condition`: extract the matching sub-frame, repair it, and write
/// the repaired values of the inner transform's target attributes
/// back to their original row positions.
fn apply_conditional(
    df: &mut DataFrame,
    condition: &Predicate,
    inner: &Transform,
    rng: &mut StdRng,
) -> Result<usize> {
    let mask = condition.evaluate(df)?;
    let rows: Vec<usize> = mask.ones().collect();
    if rows.is_empty() {
        return Ok(0);
    }
    let mut subset = df.filter(&mask)?;
    let changed = inner.apply_in_place(&mut subset, rng)?;
    if subset.n_rows() != rows.len() {
        // A row-count-changing inner transform slipped through; the
        // repaired values cannot be scattered back.
        return Ok(0);
    }
    for attr in inner.target_attributes() {
        let repaired = subset.column(&attr)?.clone();
        let col = df.column_mut(&attr)?;
        for (sub_i, &orig_i) in rows.iter().enumerate() {
            col.set(orig_i, repaired.get(sub_i))?;
        }
    }
    Ok(changed)
}

/// Order-preserving mapping from the out-of-domain values observed in
/// `df[attr]` onto the domain `values` (both sides sorted numerically
/// when possible, lexically otherwise). When there are more foreign
/// values than domain values, the tail maps onto the last (most
/// extreme) domain value.
fn order_preserving_map(
    df: &DataFrame,
    attr: &str,
    values: &BTreeSet<String>,
) -> Result<std::collections::HashMap<String, String>> {
    let col = df.column(attr)?;
    let mut foreign: Vec<String> = col
        .value_counts()
        .into_iter()
        .map(|(v, _)| v)
        .filter(|v| !values.contains(v))
        .collect();
    let mut domain: Vec<String> = values.iter().cloned().collect();
    let numeric_sort = |xs: &mut Vec<String>| {
        if xs.iter().all(|s| s.parse::<f64>().is_ok()) {
            xs.sort_by(|a, b| {
                a.parse::<f64>()
                    .unwrap()
                    .total_cmp(&b.parse::<f64>().unwrap())
            });
        } else {
            xs.sort();
        }
    };
    numeric_sort(&mut foreign);
    numeric_sort(&mut domain);
    let mut map = std::collections::HashMap::new();
    if domain.is_empty() {
        return Ok(map);
    }
    let nf = foreign.len();
    for (i, f) in foreign.into_iter().enumerate() {
        // Rank-proportional assignment: i-th of nf foreign values maps
        // to the round(i/(nf-1)·(nd-1))-th domain value.
        let j = if nf <= 1 {
            0
        } else {
            ((i as f64 / (nf - 1) as f64) * (domain.len() - 1) as f64).round() as usize
        };
        map.insert(f, domain[j].clone());
    }
    Ok(map)
}

fn impute(df: &mut DataFrame, attr: &str, strategy: ImputeStrategy) -> Result<usize> {
    let col = df.column(attr)?;
    let dtype = col.dtype();
    let fill: Value = if dtype.is_numeric() && strategy == ImputeStrategy::Central {
        let vals: Vec<f64> = col.f64_values().into_iter().map(|(_, v)| v).collect();
        match mean(&vals) {
            Some(m) if dtype == DType::Int => Value::Int(m.round() as i64),
            Some(m) => Value::Float(m),
            None => return Ok(0),
        }
    } else {
        // Mode of the rendered values (works for every dtype).
        match col
            .value_counts()
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map(|(v, _)| v)
        {
            Some(v) => match dtype {
                DType::Int => Value::Int(v.parse().unwrap_or(0)),
                DType::Float => Value::Float(v.parse().unwrap_or(0.0)),
                DType::Bool => Value::Bool(v == "true"),
                _ => Value::Str(v),
            },
            None => return Ok(0),
        }
    };
    let col = df.column_mut(attr)?;
    let mut changed = 0;
    for i in 0..col.len() {
        if col.is_null(i) {
            col.set(i, fill.clone())?;
            changed += 1;
        }
    }
    Ok(changed)
}

/// Adjust the row multiset so `selectivity(predicate) ≈ theta`.
fn resample(
    df: &DataFrame,
    predicate: &Predicate,
    theta: f64,
    rng: &mut StdRng,
) -> Result<(DataFrame, usize)> {
    let n = df.n_rows();
    if n == 0 {
        return Ok((df.clone(), 0));
    }
    let mask = predicate.evaluate(df)?;
    let matching: Vec<usize> = mask.ones().collect();
    let non_matching: Vec<usize> = (0..n).filter(|&i| !mask.get(i)).collect();
    let sel = matching.len() as f64 / n as f64;
    let theta = theta.clamp(0.0, 1.0);
    if (sel - theta).abs() < 1e-9 {
        return Ok((df.clone(), 0));
    }
    if sel < theta {
        // Oversample matching rows: (m + k) / (n + k) = θ.
        if matching.is_empty() || theta >= 1.0 {
            return Ok((df.clone(), 0));
        }
        let k = ((theta * n as f64 - matching.len() as f64) / (1.0 - theta)).ceil() as usize;
        let mut idx: Vec<usize> = (0..n).collect();
        for _ in 0..k {
            idx.push(matching[rng.gen_range(0..matching.len())]);
        }
        Ok((df.take(&idx)?, k))
    } else {
        // Undersample matching rows: (m - k) / (n - k) = θ.
        if theta >= 1.0 {
            return Ok((df.clone(), 0));
        }
        let k = ((matching.len() as f64 - theta * n as f64) / (1.0 - theta)).ceil() as usize;
        let k = k.min(matching.len());
        let mut drop = matching.clone();
        drop.shuffle(rng);
        drop.truncate(k);
        let drop: std::collections::HashSet<usize> = drop.into_iter().collect();
        let keep: Vec<usize> = (0..n).filter(|i| !drop.contains(i)).collect();
        // Guard against emptying the frame entirely.
        let keep = if keep.is_empty() {
            non_matching.clone()
        } else {
            keep
        };
        if keep.is_empty() {
            return Ok((df.clone(), 0));
        }
        Ok((df.take(&keep)?, k))
    }
}

/// Add zero-mean Gaussian noise to `b` with variance chosen so the
/// post-noise correlation with `a` drops to about `0.95·alpha` (just
/// below the bound): if `r' = r·σ_b/√(σ_b²+σ²)`, then
/// `σ² = σ_b²·((r/r')² − 1)`. A no-op when the current correlation is
/// already within ~5% of the bound — profiles the dataset (nearly)
/// satisfies need no repair, which keeps the transformation from
/// gratuitously degrading non-discriminative attribute pairs.
fn decorrelate(
    df: &mut DataFrame,
    a: &str,
    b: &str,
    alpha: f64,
    rng: &mut StdRng,
) -> Result<usize> {
    let Some((xs, ys)) = crate::violation::paired_numeric(df, a, b) else {
        return Ok(0);
    };
    let c = pearson(&xs, &ys);
    let r = c.r.abs();
    // Identity when the profile is already (statistically) satisfied:
    // Fig 1 row 8 only counts dependence with p ≤ 0.05, so an
    // insignificant correlation — or one within the bound — needs no
    // repair (Definition 8 holds trivially).
    if !c.significant(0.05) || r <= alpha * 1.05 {
        return Ok(0);
    }
    // Aim comfortably below the bound: the noise calibration holds in
    // expectation, and the realized sample correlation must not creep
    // back above `alpha`.
    let target = (alpha * 0.85).max(1e-3);
    let sigma_b = std_dev(&ys).unwrap_or(0.0);
    if sigma_b == 0.0 {
        return Ok(0);
    }
    let sigma = sigma_b * ((r / target).powi(2) - 1.0).sqrt();
    let col = df.column_mut(b)?;
    Ok(col.map_numeric_in_place(|x| x + gaussian(rng) * sigma))
}

/// Replace `b` with its residual after regressing out `a` (plus the
/// original mean, so the scale stays interpretable).
fn residualize(df: &mut DataFrame, a: &str, b: &str) -> Result<usize> {
    let Some((xs, ys)) = crate::violation::paired_numeric(df, a, b) else {
        return Ok(0);
    };
    let zx = standardize(&xs);
    let my = mean(&ys).unwrap_or(0.0);
    let centered: Vec<f64> = ys.iter().map(|y| y - my).collect();
    let Some(beta) = ols(&[&zx], &centered) else {
        return Ok(0);
    };
    let slope = beta[0];
    // Residual per row needs a's standardized value; recompute the
    // coding used by paired_numeric for row alignment.
    let ma = mean(&xs).unwrap_or(0.0);
    let sa = std_dev(&xs).unwrap_or(0.0);
    if sa == 0.0 {
        return Ok(0);
    }
    // Build a row-aligned vector of a's values (NULL rows untouched).
    let ca = df.column(a)?.clone();
    let col = df.column_mut(b)?;
    let mut changed = 0;
    for i in 0..col.len() {
        if col.is_null(i) || ca.is_null(i) {
            continue;
        }
        let (Some(av), Some(bv)) = (ca.get(i).as_f64(), col.get(i).as_f64()) else {
            continue;
        };
        let z = (av - ma) / sa;
        let new = bv - slope * z;
        if (new - bv).abs() > 1e-12 {
            col.set(i, Value::Float(new)).ok();
            changed += 1;
        }
    }
    Ok(changed)
}

/// Approximate standard normal via the Irwin–Hall sum.
fn gaussian(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::MapToDomain { attr, .. } => write!(f, "map {attr} into domain"),
            Transform::LinearRescale { attr, lb, ub } => {
                write!(f, "linearly rescale {attr} onto [{lb:.2}, {ub:.2}]")
            }
            Transform::Winsorize { attr, lb, ub } => {
                write!(f, "winsorize {attr} into [{lb:.2}, {ub:.2}]")
            }
            Transform::RepairText { attr, pattern } => {
                write!(f, "repair {attr} to match /{pattern}/")
            }
            Transform::ReplaceOutliers { attr, strategy, .. } => {
                write!(f, "replace outliers of {attr} ({strategy:?})")
            }
            Transform::Impute { attr, .. } => write!(f, "impute missing {attr}"),
            Transform::ResampleSelectivity { predicate, theta } => {
                write!(f, "resample so sel({predicate}) = {theta:.3}")
            }
            Transform::BreakDependenceShuffle { a, b, .. } => {
                write!(f, "shuffle {b} to break dependence with {a}")
            }
            Transform::DecorrelateNoise { a, b, alpha } => {
                write!(f, "noise {b} to decorrelate from {a} (target {alpha:.3})")
            }
            Transform::Residualize { a, b } => {
                write!(f, "residualize {b} on {a}")
            }
            Transform::Conditional { condition, inner } => {
                write!(f, "where {condition}: {inner}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DependenceKind, Profile};
    use crate::violation::violation;
    use dp_frame::{CmpOp, Column};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn cat(name: &str, vals: &[&str]) -> Column {
        Column::from_strings(
            name,
            DType::Categorical,
            vals.iter().map(|s| Some(s.to_string())).collect(),
        )
    }

    #[test]
    fn map_to_domain_is_order_preserving() {
        // The Sentiment fix: 0 → -1, 4 → 1.
        let df = DataFrame::from_columns(vec![cat("target", &["0", "4", "4", "0"])]).unwrap();
        let t = Transform::MapToDomain {
            attr: "target".into(),
            values: ["-1", "1"].iter().map(|s| s.to_string()).collect(),
        };
        assert!((t.coverage(&df) - 1.0).abs() < 1e-12);
        let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(changed, 4);
        let vals: Vec<String> = (0..4)
            .map(|i| fixed.cell(i, "target").unwrap().to_string())
            .collect();
        assert_eq!(vals, vec!["-1", "1", "1", "-1"]);
    }

    #[test]
    fn linear_rescale_fixes_unit_mismatch() {
        // Heights in inches; rescale onto the cm domain.
        let df = DataFrame::from_columns(vec![Column::from_floats(
            "height",
            vec![Some(60.0), Some(65.0), Some(70.0), Some(75.0)],
        )])
        .unwrap();
        let t = Transform::LinearRescale {
            attr: "height".into(),
            lb: 152.4,
            ub: 190.5,
        };
        let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(changed, 4);
        let profile = Profile::DomainNumeric {
            attr: "height".into(),
            lb: 152.4,
            ub: 190.5,
        };
        assert_eq!(violation(&fixed, &profile), 0.0);
        // Monotonic: order preserved.
        let h: Vec<f64> = (0..4)
            .map(|i| fixed.cell(i, "height").unwrap().as_f64().unwrap())
            .collect();
        assert!(h.windows(2).all(|w| w[0] < w[1]));
        assert!((h[0] - 152.4).abs() < 1e-9 && (h[3] - 190.5).abs() < 1e-9);
    }

    #[test]
    fn winsorize_touches_only_violators() {
        let df = DataFrame::from_columns(vec![Column::from_floats(
            "x",
            vec![Some(-5.0), Some(0.5), Some(2.0)],
        )])
        .unwrap();
        let t = Transform::Winsorize {
            attr: "x".into(),
            lb: 0.0,
            ub: 1.0,
        };
        assert!((t.coverage(&df) - 2.0 / 3.0).abs() < 1e-12);
        let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(changed, 2);
        assert_eq!(fixed.cell(0, "x").unwrap(), Value::Float(0.0));
        assert_eq!(fixed.cell(1, "x").unwrap(), Value::Float(0.5));
        assert_eq!(fixed.cell(2, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn impute_mean_and_mode() {
        let mut df = DataFrame::from_columns(vec![
            Column::from_ints("age", vec![Some(10), None, Some(20)]),
            cat("city", &["x", "x", "y"]),
        ])
        .unwrap();
        let t = Transform::Impute {
            attr: "age".into(),
            strategy: ImputeStrategy::Central,
        };
        let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(changed, 1);
        assert_eq!(fixed.cell(1, "age").unwrap(), Value::Int(15));
        // Mode imputation for categoricals.
        df.column_mut("city").unwrap().set(2, Value::Null).unwrap();
        let t = Transform::Impute {
            attr: "city".into(),
            strategy: ImputeStrategy::Central,
        };
        let (fixed, _) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(fixed.cell(2, "city").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn resample_hits_target_selectivity_both_directions() {
        let mut genders = vec!["F"; 2];
        genders.extend(vec!["M"; 18]);
        let df = DataFrame::from_columns(vec![cat("gender", &genders)]).unwrap();
        let pred = Predicate::cmp("gender", CmpOp::Eq, "F");
        // Oversample 0.1 → 0.44.
        let t = Transform::ResampleSelectivity {
            predicate: pred.clone(),
            theta: 0.44,
        };
        let (up, changed) = t.apply(&df, &mut rng()).unwrap();
        assert!(changed > 0);
        let sel = up.selectivity(&pred).unwrap();
        assert!((sel - 0.44).abs() < 0.05, "sel {sel}");
        // Undersample 0.9 → 0.5.
        let mut genders = vec!["F"; 18];
        genders.extend(vec!["M"; 2]);
        let df = DataFrame::from_columns(vec![cat("gender", &genders)]).unwrap();
        let t = Transform::ResampleSelectivity {
            predicate: pred.clone(),
            theta: 0.5,
        };
        let (down, _) = t.apply(&df, &mut rng()).unwrap();
        let sel = down.selectivity(&pred).unwrap();
        assert!((sel - 0.5).abs() < 0.1, "sel {sel}");
    }

    #[test]
    fn shuffle_breaks_perfect_dependence() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..200 {
            a.push(if i % 2 == 0 { "x" } else { "y" });
            b.push(if i % 2 == 0 { "p" } else { "q" });
        }
        let df = DataFrame::from_columns(vec![cat("a", &a), cat("b", &b)]).unwrap();
        let profile = Profile::Indep {
            a: "a".into(),
            b: "b".into(),
            alpha: 0.2,
            kind: DependenceKind::Chi2,
        };
        assert!(violation(&df, &profile) > 0.9);
        let t = Transform::BreakDependenceShuffle {
            a: "a".into(),
            b: "b".into(),
            alpha: 0.2,
        };
        let (fixed, _) = t.apply(&df, &mut rng()).unwrap();
        assert!(violation(&fixed, &profile) < 0.3, "shuffle decouples");
        // Marginal preserved.
        assert_eq!(
            fixed.column("b").unwrap().value_counts(),
            df.column("b").unwrap().value_counts()
        );
    }

    #[test]
    fn decorrelate_noise_reaches_target() {
        let xs: Vec<Option<f64>> = (0..500).map(|i| Some(i as f64)).collect();
        let ys: Vec<Option<f64>> = (0..500).map(|i| Some(3.0 * i as f64)).collect();
        let df = DataFrame::from_columns(vec![
            Column::from_floats("x", xs),
            Column::from_floats("y", ys),
        ])
        .unwrap();
        let t = Transform::DecorrelateNoise {
            a: "x".into(),
            b: "y".into(),
            alpha: 0.3,
        };
        let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(changed, 500);
        let profile = Profile::Indep {
            a: "x".into(),
            b: "y".into(),
            alpha: 0.3,
            kind: DependenceKind::Pearson,
        };
        assert_eq!(
            violation(&fixed, &profile),
            0.0,
            "correlation now below alpha"
        );
    }

    #[test]
    fn residualize_zeroes_causal_coefficient() {
        let xs: Vec<Option<f64>> = (0..300).map(|i| Some((i % 37) as f64)).collect();
        let ys: Vec<Option<f64>> = (0..300)
            .map(|i| Some(2.0 * ((i % 37) as f64) + 5.0))
            .collect();
        let df = DataFrame::from_columns(vec![
            Column::from_floats("x", xs),
            Column::from_floats("y", ys),
        ])
        .unwrap();
        let t = Transform::Residualize {
            a: "x".into(),
            b: "y".into(),
        };
        let (fixed, _) = t.apply(&df, &mut rng()).unwrap();
        let profile = Profile::Indep {
            a: "x".into(),
            b: "y".into(),
            alpha: 0.1,
            kind: DependenceKind::Causal,
        };
        assert_eq!(violation(&fixed, &profile), 0.0);
    }

    #[test]
    fn outlier_repairs() {
        let mut vals: Vec<Option<f64>> = (0..99).map(|i| Some((i % 11) as f64)).collect();
        vals.push(Some(1e6));
        let df = DataFrame::from_columns(vec![Column::from_floats("x", vals)]).unwrap();
        for strategy in [
            OutlierRepair::Mean,
            OutlierRepair::Median,
            OutlierRepair::Clamp,
        ] {
            let t = Transform::ReplaceOutliers {
                attr: "x".into(),
                detector: OutlierSpec::ZScore(3.0),
                strategy,
            };
            let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
            assert_eq!(changed, 1, "{strategy:?}");
            let v = fixed.cell(99, "x").unwrap().as_f64().unwrap();
            assert!(v < 1e6, "{strategy:?} repaired the outlier, got {v}");
        }
    }

    #[test]
    fn global_classification_matches_paper() {
        let local = Transform::Winsorize {
            attr: "x".into(),
            lb: 0.0,
            ub: 1.0,
        };
        assert!(!local.is_global());
        let global = Transform::ResampleSelectivity {
            predicate: Predicate::True,
            theta: 0.5,
        };
        assert!(global.is_global());
    }

    #[test]
    fn text_repair_transform() {
        let pattern = Pattern::learn(&["2088556597", "2085374523"]).unwrap();
        let df = DataFrame::from_columns(vec![Column::from_strings(
            "phone",
            DType::Text,
            vec![Some("4047747803".into()), Some("40477478".into())],
        )])
        .unwrap();
        let t = Transform::RepairText {
            attr: "phone".into(),
            pattern: pattern.clone(),
        };
        assert!((t.coverage(&df) - 0.5).abs() < 1e-12);
        let (fixed, changed) = t.apply(&df, &mut rng()).unwrap();
        assert_eq!(changed, 1);
        for i in 0..2 {
            let s = fixed.cell(i, "phone").unwrap().to_string();
            assert!(pattern.matches(&s), "{s}");
        }
    }
}
