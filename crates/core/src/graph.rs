//! The PVT–attribute bipartite graph `G_PA` and the PVT-dependency
//! graph `G_PD` (paper §4, Fig 4).
//!
//! `G_PA` connects each discriminative PVT to the attributes its
//! profile (and transformation) is defined over. Observation O1:
//! attributes with high degree are likely involved in the root
//! cause, so PVTs adjacent to them are prioritized. `G_PD = G_PA²`
//! restricted to PVT nodes: two PVTs are dependent when they share an
//! attribute; group testing partitions along its minimum bisection.

use crate::pvt::Pvt;
use std::collections::{BTreeMap, BTreeSet};

/// The bipartite PVT–attribute graph over the *live* (not yet
/// explored) discriminative PVTs.
#[derive(Debug, Clone)]
pub struct PvtAttributeGraph {
    /// For each PVT id: the attributes it touches.
    adjacency: BTreeMap<usize, Vec<String>>,
}

impl PvtAttributeGraph {
    /// Build from the discriminative PVT set (§4.1 step 2 / Alg 1
    /// line 5).
    pub fn new(pvts: &[Pvt]) -> Self {
        let adjacency = pvts.iter().map(|p| (p.id, p.attributes())).collect();
        PvtAttributeGraph { adjacency }
    }

    /// Number of live PVTs.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when no PVTs remain.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Live PVT ids.
    pub fn pvt_ids(&self) -> Vec<usize> {
        self.adjacency.keys().copied().collect()
    }

    /// Remove an explored PVT (Alg 1 line 13).
    pub fn remove(&mut self, pvt_id: usize) {
        self.adjacency.remove(&pvt_id);
    }

    /// Degree of every attribute among live PVTs.
    pub fn attribute_degrees(&self) -> BTreeMap<String, usize> {
        let mut deg = BTreeMap::new();
        for attrs in self.adjacency.values() {
            for a in attrs {
                *deg.entry(a.clone()).or_insert(0) += 1;
            }
        }
        deg
    }

    /// PVTs adjacent to (any of) the highest-degree attribute(s) —
    /// the set `X_hda` of Alg 1 line 10. When several attributes tie
    /// for the maximum, all of their PVTs qualify.
    pub fn high_degree_pvts(&self) -> Vec<usize> {
        let degrees = self.attribute_degrees();
        let Some(&max_deg) = degrees.values().max() else {
            return Vec::new();
        };
        let hot: BTreeSet<&String> = degrees
            .iter()
            .filter(|(_, &d)| d == max_deg)
            .map(|(a, _)| a)
            .collect();
        self.adjacency
            .iter()
            .filter(|(_, attrs)| attrs.iter().any(|a| hot.contains(a)))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Edges of the PVT-dependency graph `G_PD`: unordered PVT pairs
    /// sharing at least one attribute.
    pub fn dependency_edges(&self) -> Vec<(usize, usize)> {
        let ids: Vec<usize> = self.pvt_ids();
        let mut edges = Vec::new();
        for (k, &i) in ids.iter().enumerate() {
            let ai: BTreeSet<&String> = self.adjacency[&i].iter().collect();
            for &j in &ids[k + 1..] {
                if self.adjacency[&j].iter().any(|a| ai.contains(a)) {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    /// Whether two live PVTs share an attribute.
    pub fn dependent(&self, i: usize, j: usize) -> bool {
        match (self.adjacency.get(&i), self.adjacency.get(&j)) {
            (Some(ai), Some(aj)) => ai.iter().any(|a| aj.contains(a)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DependenceKind, Profile};
    use crate::transform::Transform;
    use dp_frame::{CmpOp, Predicate};

    /// Rebuild the paper's Fig 4 graph: Missing(zip_code),
    /// Indep(race, high_expenditure), Selectivity(gender ∧
    /// high_expenditure), Domain(age).
    fn paper_pvts() -> Vec<Pvt> {
        vec![
            Pvt {
                id: 0,
                profile: Profile::Missing {
                    attr: "zip_code".into(),
                    theta: 0.11,
                },
                transform: Transform::Impute {
                    attr: "zip_code".into(),
                    strategy: crate::transform::ImputeStrategy::Mode,
                },
            },
            Pvt {
                id: 1,
                profile: Profile::Indep {
                    a: "race".into(),
                    b: "high_expenditure".into(),
                    alpha: 0.04,
                    kind: DependenceKind::Chi2,
                },
                transform: Transform::BreakDependenceShuffle {
                    a: "race".into(),
                    b: "high_expenditure".into(),
                    alpha: 0.04,
                },
            },
            Pvt {
                id: 2,
                profile: Profile::Selectivity {
                    predicate: Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp(
                        "high_expenditure",
                        CmpOp::Eq,
                        "yes",
                    )),
                    theta: 0.44,
                },
                transform: Transform::ResampleSelectivity {
                    predicate: Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp(
                        "high_expenditure",
                        CmpOp::Eq,
                        "yes",
                    )),
                    theta: 0.44,
                },
            },
            Pvt {
                id: 3,
                profile: Profile::DomainNumeric {
                    attr: "age".into(),
                    lb: 22.0,
                    ub: 51.0,
                },
                transform: Transform::Winsorize {
                    attr: "age".into(),
                    lb: 22.0,
                    ub: 51.0,
                },
            },
        ]
    }

    #[test]
    fn degrees_match_fig4() {
        let g = PvtAttributeGraph::new(&paper_pvts());
        let deg = g.attribute_degrees();
        // high_expenditure connects to Indep and Selectivity: degree 2.
        assert_eq!(deg["high_expenditure"], 2);
        assert_eq!(deg["zip_code"], 1);
        assert_eq!(deg["race"], 1);
        assert_eq!(deg["gender"], 1);
        assert_eq!(deg["age"], 1);
    }

    #[test]
    fn high_degree_pvts_prioritize_high_expenditure() {
        let g = PvtAttributeGraph::new(&paper_pvts());
        let hda = g.high_degree_pvts();
        assert_eq!(hda, vec![1, 2], "Indep and Selectivity PVTs");
    }

    #[test]
    fn dependency_edges_via_shared_attribute() {
        let g = PvtAttributeGraph::new(&paper_pvts());
        let edges = g.dependency_edges();
        assert_eq!(edges, vec![(1, 2)], "only Indep–Selectivity share an attr");
        assert!(g.dependent(1, 2));
        assert!(!g.dependent(0, 3));
    }

    #[test]
    fn removal_updates_degrees() {
        let mut g = PvtAttributeGraph::new(&paper_pvts());
        g.remove(1);
        assert_eq!(g.len(), 3);
        let deg = g.attribute_degrees();
        assert_eq!(deg["high_expenditure"], 1);
        assert!(!deg.contains_key("race"), "race had only the removed PVT");
        // Ties: now every attribute has degree 1, so all PVTs qualify.
        assert_eq!(g.high_degree_pvts().len(), 3);
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = PvtAttributeGraph::new(&[]);
        assert!(g.is_empty());
        assert!(g.high_degree_pvts().is_empty());
        assert!(g.dependency_edges().is_empty());
    }
}
