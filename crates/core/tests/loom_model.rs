//! Schedule-perturbation models of the detached speculation pool.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, where the runtime's
//! pool primitives (`Mutex`/`Condvar`/worker spawn) swap to the
//! `loom` shim: every acquisition, wait, and notification becomes a
//! perturbation point, and `loom::model` re-runs each closure under
//! many distinct yield schedules. The models target the pool's three
//! delicate protocols:
//!
//! 1. **Settle quiescence** — `cache_stats()` discards the unstarted
//!    queue tail and waits on the `idle` condvar until `pending == 0`;
//!    a lost wakeup or miscounted `pending` deadlocks or underflows.
//! 2. **Fingerprint-cache handoff** — a speculative worker scoring a
//!    frame concurrently with a charged `intervene` of the same frame
//!    must agree on one deterministic score, and the charged query
//!    must retire the speculation from the waste set at most once.
//! 3. **Drop with queued jobs** — dropping the runtime mid-burst must
//!    shut workers down, rebalance `pending`, and join cleanly.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p dataprism --test loom_model --release`

#![cfg(loom)]

use dataprism::runtime::DetachedSpeculation;
use dataprism::{InterventionRuntime, ParOracle};
use dp_frame::{Column, DataFrame};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn df(vals: &[i64]) -> DataFrame {
    DataFrame::from_columns(vec![Column::from_ints(
        "x",
        vals.iter().map(|&v| Some(v)).collect(),
    )])
    .unwrap()
}

fn detached(frame: &DataFrame) -> DetachedSpeculation {
    DetachedSpeculation {
        pvts: Vec::new(),
        base: Arc::new(frame.clone()),
        rng: StdRng::seed_from_u64(0),
    }
}

#[test]
fn settle_reaches_quiescence_under_perturbed_schedules() {
    loom::model(|| {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 2);
        let frames: Vec<DataFrame> = (0..6).map(|i| df(&[i, i + 1])).collect();
        rt.speculate_detached(frames.iter().map(detached).collect());
        // cache_stats() settles the pool: drops the unstarted tail,
        // waits for in-flight jobs. Whatever the schedule did, the
        // counters must be read at quiescence and stay consistent.
        let stats = rt.cache_stats();
        assert!(stats.speculative <= frames.len());
        assert_eq!(stats.speculative_waste, stats.speculative);
        assert_eq!(stats.interventions, 0, "speculation is never charged");
        // A second settle with nothing queued must not deadlock.
        let again = rt.cache_stats();
        assert_eq!(again.speculative, stats.speculative);
    });
}

#[test]
fn cache_handoff_agrees_on_one_score() {
    loom::model(|| {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 2);
        let frame = df(&[1, 2, 3]);
        // Race the background scoring of `frame` against a charged
        // query of the same frame on the primary thread.
        rt.speculate_detached(vec![detached(&frame), detached(&df(&[7]))]);
        let score = rt.intervene(&frame);
        assert_eq!(score, 0.3, "deterministic score, whoever computed it");
        assert_eq!(rt.interventions, 1);
        let stats = rt.cache_stats();
        // The charged query either hit a worker's speculative score
        // (consuming it from the waste set) or scored first itself;
        // both ends of the race must balance the books.
        assert_eq!(stats.hits + stats.misses, 1);
        assert!(stats.speculative_waste <= stats.speculative);
        assert_eq!(stats.interventions, 1);
        // The score is now cached for everyone: a repeat query is a
        // hit and the answer is bit-identical.
        assert_eq!(rt.intervene(&frame), 0.3);
    });
}

#[test]
fn drop_with_queued_jobs_joins_cleanly() {
    loom::model(|| {
        let factory = || |df: &DataFrame| df.n_rows() as f64 / 10.0;
        let mut rt = ParOracle::new(&factory, 0.2, 100, 2);
        let jobs: Vec<DetachedSpeculation> =
            (0..16).map(|i| detached(&df(&[i, i + 1, i + 2]))).collect();
        rt.speculate_detached(jobs);
        // Drop immediately: workers may be mid-job, waiting for work,
        // or not yet scheduled. Drop must discard the unstarted tail,
        // wake every waiter, and join without deadlock or panic.
        drop(rt);
    });
}
