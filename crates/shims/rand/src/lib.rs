//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this
//! workspace-local crate stands in for the real `rand`. It implements
//! exactly the surface the repository uses — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`] — backed by a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//!
//! The numeric streams differ from upstream `rand`, but every
//! consumer in this workspace only relies on *determinism for a given
//! seed*, which this crate guarantees (and additionally guarantees
//! across platforms and releases, which upstream `StdRng` does not).

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over a range (the subset of
/// `rand::distributions::uniform::SampleUniform` this workspace
/// needs).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style
/// rejection on the widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            // Fast accept once the low word clears the bias zone.
            return (m >> 64) as u64;
        }
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = rng.next_u64() as f64 * (1.0 / u64::MAX as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_closed(rng, lo as f64, hi as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// Types producible by [`Rng::gen`] (the subset of the `Standard`
/// distribution this workspace needs).
pub trait Standard: Sized {
    /// Sample a "standard" value (uniform `[0,1)` for floats, uniform
    /// over the domain for integers and bool).
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::standard(rng) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        f64::standard(self) < p
    }

    /// Sample from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator — the stand-in for
    /// `rand::rngs::StdRng`. `Clone` is intentional and cheap: the
    /// parallel intervention runtime snapshots generator state to
    /// replay serial semantics.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..=5usize);
            assert!(u <= 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn clone_snapshots_state() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.gen::<u64>();
        let mut b = a.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
