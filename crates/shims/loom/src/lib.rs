//! Offline drop-in subset of the [`loom`](https://docs.rs/loom)
//! concurrency-testing API.
//!
//! This workspace vendors no registry crates, so the real loom (an
//! exhaustive DPOR model checker) is unavailable. This shim keeps the
//! *API shape* — `loom::model`, `loom::thread`, `loom::sync` — so the
//! runtime's pool code and its model tests compile unchanged under
//! `--cfg loom`, but explores interleavings by **randomized schedule
//! perturbation** instead of exhaustive enumeration: [`model`] runs
//! the closure many times, and every lock acquisition, condvar
//! operation, and thread spawn passes through a perturbation point
//! ([`sched::tick`]) that pseudo-randomly yields to the OS scheduler,
//! with a different yield pattern per iteration. That is a stress
//! model, not a proof — it reliably surfaces lost-wakeup, double-drop
//! and accounting races in practice, while remaining dependency-free.
//!
//! Only the subset the `dataprism` runtime uses is implemented:
//! `thread::{spawn, yield_now, JoinHandle}`,
//! `sync::{Arc, Mutex, Condvar}`, and `model`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Schedule perturbation machinery shared by all shim primitives.
pub mod sched {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Per-iteration epoch mixed into every thread's yield stream so
    /// each [`crate::model`] iteration explores a different schedule.
    static EPOCH: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    /// Distinct starting state per thread.
    static THREAD_SALT: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static STATE: Cell<u64> = Cell::new(
            THREAD_SALT
                .fetch_add(0x2545_F491_4F6C_DD1D, Ordering::Relaxed)
                | 1,
        );
    }

    /// Start a new exploration iteration (called by [`crate::model`]).
    pub fn set_epoch(iteration: u64) {
        EPOCH.store(
            (iteration.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            Ordering::Relaxed,
        );
    }

    /// A perturbation point: advance this thread's xorshift stream and
    /// pseudo-randomly yield to the OS scheduler.
    pub fn tick() {
        let yield_now = STATE.with(|state| {
            let mut x = state.get() ^ EPOCH.load(Ordering::Relaxed);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            state.set(x | 1);
            x & 0b11 == 0
        });
        if yield_now {
            std::thread::yield_now();
        }
    }
}

/// Exploration entry point: run `f` under many randomized schedules.
///
/// The real loom enumerates interleavings exhaustively; the shim
/// re-runs the closure with a fresh perturbation epoch each time, so
/// bugs that depend on thread timing get many distinct chances to
/// fire within one `#[test]`.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    const ITERATIONS: u64 = 64;
    for iteration in 0..ITERATIONS {
        sched::set_epoch(iteration);
        f();
    }
}

/// Threading primitives with perturbation points.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawn a thread whose body starts at a perturbation point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            crate::sched::tick();
            f()
        })
    }
}

/// Synchronization primitives with perturbation points.
pub mod sync {
    pub use std::sync::Arc;
    use std::sync::{LockResult, MutexGuard};

    /// [`std::sync::Mutex`] that perturbs the schedule on every
    /// acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Create a new mutex.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquire the lock (after a perturbation point).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            crate::sched::tick();
            self.0.lock()
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    /// [`std::sync::Condvar`] that perturbs the schedule around waits
    /// and notifications — the classic window for lost-wakeup bugs.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Create a new condition variable.
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        /// Wait on the condvar (perturbing before the wait, widening
        /// the notify race window).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            crate::sched::tick();
            self.0.wait(guard)
        }

        /// Wake all waiters (after a perturbation point).
        pub fn notify_all(&self) {
            crate::sched::tick();
            self.0.notify_all();
        }

        /// Wake one waiter (after a perturbation point).
        pub fn notify_one(&self) {
            crate::sched::tick();
            self.0.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn model_runs_the_closure_many_times() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        model(|| {
            RUNS.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(RUNS.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn primitives_behave_like_std() {
        let m = sync::Arc::new(sync::Mutex::new(0usize));
        let cv = sync::Arc::new(sync::Condvar::new());
        let (m2, cv2) = (sync::Arc::clone(&m), sync::Arc::clone(&cv));
        let handle = thread::spawn(move || {
            *m2.lock().unwrap() = 7;
            cv2.notify_all();
        });
        let mut guard = m.lock().unwrap();
        while *guard != 7 {
            guard = cv.wait(guard).unwrap();
        }
        drop(guard);
        handle.join().unwrap();
        let solo = sync::Mutex::new(3);
        assert_eq!(solo.into_inner().unwrap(), 3);
    }
}
