//! Offline, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this
//! workspace-local crate stands in for the real `criterion`. It keeps
//! the same call surface (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_with_setup`,
//! `BenchmarkId`) but replaces the statistical machinery with a small
//! fixed-sample timer: a short warm-up, then `sample_size` timed
//! iterations, reporting the mean per-iteration wall-clock.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque blackbox preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iterations = self.samples as u64;
    }

    /// Time `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iterations = self.samples as u64;
    }

    fn mean(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.total / self.iterations as u32
        }
    }
}

fn run_one(group: &str, label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!(
        "{name:<60} {:>12.3?} /iter  ({} samples)",
        bencher.mean(),
        bencher.iterations
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion minimum 10;
    /// this shim honors the requested count directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id.label, self.samples, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&self.name, &id.label, self.samples, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond matching the criterion API).
    pub fn finish(&mut self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one("", &id.label, 10, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surfaces_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("iter", 1), |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs >= 3, "warm-up plus samples ran: {runs}");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter_with_setup(|| n, |x| x * 2);
        });
        group.finish();
    }
}
