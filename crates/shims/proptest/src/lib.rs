//! Offline, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this
//! workspace-local crate stands in for the real `proptest`. It
//! implements the surface this repository's property tests use:
//! strategies over numeric ranges and regex-like string patterns,
//! the `vec`/`select`/`of` combinators, `prop_map`/`prop_flat_map`,
//! weighted `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case reports
//! its inputs but is not minimized), and a fixed deterministic seed
//! per test derived from the test name, so failures reproduce exactly
//! across runs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of accepted cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Deterministic per-test generator, seeded from the test name.
pub fn test_rng(test_name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// A generator of values of type `Value`.
///
/// Object-safe core is [`Strategy::sample`]; the combinators require
/// `Self: Sized` so `Box<dyn Strategy<Value = V>>` works.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn sample(&self, rng: &mut StdRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64, f32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// `&str` regex-like patterns are strategies producing matching
/// strings (subset: literals, `[...]` classes with ranges, and the
/// `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        regex::generate(self, rng)
    }
}

mod regex {
    use rand::rngs::StdRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed [ in /{pattern}/"));
                    let body = &chars[i + 1..close];
                    let mut ranges = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            ranges.push((body[j], body[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((body[j], body[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed {{ in /{pattern}/"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let m = body.trim().parse().expect("quantifier count");
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        let c = char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                            .expect("class range stays in valid chars");
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

/// Strategy picking uniformly among weighted boxed alternatives —
/// the engine behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights cover the sampled point")
    }
}

pub mod prop {
    //! The `prop::` namespace of combinator modules.

    pub mod collection {
        //! Collection strategies.
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Admissible element counts for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Vectors of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.gen_range(self.size.min..=self.size.max);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value sets.
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform choice among the given values.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select from an empty set");
            Select { values }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.values[rng.gen_range(0..self.values.len())].clone()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// `Some` from the inner strategy three times out of four,
        /// `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{prop, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            )));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}\n {}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)*)
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, Box::new($strategy) as $crate::BoxedStrategy<_>)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, Box::new($strategy) as $crate::BoxedStrategy<_>)),+
        ])
    };
}

/// Define property tests: each `fn` runs [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            while accepted < $crate::CASES && attempts < $crate::CASES * 16 {
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {msg}\n  inputs: {inputs}",
                            accepted + 1,
                            $crate::CASES,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_shapes() {
        let mut rng = crate::test_rng("regex");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,6}-[0-9]{1,5}", &mut rng);
            let (word, digits) = s.split_once('-').expect("dash present");
            assert!((1..=6).contains(&word.len()), "{s}");
            assert!((1..=5).contains(&digits.len()), "{s}");
            assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            assert!(digits.chars().all(|c| c.is_ascii_digit()));

            let t = Strategy::sample(&"[a-z0-9-]{0,12}", &mut rng);
            assert!(t.len() <= 12);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn oneof_honors_weights_loosely() {
        let strategy: crate::Union<Option<f64>> = prop_oneof![
            3 => (0.0f64..1.0).prop_map(Some),
            1 => Just(None),
        ];
        let mut rng = crate::test_rng("oneof");
        let nones = (0..4000)
            .filter(|_| Strategy::sample(&strategy, &mut rng).is_none())
            .count();
        assert!((700..1300).contains(&nones), "got {nones} Nones");
    }

    proptest! {
        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0i64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..10).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn flat_map_threads_dependent_sizes(pair in (1usize..5)
            .prop_flat_map(|n| (Just(n), prop::collection::vec(0i64..3, n..=n)))) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }
}
