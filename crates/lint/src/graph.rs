//! Rule L5 — sanity of the PVT-dependency graph.
//!
//! The dependency graph `G_PD` connects candidates that touch a
//! common attribute (the structure group testing partitions along).
//! This rule checks its shape: self-loops and dangling edges are
//! modeling bugs (`Warn`), while cycles and disconnected components
//! are structural facts worth surfacing (`Info`) — a cycle means the
//! partitioner cannot fully separate the involved candidates, and
//! independent components could be diagnosed separately.

use crate::{Diagnostic, RuleId, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Union–find over candidate ids (path-halving, union by attachment).
struct DisjointSet {
    parent: BTreeMap<usize, usize>,
}

impl DisjointSet {
    fn new(ids: &[usize]) -> Self {
        DisjointSet {
            parent: ids.iter().map(|&i| (i, i)).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[&x] != x {
            let grandparent = self.parent[&self.parent[&x]];
            self.parent.insert(x, grandparent);
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra.max(rb), ra.min(rb));
        }
    }
}

/// L5 — graph sanity over the candidate ids and undirected dependency
/// edges. Emitted diagnostics are deterministic: ids and edges are
/// canonicalized before any traversal.
pub fn check_graph(ids: &[usize], edges: &[(usize, usize)]) -> Vec<Diagnostic> {
    let nodes: BTreeSet<usize> = ids.iter().copied().collect();
    let mut out = Vec::new();

    // Canonicalize: dedupe undirected edges, split off self-loops and
    // edges mentioning unknown candidates.
    let mut canonical: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(a, b) in edges {
        if a == b {
            out.push(Diagnostic {
                rule: RuleId::GraphSanity,
                severity: Severity::Warn,
                pvt_ids: vec![a],
                attr: None,
                message: format!("candidate {a} has a self-loop in the dependency graph"),
            });
            continue;
        }
        if !nodes.contains(&a) || !nodes.contains(&b) {
            let mut pair = vec![a, b];
            pair.sort_unstable();
            out.push(Diagnostic {
                rule: RuleId::GraphSanity,
                severity: Severity::Warn,
                pvt_ids: pair,
                attr: None,
                message: format!(
                    "dependency edge ({a}, {b}) references a candidate outside the set"
                ),
            });
            continue;
        }
        canonical.insert((a.min(b), a.max(b)));
    }

    // Components and per-component edge counts.
    let id_vec: Vec<usize> = nodes.iter().copied().collect();
    let mut dsu = DisjointSet::new(&id_vec);
    for &(a, b) in &canonical {
        dsu.union(a, b);
    }
    let mut components: BTreeMap<usize, (Vec<usize>, usize)> = BTreeMap::new();
    for &id in &id_vec {
        let root = dsu.find(id);
        components.entry(root).or_default().0.push(id);
    }
    for &(a, _) in &canonical {
        let root = dsu.find(a);
        components.entry(root).or_default().1 += 1;
    }

    if components.len() > 1 {
        out.push(Diagnostic {
            rule: RuleId::GraphSanity,
            severity: Severity::Info,
            pvt_ids: Vec::new(),
            attr: None,
            message: format!(
                "dependency graph splits into {} independent components; \
                 they could be diagnosed separately",
                components.len()
            ),
        });
    }

    // An undirected component has a cycle iff it has at least as many
    // edges as nodes (a tree has n − 1).
    for (members, n_edges) in components.values() {
        if *n_edges >= members.len() && !members.is_empty() {
            let preview: Vec<String> = members.iter().take(8).map(|i| i.to_string()).collect();
            let ellipsis = if members.len() > 8 { ", …" } else { "" };
            out.push(Diagnostic {
                rule: RuleId::GraphSanity,
                severity: Severity::Info,
                pvt_ids: members.clone(),
                attr: None,
                message: format!(
                    "candidates {{{}{}}} form a dependency cycle; partitioning cannot \
                     fully separate them",
                    preview.join(", "),
                    ellipsis
                ),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messages(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.message.as_str()).collect()
    }

    #[test]
    fn l5_clean_tree_emits_nothing() {
        // A path 0—1—2 is a single acyclic component.
        let diags = check_graph(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert!(diags.is_empty(), "{:?}", messages(&diags));
    }

    #[test]
    fn l5_flags_self_loop() {
        let diags = check_graph(&[0, 1], &[(0, 0), (0, 1)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0].message.contains("self-loop"));
    }

    #[test]
    fn l5_flags_dangling_edge() {
        let diags = check_graph(&[0, 1], &[(0, 7)]);
        // The dangling edge itself, plus the two known nodes now form
        // two singleton components.
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Warn && d.message.contains("outside the set")));
    }

    #[test]
    fn l5_flags_disconnected_components() {
        let diags = check_graph(&[0, 1, 2, 3], &[(0, 1), (2, 3)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("2 independent components"));
    }

    #[test]
    fn l5_flags_cycles() {
        let diags = check_graph(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].pvt_ids, vec![0, 1, 2]);
        assert!(diags[0].message.contains("dependency cycle"));
    }

    #[test]
    fn l5_duplicate_undirected_edges_do_not_fake_a_cycle() {
        let diags = check_graph(&[0, 1], &[(0, 1), (1, 0)]);
        assert!(diags.is_empty(), "{:?}", messages(&diags));
    }

    #[test]
    fn l5_empty_graph_is_clean() {
        assert!(check_graph(&[], &[]).is_empty());
    }
}
