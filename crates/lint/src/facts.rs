//! Fact model the lint rules consume.
//!
//! The analyzer deliberately does not depend on the core crate's
//! `Profile`/`Transform` enums: callers (the `dataprism` runtime, or
//! any external pipeline frontend) lower each candidate PVT into a
//! [`CandidateFacts`] record — attribute reads and writes with their
//! type-class requirements, the profile's violation on `D_fail`, the
//! transformation's no-apply coverage estimate, and an optional write
//! target — and the rules reason over those facts plus the
//! [`dp_frame::Schema`] alone.

use dp_frame::DType;
use std::collections::BTreeSet;
use std::fmt;

/// The column type class an attribute access requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TypeClass {
    /// Requires a numeric column ([`DType::Int`] or [`DType::Float`]).
    Numeric,
    /// Requires a string-backed column ([`DType::Categorical`] or
    /// [`DType::Text`]).
    Textual,
    /// Works for any column type.
    Any,
}

impl TypeClass {
    /// Whether a column of the given dtype satisfies this requirement.
    pub fn admits(self, dtype: DType) -> bool {
        match self {
            TypeClass::Numeric => dtype.is_numeric(),
            TypeClass::Textual => dtype.is_string(),
            TypeClass::Any => true,
        }
    }
}

impl fmt::Display for TypeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeClass::Numeric => "numeric",
            TypeClass::Textual => "textual",
            TypeClass::Any => "any",
        })
    }
}

/// One attribute access (read or write) and its type requirement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttrRequirement {
    /// Attribute name.
    pub attr: String,
    /// Required type class.
    pub ty: TypeClass,
}

impl AttrRequirement {
    /// Convenience constructor.
    pub fn new(attr: impl Into<String>, ty: TypeClass) -> Self {
        AttrRequirement {
            attr: attr.into(),
            ty,
        }
    }
}

/// The value region a transformation drives an attribute toward —
/// the input to conflict detection (rule L4).
#[derive(Debug, Clone, PartialEq)]
pub enum WriteTarget {
    /// Values are driven into the closed interval `[lb, ub]`.
    Range {
        /// Lower bound.
        lb: f64,
        /// Upper bound.
        ub: f64,
    },
    /// Values are driven into this categorical domain.
    Domain(BTreeSet<String>),
}

impl WriteTarget {
    /// Whether two targets for the same attribute can be satisfied by
    /// one composed application. Targets of different shapes are not
    /// comparable and count as compatible.
    pub fn compatible_with(&self, other: &WriteTarget) -> bool {
        match (self, other) {
            (WriteTarget::Range { lb: a, ub: b }, WriteTarget::Range { lb: c, ub: d }) => {
                a <= d && c <= b
            }
            (WriteTarget::Domain(x), WriteTarget::Domain(y)) => x.intersection(y).next().is_some(),
            _ => true,
        }
    }
}

impl fmt::Display for WriteTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteTarget::Range { lb, ub } => write!(f, "[{lb}, {ub}]"),
            WriteTarget::Domain(values) => {
                let preview: Vec<&str> = values.iter().take(4).map(|s| s.as_str()).collect();
                let ellipsis = if values.len() > 4 { ", …" } else { "" };
                write!(f, "{{{}{}}}", preview.join(", "), ellipsis)
            }
        }
    }
}

/// Everything the rules need to know about one candidate PVT.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateFacts {
    /// The candidate's id (stable across the diagnosis run).
    pub id: usize,
    /// Short human-readable label used in diagnostic messages (e.g.
    /// the profile's template key).
    pub label: String,
    /// Attributes the profile's violation function and the
    /// transformation *read*, with their type requirements.
    pub reads: Vec<AttrRequirement>,
    /// Attributes the transformation *writes*, with the type class it
    /// can operate on.
    pub writes: Vec<AttrRequirement>,
    /// True for row-resampling transformations that rewrite every
    /// column (their write set is effectively the whole schema).
    pub rewrites_all_attributes: bool,
    /// Attributes the profile constrains (the violation function's
    /// input columns).
    pub profile_attributes: Vec<String>,
    /// `V(D_fail, P)` — the profile's violation on the failing
    /// dataset, in `[0, 1]`.
    pub profile_violation_on_fail: f64,
    /// The transformation's no-apply coverage estimate on `D_fail`:
    /// the fraction of tuples it would modify.
    pub coverage_on_fail: f64,
    /// Whether `coverage_on_fail == 0` *certifies* that applying the
    /// transformation returns the input dataset unchanged (true only
    /// for transformation kinds whose coverage estimate is exact).
    pub coverage_is_exact: bool,
    /// The attribute/region the transformation drives values toward,
    /// when it has a describable target (rule L4 input).
    pub write_target: Option<(String, WriteTarget)>,
    /// Attributes the *transformation alone* reads (no profile
    /// reads): the application-order footprint rule L8 intersects.
    /// A subset of `reads`' attribute names.
    pub transform_reads: Vec<String>,
    /// The transformation chain lowered to abstract transfer ops
    /// (rule L6/L7/L9 input). Empty when the bridge cannot lower the
    /// transformation — the abstract rules then skip the candidate.
    pub transfer: Vec<crate::absint::TransferOp>,
    /// A structural key identifying the transformation *function*:
    /// `Some` iff the transformation is deterministic, in which case
    /// two candidates with equal keys apply the bit-identical pure
    /// function in any context (rule L6's syntactic certificate).
    pub transform_key: Option<String>,
    /// The violated region of the candidate's own profile, when the
    /// profile constrains a single attribute against a describable
    /// region (rule L7 input).
    pub profile_region: Option<(String, crate::absint::ValueRegion)>,
}

impl CandidateFacts {
    /// A neutral fact record: no accesses, violated profile, positive
    /// coverage. Tests and callers override the fields under scrutiny.
    pub fn new(id: usize, label: impl Into<String>) -> Self {
        CandidateFacts {
            id,
            label: label.into(),
            reads: Vec::new(),
            writes: Vec::new(),
            rewrites_all_attributes: false,
            profile_attributes: Vec::new(),
            profile_violation_on_fail: 1.0,
            coverage_on_fail: 1.0,
            coverage_is_exact: false,
            write_target: None,
            transform_reads: Vec::new(),
            transfer: Vec::new(),
            transform_key: None,
            profile_region: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_classes_admit_expected_dtypes() {
        assert!(TypeClass::Numeric.admits(DType::Int));
        assert!(TypeClass::Numeric.admits(DType::Float));
        assert!(!TypeClass::Numeric.admits(DType::Text));
        assert!(TypeClass::Textual.admits(DType::Categorical));
        assert!(TypeClass::Textual.admits(DType::Text));
        assert!(!TypeClass::Textual.admits(DType::Bool));
        assert!(TypeClass::Any.admits(DType::Bool));
    }

    #[test]
    fn range_targets_compatible_iff_overlapping() {
        let a = WriteTarget::Range { lb: 0.0, ub: 10.0 };
        let b = WriteTarget::Range { lb: 5.0, ub: 20.0 };
        let c = WriteTarget::Range { lb: 11.0, ub: 12.0 };
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        assert!(b.compatible_with(&c));
    }

    #[test]
    fn domain_targets_compatible_iff_intersecting() {
        let dom = |vals: &[&str]| {
            WriteTarget::Domain(vals.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>())
        };
        assert!(dom(&["-1", "1"]).compatible_with(&dom(&["1", "2"])));
        assert!(!dom(&["-1", "1"]).compatible_with(&dom(&["0", "4"])));
    }

    #[test]
    fn mixed_shape_targets_are_not_comparable() {
        let r = WriteTarget::Range { lb: 0.0, ub: 1.0 };
        let d = WriteTarget::Domain(BTreeSet::from(["9".to_string()]));
        assert!(r.compatible_with(&d));
    }

    #[test]
    fn write_target_display_is_compact() {
        let r = WriteTarget::Range { lb: 0.0, ub: 1.0 };
        assert_eq!(r.to_string(), "[0, 1]");
        let d = WriteTarget::Domain(
            ["a", "b", "c", "d", "e"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(d.to_string(), "{a, b, c, d, …}");
    }
}
