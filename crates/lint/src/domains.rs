//! Abstract domains for the lint pass's symbolic execution.
//!
//! A column is abstracted by three independent lattices:
//!
//! - a **numeric interval** over the non-null values (`Empty` ⊑
//!   `Range` ⊑ `Top`),
//! - a **null-fraction band** `[lo, hi] ⊆ [0, 1]`,
//! - a **categorical support set** over the non-null string values
//!   (a finite set, or `Top` when the domain is unknown/too wide).
//!
//! The engine seeds these *exactly* from the failing dataset (the
//! observed min/max, the exact null fraction, the full distinct set
//! up to a cap), then pushes them through the transfer functions of
//! [`crate::absint`]. Soundness contract: after seeding, an abstract
//! column **contains** its concrete column (every non-null value in
//! the interval and the support, the null fraction inside the band),
//! and every transfer function preserves containment. All
//! certificates in the rule pass (identity, equivalence, region
//! disjointness) are monotone in the abstraction — a wider state can
//! only certify *less* — so over-approximation never produces an
//! unsound verdict.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A closed interval over the non-null numeric values of a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interval {
    /// No non-null numeric values at all.
    Empty,
    /// Every non-null value lies in `[lo, hi]` (finite bounds).
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Nothing is known (non-finite observations, or an op the
    /// engine cannot bound).
    Top,
}

impl Interval {
    /// Construct from finite bounds; anything non-finite degrades to
    /// `Top` (the seeding path hits this on NaN/∞ observations).
    pub fn range(lo: f64, hi: f64) -> Self {
        if lo.is_finite() && hi.is_finite() && lo <= hi {
            Interval::Range { lo, hi }
        } else {
            Interval::Top
        }
    }

    /// Does the interval admit the concrete value `x`?
    pub fn contains(&self, x: f64) -> bool {
        match *self {
            Interval::Empty => false,
            Interval::Range { lo, hi } => x >= lo && x <= hi,
            Interval::Top => true,
        }
    }

    /// Is every admissible value inside `[lb, ub]`? (`Empty` is —
    /// vacuously.)
    pub fn within(&self, lb: f64, ub: f64) -> bool {
        match *self {
            Interval::Empty => true,
            Interval::Range { lo, hi } => lb <= lo && hi <= ub,
            Interval::Top => false,
        }
    }

    /// Is every admissible value *outside* `[lb, ub]`? (`Empty` and
    /// `Top` are not: the certificate needs at least one provably
    /// out-of-region value, and `Top` proves nothing.)
    pub fn disjoint_from(&self, lb: f64, ub: f64) -> bool {
        match *self {
            Interval::Empty | Interval::Top => false,
            Interval::Range { lo, hi } => hi < lb || lo > ub,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        match (*self, *other) {
            (Interval::Empty, x) | (x, Interval::Empty) => x,
            (Interval::Top, _) | (_, Interval::Top) => Interval::Top,
            (Interval::Range { lo: a, hi: b }, Interval::Range { lo: c, hi: d }) => {
                Interval::Range {
                    lo: a.min(c),
                    hi: b.max(d),
                }
            }
        }
    }
}

/// The set of non-null string values a categorical column may hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupportDom {
    /// Unknown (numeric column, capped cardinality, or an op that
    /// invents values).
    Top,
    /// Every non-null value is a member of the set (possibly empty:
    /// an all-null column).
    Set(BTreeSet<String>),
}

impl SupportDom {
    /// Does the support admit the concrete string `s`?
    pub fn contains(&self, s: &str) -> bool {
        match self {
            SupportDom::Top => true,
            SupportDom::Set(set) => set.contains(s),
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &SupportDom) -> SupportDom {
        match (self, other) {
            (SupportDom::Top, _) | (_, SupportDom::Top) => SupportDom::Top,
            (SupportDom::Set(a), SupportDom::Set(b)) => {
                SupportDom::Set(a.union(b).cloned().collect())
            }
        }
    }
}

/// Abstract state of one column: interval × null band × support.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsCol {
    /// Range of the non-null numeric values.
    pub interval: Interval,
    /// Lower bound on the null fraction (of all rows).
    pub null_lo: f64,
    /// Upper bound on the null fraction.
    pub null_hi: f64,
    /// Support of the non-null string values.
    pub support: SupportDom,
}

impl AbsCol {
    /// The no-information element (admits any column).
    pub fn top() -> Self {
        AbsCol {
            interval: Interval::Top,
            null_lo: 0.0,
            null_hi: 1.0,
            support: SupportDom::Top,
        }
    }

    /// Does the abstract column admit a concrete null fraction `f`?
    pub fn admits_null_fraction(&self, f: f64) -> bool {
        f >= self.null_lo && f <= self.null_hi
    }

    /// Least upper bound, component-wise.
    pub fn join(&self, other: &AbsCol) -> AbsCol {
        AbsCol {
            interval: self.interval.join(&other.interval),
            null_lo: self.null_lo.min(other.null_lo),
            null_hi: self.null_hi.max(other.null_hi),
            support: self.support.join(&other.support),
        }
    }
}

/// Abstract state of a frame: one [`AbsCol`] per column. Columns not
/// present map to [`AbsCol::top`] (unknown).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbsState {
    cols: BTreeMap<String, AbsCol>,
}

impl AbsState {
    /// Empty state: every column unknown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `attr` to `col`.
    pub fn set(&mut self, attr: &str, col: AbsCol) {
        self.cols.insert(attr.to_string(), col);
    }

    /// The abstract column for `attr` (`Top` when unseeded).
    pub fn col(&self, attr: &str) -> AbsCol {
        self.cols.get(attr).cloned().unwrap_or_else(AbsCol::top)
    }

    /// Mutable access, inserting `Top` on first touch.
    pub fn col_mut(&mut self, attr: &str) -> &mut AbsCol {
        self.cols
            .entry(attr.to_string())
            .or_insert_with(AbsCol::top)
    }

    /// The seeded column names, in sorted order.
    pub fn attrs(&self) -> impl Iterator<Item = &str> {
        self.cols.keys().map(String::as_str)
    }

    /// Restrict to `attrs` (the comparison key for post-state
    /// coincidence on a profile's read-set).
    pub fn project(&self, attrs: &[String]) -> Vec<(String, AbsCol)> {
        attrs.iter().map(|a| (a.clone(), self.col(a))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_lattice_laws() {
        let r = Interval::range(1.0, 5.0);
        assert_eq!(r.join(&Interval::Empty), r);
        assert_eq!(Interval::Empty.join(&r), r);
        assert_eq!(r.join(&Interval::Top), Interval::Top);
        assert_eq!(
            Interval::range(1.0, 5.0).join(&Interval::range(4.0, 9.0)),
            Interval::Range { lo: 1.0, hi: 9.0 }
        );
        assert!(r.contains(1.0) && r.contains(5.0) && !r.contains(5.5));
        assert!(r.within(0.0, 5.0) && !r.within(2.0, 5.0));
        assert!(r.disjoint_from(-3.0, 0.5) && r.disjoint_from(6.0, 9.0));
        assert!(!r.disjoint_from(5.0, 9.0), "touching is not disjoint");
        assert!(!Interval::Top.disjoint_from(6.0, 9.0), "Top proves nothing");
        assert!(!Interval::Empty.disjoint_from(6.0, 9.0));
    }

    #[test]
    fn non_finite_bounds_degrade_to_top() {
        assert_eq!(Interval::range(f64::NAN, 1.0), Interval::Top);
        assert_eq!(Interval::range(0.0, f64::INFINITY), Interval::Top);
        assert_eq!(Interval::range(2.0, 1.0), Interval::Top);
    }

    #[test]
    fn support_join_and_membership() {
        let a = SupportDom::Set(["x".to_string()].into_iter().collect());
        let b = SupportDom::Set(["y".to_string()].into_iter().collect());
        let j = a.join(&b);
        assert!(j.contains("x") && j.contains("y") && !j.contains("z"));
        assert_eq!(a.join(&SupportDom::Top), SupportDom::Top);
    }

    #[test]
    fn state_defaults_to_top() {
        let mut s = AbsState::new();
        assert_eq!(s.col("unseen"), AbsCol::top());
        s.set(
            "a",
            AbsCol {
                interval: Interval::range(0.0, 1.0),
                null_lo: 0.0,
                null_hi: 0.0,
                support: SupportDom::Top,
            },
        );
        assert_eq!(s.col("a").interval, Interval::Range { lo: 0.0, hi: 1.0 });
        let proj = s.project(&["a".to_string(), "b".to_string()]);
        assert_eq!(proj.len(), 2);
        assert_eq!(proj[1].1, AbsCol::top());
    }
}
