//! Transfer functions: symbolic execution of repair transformations
//! over the abstract states of [`crate::domains`].
//!
//! The engine is deliberately decoupled from the core crate's
//! `Transform` type: the bridge lowers each transformation (and each
//! composed chain) to a sequence of [`TransferOp`]s that capture just
//! enough semantics for sound reasoning. Every op's transfer
//! over-approximates its concrete effect — the abstract post-state
//! contains the concrete post-column for *every* concrete column the
//! pre-state admits (property-tested end-to-end against the real
//! transform kernels in the suite).
//!
//! Three certificate families are built on top:
//!
//! - [`chain_is_identity`] — the chain provably leaves every frame
//!   admitted by the state bit-unchanged (rule L9);
//! - [`chains_pointwise_equal`] — two chains provably produce
//!   bit-identical output on every frame admitted by the state
//!   (rule L6's semantic half; the syntactic half — identical
//!   deterministic transforms — lives in the facts);
//! - [`violation_unreachable`] — after the chain, the violated
//!   parameter of the candidate's own profile provably stays above
//!   the `τ` margin (rule L7).
//!
//! All three only ever answer `true` on evidence; `Top` components
//! certify nothing.

use crate::domains::{AbsState, Interval, SupportDom};
use std::collections::BTreeSet;

/// The region of values a profile declares admissible for its
/// attribute, lowered from the core `Profile` parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueRegion {
    /// Non-null values must lie in `[lb, ub]` (numeric domain
    /// profiles). Violation counts out-of-range non-null values over
    /// all rows.
    Range {
        /// Inclusive lower bound.
        lb: f64,
        /// Inclusive upper bound.
        ub: f64,
    },
    /// Non-null values must be members of the set (categorical
    /// domain profiles). Violation counts foreign non-null values
    /// over all rows.
    Domain(BTreeSet<String>),
    /// The null fraction must not exceed `theta` (missing-value
    /// profiles). Violation is the thresholded excess
    /// `clamp((f − θ)/(1 − θ), 0, 1)`.
    NullFracAtMost(f64),
}

/// One symbolic step of a repair chain. Lowered from the core
/// `Transform` enum by the bridge; each variant documents the
/// concrete semantics its transfer over-approximates.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferOp {
    /// `x ↦ clamp(x, lb, ub)` on every non-null value (winsorize).
    Clamp {
        /// Written attribute.
        attr: String,
        /// Clamp lower bound.
        lb: f64,
        /// Clamp upper bound.
        ub: f64,
    },
    /// A monotone affine map of the observed range onto `[lb, ub]`
    /// (linear rescale). Never an identity certificate: even a
    /// same-range rescale is not bit-exact in floating point.
    AffineToRange {
        /// Written attribute.
        attr: String,
        /// Target lower bound.
        lb: f64,
        /// Target upper bound.
        ub: f64,
    },
    /// Values outside `values` are mapped onto members of `values`;
    /// values inside are untouched (order-preserving domain map).
    MapIntoDomain {
        /// Written attribute.
        attr: String,
        /// Target domain.
        values: BTreeSet<String>,
    },
    /// Nulls are replaced by a statistic of the non-null values
    /// (mean/mode), which always lies in the observed hull/support;
    /// non-null values are untouched. No-op on an all-null column
    /// (no statistic to fill with).
    FillNulls {
        /// Written attribute.
        attr: String,
    },
    /// Outliers under a refit detector are clamped to the detector
    /// bounds or replaced by a central statistic of the inliers —
    /// either way the result stays inside the observed hull.
    BoundOutliers {
        /// Written attribute.
        attr: String,
    },
    /// Text values are edited to match a pattern: the support is
    /// unknown afterwards.
    RepairPattern {
        /// Written attribute.
        attr: String,
    },
    /// The column's values are permuted (dependence-breaking
    /// shuffle): the value multiset — hence interval, support, and
    /// null fraction — is preserved.
    PermuteValues {
        /// Written attribute.
        attr: String,
    },
    /// Values are perturbed by data-dependent noise (decorrelation,
    /// residualization): the interval is lost, nulls are preserved.
    Perturb {
        /// Written attribute.
        attr: String,
    },
    /// Rows are re-sampled from the existing rows (selectivity
    /// repair): every column keeps its interval and support (values
    /// come from existing rows), but per-column null *fractions* can
    /// move anywhere in `(0, 1)` bounds.
    ResampleRows,
    /// The inner op applies only to a predicate-selected subset of
    /// rows: the post-state is the join of the identity and the
    /// inner transfer.
    Guarded(Box<TransferOp>),
}

impl TransferOp {
    /// The attribute this op writes, when it is column-local.
    pub fn written_attr(&self) -> Option<&str> {
        match self {
            TransferOp::Clamp { attr, .. }
            | TransferOp::AffineToRange { attr, .. }
            | TransferOp::MapIntoDomain { attr, .. }
            | TransferOp::FillNulls { attr }
            | TransferOp::BoundOutliers { attr }
            | TransferOp::RepairPattern { attr }
            | TransferOp::PermuteValues { attr }
            | TransferOp::Perturb { attr } => Some(attr),
            TransferOp::ResampleRows => None,
            TransferOp::Guarded(inner) => inner.written_attr(),
        }
    }
}

/// Apply one op to `state` in place.
pub fn transfer(state: &mut AbsState, op: &TransferOp) {
    match op {
        TransferOp::Clamp { attr, lb, ub } => {
            let col = state.col_mut(attr);
            col.interval = match col.interval {
                Interval::Empty => Interval::Empty,
                // clamp maps any input into [lb, ub]; values already
                // inside a tighter observed range stay put, so the
                // post-range is the intersection-or-clamp hull.
                Interval::Range { lo, hi } => {
                    Interval::range(lo.clamp(*lb, *ub), hi.clamp(*lb, *ub))
                }
                Interval::Top => Interval::range(*lb, *ub),
            };
        }
        TransferOp::AffineToRange { attr, lb, ub } => {
            let col = state.col_mut(attr);
            col.interval = match col.interval {
                Interval::Empty => Interval::Empty,
                // The map sends observed min→lb and max→ub
                // monotonically; a degenerate observed range centers
                // on the midpoint, which is also inside [lb, ub].
                _ => Interval::range(*lb, *ub),
            };
        }
        TransferOp::MapIntoDomain { attr, values } => {
            let col = state.col_mut(attr);
            col.support = match &col.support {
                SupportDom::Set(s) if s.is_empty() => SupportDom::Set(BTreeSet::new()),
                // In-domain values stay; foreign values land on
                // members of the target domain.
                SupportDom::Set(s) => SupportDom::Set(
                    s.intersection(values)
                        .cloned()
                        .chain(values.iter().cloned())
                        .collect(),
                ),
                SupportDom::Top => SupportDom::Top,
            };
        }
        TransferOp::FillNulls { attr } => {
            let col = state.col_mut(attr);
            if col.null_hi <= 0.0 || col.null_lo >= 1.0 {
                // Nothing to fill, or certainly nothing to fill
                // *with* (the concrete kernel no-ops on an all-null
                // column).
            } else if col.null_hi < 1.0 {
                // Every admitted column has a non-null statistic to
                // fill with: all nulls are replaced.
                col.null_lo = 0.0;
                col.null_hi = 0.0;
            } else {
                // The band admits both an all-null column (fill
                // no-ops, fraction stays 1) and a partial one (fill
                // zeroes it): keep both outcomes admissible.
                col.null_lo = 0.0;
            }
            // Interval/support preserved: the fill value is the mean
            // (inside the hull; Int rounding stays inside an integral
            // hull) or the mode (a member of the support).
        }
        TransferOp::BoundOutliers { .. } => {
            // Clamping to refit detector bounds or replacing with a
            // central statistic of the inliers keeps every value
            // inside the observed hull (Int rounding stays inside an
            // integral hull): interval, support, and nulls survive.
        }
        TransferOp::RepairPattern { attr } => {
            state.col_mut(attr).support = SupportDom::Top;
        }
        TransferOp::PermuteValues { .. } => {
            // Multiset-preserving: interval, support, and null
            // fraction all survive.
        }
        TransferOp::Perturb { attr } => {
            let col = state.col_mut(attr);
            col.interval = Interval::Top;
        }
        TransferOp::ResampleRows => {
            let attrs: Vec<String> = state.attrs().map(str::to_string).collect();
            for attr in attrs {
                let col = state.col_mut(&attr);
                // Values come from existing rows, so interval and
                // support are preserved — but the null *fraction*
                // depends on which rows survive.
                if col.null_hi > 0.0 {
                    col.null_lo = 0.0;
                    col.null_hi = 1.0;
                }
            }
        }
        TransferOp::Guarded(inner) => {
            let pre = state.clone();
            transfer(state, inner);
            if let Some(attr) = inner.written_attr() {
                let joined = pre.col(attr).join(&state.col(attr));
                state.set(attr, joined);
            } else {
                // A global inner op under a guard: join every column.
                let attrs: Vec<String> = pre.attrs().map(str::to_string).collect();
                for attr in attrs {
                    let joined = pre.col(&attr).join(&state.col(&attr));
                    state.set(&attr, joined);
                }
            }
        }
    }
}

/// Run a whole chain, returning the post-state.
pub fn apply_chain(seed: &AbsState, ops: &[TransferOp]) -> AbsState {
    let mut state = seed.clone();
    for op in ops {
        transfer(&mut state, op);
    }
    state
}

/// Is `op` provably the identity on every concrete frame `state`
/// admits? Monotone in the abstraction: widening any component can
/// only flip `true` to `false`.
fn op_is_identity(state: &AbsState, op: &TransferOp) -> bool {
    match op {
        TransferOp::Clamp { attr, lb, ub } => state.col(attr).interval.within(*lb, *ub),
        // A rescale recomputes every value through an affine map;
        // even when the target range equals the observed range the
        // round-trip is not bit-exact.
        TransferOp::AffineToRange { .. } => false,
        TransferOp::MapIntoDomain { attr, values } => match &state.col(attr).support {
            // The order-preserving map rewrites only foreign values.
            SupportDom::Set(s) => s.is_subset(values),
            SupportDom::Top => false,
        },
        TransferOp::FillNulls { attr } => {
            let col = state.col(attr);
            // Nothing to fill — or nothing to fill with.
            col.null_hi <= 0.0 || col.null_lo >= 1.0
        }
        // Refit detectors and pattern/noise/permutation repairs have
        // no static identity certificate.
        TransferOp::BoundOutliers { .. }
        | TransferOp::RepairPattern { .. }
        | TransferOp::PermuteValues { .. }
        | TransferOp::Perturb { .. }
        | TransferOp::ResampleRows => false,
        // If the inner op is the identity on the whole column, it is
        // the identity on any predicate-selected subset of it.
        TransferOp::Guarded(inner) => op_is_identity(state, inner),
    }
}

/// Is the whole chain provably the identity on every frame `state`
/// admits? Each op is checked against the *same* state: once an op
/// is the identity the state is unchanged for the next.
pub fn chain_is_identity(state: &AbsState, ops: &[TransferOp]) -> bool {
    !ops.is_empty() && ops.iter().all(|op| op_is_identity(state, op))
}

/// Do two chains provably produce bit-identical output on every
/// frame `state` admits? This is the *semantic* L6 certificate for
/// chains that are not syntactically equal: currently a single
/// pointwise rule — two clamps on the same attribute whose bounds
/// act identically on the whole observed interval. (Syntactic
/// equality of deterministic transforms is certified upstream via
/// the facts' transform key.)
pub fn chains_pointwise_equal(state: &AbsState, a: &[TransferOp], b: &[TransferOp]) -> bool {
    let (
        [TransferOp::Clamp {
            attr: aa,
            lb: alb,
            ub: aub,
        }],
        [TransferOp::Clamp {
            attr: ba,
            lb: blb,
            ub: bub,
        }],
    ) = (a, b)
    else {
        return false;
    };
    if aa != ba {
        return false;
    }
    let Interval::Range { lo, hi } = state.col(aa).interval else {
        return false;
    };
    // clamp(x, l1, u1) == clamp(x, l2, u2) for every x in [lo, hi]
    // iff each bound either matches exactly or is inactive on the
    // whole interval for both.
    let lower_equal = (alb <= &lo && blb <= &lo) || alb.to_bits() == blb.to_bits();
    let upper_equal = (aub >= &hi && bub >= &hi) || aub.to_bits() == bub.to_bits();
    lower_equal && upper_equal
}

/// After the chain, is the candidate's own profile provably still
/// violated beyond the `tau` margin on every frame `state` admits?
///
/// The caller passes the *post*-state of the chain. Violation
/// semantics mirror the core's `violation()`:
///
/// - region profiles count out-of-region non-null values over all
///   rows, so a post-interval (or post-support) disjoint from the
///   region pins the violation at ≥ `1 − null_hi`;
/// - missing profiles use the thresholded excess
///   `(f − θ)/(1 − θ)`, so a null floor above `θ` pins it at
///   ≥ `(null_lo − θ)/(1 − θ)`.
pub fn violation_unreachable(post: &AbsState, attr: &str, region: &ValueRegion, tau: f64) -> bool {
    let col = post.col(attr);
    match region {
        ValueRegion::Range { lb, ub } => {
            col.interval.disjoint_from(*lb, *ub) && 1.0 - col.null_hi > tau
        }
        ValueRegion::Domain(values) => match &col.support {
            SupportDom::Set(s) => {
                !s.is_empty() && s.iter().all(|v| !values.contains(v)) && 1.0 - col.null_hi > tau
            }
            SupportDom::Top => false,
        },
        ValueRegion::NullFracAtMost(theta) => {
            *theta < 1.0 && (col.null_lo - theta) / (1.0 - theta) > tau
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::AbsCol;

    fn seeded(interval: Interval, null: f64, support: SupportDom) -> AbsState {
        let mut s = AbsState::new();
        s.set(
            "a",
            AbsCol {
                interval,
                null_lo: null,
                null_hi: null,
                support,
            },
        );
        s
    }

    #[test]
    fn clamp_transfer_and_identity() {
        let s = seeded(Interval::range(2.0, 8.0), 0.0, SupportDom::Top);
        let clamp = TransferOp::Clamp {
            attr: "a".into(),
            lb: 0.0,
            ub: 5.0,
        };
        let post = apply_chain(&s, std::slice::from_ref(&clamp));
        assert_eq!(post.col("a").interval, Interval::Range { lo: 2.0, hi: 5.0 });
        assert!(!chain_is_identity(&s, std::slice::from_ref(&clamp)));
        let loose = TransferOp::Clamp {
            attr: "a".into(),
            lb: 0.0,
            ub: 10.0,
        };
        assert!(chain_is_identity(&s, &[loose]));
        // An empty interval (all-null column) makes any clamp an
        // identity.
        let empty = seeded(Interval::Empty, 1.0, SupportDom::Top);
        assert!(chain_is_identity(
            &empty,
            &[TransferOp::Clamp {
                attr: "a".into(),
                lb: 0.0,
                ub: 1.0
            }]
        ));
    }

    #[test]
    fn fill_nulls_identity_needs_zero_or_total_nulls() {
        let none = seeded(Interval::range(0.0, 1.0), 0.0, SupportDom::Top);
        let some = seeded(Interval::range(0.0, 1.0), 0.3, SupportDom::Top);
        let all = seeded(Interval::Empty, 1.0, SupportDom::Top);
        let fill = TransferOp::FillNulls { attr: "a".into() };
        assert!(chain_is_identity(&none, std::slice::from_ref(&fill)));
        assert!(!chain_is_identity(&some, std::slice::from_ref(&fill)));
        assert!(chain_is_identity(&all, std::slice::from_ref(&fill)));
        let post = apply_chain(&some, &[fill]);
        assert_eq!(post.col("a").null_hi, 0.0);
        assert_eq!(post.col("a").interval, Interval::Range { lo: 0.0, hi: 1.0 });
    }

    #[test]
    fn map_into_domain_identity_iff_support_subset() {
        let dom: BTreeSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let inside = seeded(
            Interval::Empty,
            0.0,
            SupportDom::Set(["x".to_string()].into_iter().collect()),
        );
        let outside = seeded(
            Interval::Empty,
            0.0,
            SupportDom::Set(["z".to_string()].into_iter().collect()),
        );
        let map = TransferOp::MapIntoDomain {
            attr: "a".into(),
            values: dom.clone(),
        };
        assert!(chain_is_identity(&inside, std::slice::from_ref(&map)));
        assert!(!chain_is_identity(&outside, std::slice::from_ref(&map)));
        let post = apply_chain(&outside, &[map]);
        match post.col("a").support {
            SupportDom::Set(s) => assert_eq!(s, dom),
            SupportDom::Top => panic!("support lost"),
        }
    }

    #[test]
    fn guarded_identity_recurses() {
        let s = seeded(Interval::range(0.0, 1.0), 0.0, SupportDom::Top);
        let inner = TransferOp::Clamp {
            attr: "a".into(),
            lb: 0.0,
            ub: 2.0,
        };
        assert!(chain_is_identity(
            &s,
            &[TransferOp::Guarded(Box::new(inner))]
        ));
        // A guarded *effective* op joins with the identity: the
        // post-interval must still contain untouched values.
        let cut = TransferOp::Guarded(Box::new(TransferOp::Clamp {
            attr: "a".into(),
            lb: 0.5,
            ub: 2.0,
        }));
        let post = apply_chain(&s, std::slice::from_ref(&cut));
        assert_eq!(post.col("a").interval, Interval::Range { lo: 0.0, hi: 1.0 });
        assert!(!chain_is_identity(&s, &[cut]));
    }

    #[test]
    fn pointwise_clamp_equivalence() {
        let s = seeded(Interval::range(30.0, 45.0), 0.0, SupportDom::Top);
        let clamp = |lb: f64, ub: f64| {
            vec![TransferOp::Clamp {
                attr: "a".into(),
                lb,
                ub,
            }]
        };
        // Both upper bounds inactive on [30, 45]: equivalent.
        assert!(chains_pointwise_equal(
            &s,
            &clamp(0.0, 50.0),
            &clamp(0.0, 60.0)
        ));
        // One bound cuts into the interval: not equivalent.
        assert!(!chains_pointwise_equal(
            &s,
            &clamp(0.0, 40.0),
            &clamp(0.0, 60.0)
        ));
        // Identical active bounds: equivalent.
        assert!(chains_pointwise_equal(
            &s,
            &clamp(0.0, 40.0),
            &clamp(0.0, 40.0)
        ));
        // Different attributes never are.
        let other = vec![TransferOp::Clamp {
            attr: "b".into(),
            lb: 0.0,
            ub: 50.0,
        }];
        assert!(!chains_pointwise_equal(&s, &clamp(0.0, 50.0), &other));
    }

    #[test]
    fn unreachability_certificates() {
        // Numeric region: post-interval [3, 15] disjoint from [0, 1],
        // no nulls → violation pinned at 1 > τ.
        let post = seeded(Interval::range(3.0, 15.0), 0.0, SupportDom::Top);
        let region = ValueRegion::Range { lb: 0.0, ub: 1.0 };
        assert!(violation_unreachable(&post, "a", &region, 0.2));
        // Overlapping interval proves nothing.
        let post = seeded(Interval::range(0.5, 15.0), 0.0, SupportDom::Top);
        assert!(!violation_unreachable(&post, "a", &region, 0.2));
        // High null ceiling weakens the bound below τ.
        let mut nully = AbsState::new();
        nully.set(
            "a",
            AbsCol {
                interval: Interval::range(3.0, 15.0),
                null_lo: 0.0,
                null_hi: 0.9,
                support: SupportDom::Top,
            },
        );
        assert!(!violation_unreachable(&nully, "a", &region, 0.2));
        // Categorical region: disjoint non-empty support certifies.
        let dom: BTreeSet<String> = ["-1", "1"].iter().map(|s| s.to_string()).collect();
        let post = seeded(
            Interval::Empty,
            0.0,
            SupportDom::Set(["0", "4"].iter().map(|s| s.to_string()).collect()),
        );
        assert!(violation_unreachable(
            &post,
            "a",
            &ValueRegion::Domain(dom.clone()),
            0.2
        ));
        let post = seeded(
            Interval::Empty,
            0.0,
            SupportDom::Set(["0", "1"].iter().map(|s| s.to_string()).collect()),
        );
        assert!(!violation_unreachable(
            &post,
            "a",
            &ValueRegion::Domain(dom),
            0.2
        ));
        // Missing region: null floor above θ by more than the τ
        // excess certifies.
        let post = seeded(Interval::Empty, 0.8, SupportDom::Top);
        assert!(violation_unreachable(
            &post,
            "a",
            &ValueRegion::NullFracAtMost(0.1),
            0.2
        ));
        // θ = 0.7: excess (0.8 − 0.7)/0.3 ≈ 0.33 stays under a wider
        // τ margin — not certifiable.
        assert!(!violation_unreachable(
            &post,
            "a",
            &ValueRegion::NullFracAtMost(0.7),
            0.5
        ));
    }

    #[test]
    fn resample_preserves_hull_but_not_null_fraction() {
        let mut s = AbsState::new();
        s.set(
            "a",
            AbsCol {
                interval: Interval::range(1.0, 2.0),
                null_lo: 0.1,
                null_hi: 0.1,
                support: SupportDom::Top,
            },
        );
        let post = apply_chain(&s, &[TransferOp::ResampleRows]);
        let col = post.col("a");
        assert_eq!(col.interval, Interval::Range { lo: 1.0, hi: 2.0 });
        assert_eq!((col.null_lo, col.null_hi), (0.0, 1.0));
    }
}
