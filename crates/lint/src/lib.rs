//! # dp_lint — static analysis of DataPrism PVT pipelines
//!
//! DataPrism pays one oracle query per intervention; a malformed or
//! provably futile candidate PVT burns queries the benefit score was
//! designed to save. This crate analyzes a diagnosis *before any
//! oracle query*: a [`Diagnostics`] pass over the candidate set, the
//! [`dp_frame::Schema`], and the PVT-dependency graph, in the spirit
//! of task-aware static pipeline checking (PrismaDV) and no-fix
//! pruning certificates (Chakarov et al.).
//!
//! ## Rules
//!
//! | ID | Name | Severity | Catches |
//! |----|------|----------|---------|
//! | L1 | schema typing | Error | reads/writes of missing or dtype-incompatible attributes |
//! | L2 | violation–transform consistency | Error | fixes that provably cannot move their profile's parameter toward `D_pass` |
//! | L3 | no-op/idempotence | Error/Warn | transforms fixing no violating tuples on `D_fail` (coverage 0) |
//! | L4 | conflict detection | Warn | two candidates writing one attribute with incompatible targets |
//! | L5 | graph sanity | Warn/Info | self-loops, dangling edges, cycles, disconnected components |
//! | L6 | subsumption/equivalence | Info | candidate classes applying the bit-identical repair — one oracle charge per class |
//! | L7 | τ-unreachability | Error | fixes that provably keep their own profile violated beyond the τ margin |
//! | L8 | commutation/independence | Info | candidate pairs with disjoint deterministic footprints — a fact table for the planner |
//! | L9 | abstract no-op | Error | transformation chains provably the identity on the observed abstract state |
//!
//! L1–L5 reason over per-candidate facts; L6–L9 run an
//! abstract-interpretation pass ([`domains`], [`absint`]): per-column
//! abstract states (numeric intervals, null-fraction bounds,
//! categorical support sets) seeded exactly from `D_fail`, pushed
//! through transfer functions that symbolically execute each
//! transformation chain.
//!
//! The analyzer is deliberately decoupled from the runtime's
//! `Profile`/`Transform` enums: callers lower each candidate into a
//! [`CandidateFacts`] record and hand [`analyze`] the schema, the
//! seeded abstract state, the `τ` margin, the facts, and the
//! dependency edges. Emitted diagnostics are sorted by
//! `(rule, severity, pvt_ids, attr, message)` — a total, deterministic
//! order, so reports and golden files are stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod domains;
mod facts;
mod graph;
mod rules;

pub use facts::{AttrRequirement, CandidateFacts, TypeClass, WriteTarget};
pub use graph::check_graph;
pub use rules::{
    check_abstract_noop, check_commutation, check_noop, check_schema_typing, check_subsumption,
    check_tau_unreachable, check_transform_consistency, check_write_conflicts, CommutationResult,
    SubsumptionResult,
};

use dp_frame::Schema;
use std::collections::BTreeSet;
use std::fmt;

/// How bad a diagnostic is. The `Ord` order (Error < Warn < Info) is
/// the report order: most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The candidate is provably broken or futile; `Lint::Prune`
    /// drops Error-level candidates before ranking.
    Error,
    /// Suspicious but not provably futile; never pruned.
    Warn,
    /// Structural information; never pruned.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        })
    }
}

/// The named lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// L1 — schema typing of attribute reads/writes.
    SchemaTyping,
    /// L2 — violation–transform consistency.
    TransformConsistency,
    /// L3 — no-op/idempotence detection.
    NoOpTransform,
    /// L4 — incompatible-write conflict detection.
    WriteConflict,
    /// L5 — dependency-graph sanity.
    GraphSanity,
    /// L6 — subsumption/equivalence classes.
    Subsumption,
    /// L7 — τ-unreachability of the candidate's own profile.
    TauUnreachable,
    /// L8 — commutation/independence facts.
    Commutation,
    /// L9 — abstract no-op (fixpoint) detection.
    AbstractNoOp,
}

impl RuleId {
    /// The rule's short code, `"L1"` … `"L9"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::SchemaTyping => "L1",
            RuleId::TransformConsistency => "L2",
            RuleId::NoOpTransform => "L3",
            RuleId::WriteConflict => "L4",
            RuleId::GraphSanity => "L5",
            RuleId::Subsumption => "L6",
            RuleId::TauUnreachable => "L7",
            RuleId::Commutation => "L8",
            RuleId::AbstractNoOp => "L9",
        }
    }

    /// The rule's human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::SchemaTyping => "schema typing",
            RuleId::TransformConsistency => "violation-transform consistency",
            RuleId::NoOpTransform => "no-op transform",
            RuleId::WriteConflict => "write conflict",
            RuleId::GraphSanity => "graph sanity",
            RuleId::Subsumption => "subsumption/equivalence",
            RuleId::TauUnreachable => "tau-unreachability",
            RuleId::Commutation => "commutation/independence",
            RuleId::AbstractNoOp => "abstract no-op",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding. Field order is the deterministic sort order
/// (`Ord` is derived): rule, then severity, then the involved ids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// The candidate ids involved, ascending.
    pub pvt_ids: Vec<usize>,
    /// The attribute at fault, when the finding is attribute-scoped.
    pub attr: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] ", self.rule, self.severity)?;
        if !self.pvt_ids.is_empty() {
            let ids: Vec<String> = self.pvt_ids.iter().map(|i| i.to_string()).collect();
            write!(f, "PVT {}: ", ids.join(", "))?;
        }
        f.write_str(&self.message)
    }
}

/// The machine-readable result of a lint pass, surfaced in
/// `dataprism::Explanation` and the markdown report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// Whether a lint pass ran at all (`false` under `Lint::Off`).
    pub analyzed: bool,
    /// The findings, in the deterministic `(rule, severity, ids,
    /// attr, message)` order.
    pub diagnostics: Vec<Diagnostic>,
    /// Ids of candidates dropped before ranking (`Lint::Prune` only),
    /// ascending. Empty under `Off`/`Report`.
    pub pruned: Vec<usize>,
    /// L6 equivalence classes (size ≥ 2), each sorted ascending with
    /// the representative first; classes sorted by representative.
    pub equivalence: Vec<Vec<usize>>,
    /// Ids dropped because an equivalence-class sibling already
    /// carries their oracle charge (`Lint::Prune` only), ascending.
    /// Disjoint from `pruned` (which holds the `Error`-level drops).
    pub subsumed: Vec<usize>,
    /// L8 fact table: every certified commuting candidate pair,
    /// `(low id, high id)`, sorted.
    pub commuting: Vec<(usize, usize)>,
}

impl Diagnostics {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// All candidate ids involved in an `Error`-level finding — the
    /// prune set.
    pub fn error_pvt_ids(&self) -> BTreeSet<usize> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .flat_map(|d| d.pvt_ids.iter().copied())
            .collect()
    }

    /// The findings a given rule produced.
    pub fn for_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// All candidate ids with an L7 (τ-unreachability) finding.
    pub fn unreachable_ids(&self) -> BTreeSet<usize> {
        self.diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::TauUnreachable)
            .flat_map(|d| d.pvt_ids.iter().copied())
            .collect()
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.analyzed {
            return f.write_str("lint off");
        }
        write!(
            f,
            "{} error(s) / {} warning(s) / {} info",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )?;
        if !self.pruned.is_empty() {
            write!(f, ", {} pruned", self.pruned.len())?;
        }
        if !self.subsumed.is_empty() {
            write!(f, ", {} subsumed", self.subsumed.len())?;
        }
        Ok(())
    }
}

/// Run every rule over the candidate facts, the schema, the seeded
/// abstract state of `D_fail`, the acceptable-malfunction margin
/// `tau`, and the dependency edges. The returned diagnostics are
/// deterministically ordered and `analyzed` is set; `pruned` and
/// `subsumed` are left empty (pruning is the runtime's decision, not
/// the analyzer's), while `equivalence` and `commuting` carry the
/// L6/L8 fact tables.
pub fn analyze(
    schema: &Schema,
    state: &domains::AbsState,
    tau: f64,
    candidates: &[CandidateFacts],
    edges: &[(usize, usize)],
) -> Diagnostics {
    let mut diagnostics = Vec::new();
    for c in candidates {
        diagnostics.extend(rules::check_schema_typing(schema, c));
        diagnostics.extend(rules::check_transform_consistency(c));
        diagnostics.extend(rules::check_noop(c));
    }
    diagnostics.extend(rules::check_write_conflicts(candidates));
    let ids: Vec<usize> = candidates.iter().map(|c| c.id).collect();
    diagnostics.extend(graph::check_graph(&ids, edges));
    let subsumption = rules::check_subsumption(state, candidates);
    diagnostics.extend(subsumption.diagnostics);
    diagnostics.extend(rules::check_tau_unreachable(state, tau, candidates));
    let commutation = rules::check_commutation(candidates);
    diagnostics.extend(commutation.diagnostics);
    diagnostics.extend(rules::check_abstract_noop(state, candidates));
    diagnostics.sort();
    diagnostics.dedup();
    Diagnostics {
        analyzed: true,
        diagnostics,
        pruned: Vec::new(),
        equivalence: subsumption.classes,
        subsumed: Vec::new(),
        commuting: commutation.pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::{DType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DType::Int),
            Field::new("target", DType::Categorical),
        ])
        .unwrap()
    }

    #[test]
    fn empty_candidate_set_is_clean() {
        let d = analyze(&schema(), &domains::AbsState::new(), 0.2, &[], &[]);
        assert!(d.analyzed);
        assert!(d.is_clean());
        assert!(d.error_pvt_ids().is_empty());
        assert_eq!(d.to_string(), "0 error(s) / 0 warning(s) / 0 info");
    }

    #[test]
    fn single_attribute_schema_degenerate_input() {
        // One-column schema, one healthy candidate touching it: clean.
        let schema = Schema::new(vec![Field::new("x", DType::Float)]).unwrap();
        let mut c = CandidateFacts::new(0, "domain_num(x)");
        c.reads.push(AttrRequirement::new("x", TypeClass::Numeric));
        c.writes.push(AttrRequirement::new("x", TypeClass::Numeric));
        c.profile_attributes = vec!["x".into()];
        let d = analyze(
            &schema,
            &domains::AbsState::new(),
            0.2,
            std::slice::from_ref(&c),
            &[],
        );
        assert!(d.is_clean(), "{:?}", d.diagnostics);
        // The same candidate against an empty requirement on a
        // missing column errors.
        c.reads.push(AttrRequirement::new("y", TypeClass::Any));
        let d = analyze(&schema, &domains::AbsState::new(), 0.2, &[c], &[]);
        assert_eq!(d.count(Severity::Error), 1);
        assert_eq!(d.error_pvt_ids().into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn ordering_is_deterministic_and_rule_major() {
        // Build candidates triggering L1, L2, L3, and L5 in reverse
        // id order; the output must come back sorted rule-major.
        let mut broken_schema = CandidateFacts::new(9, "domain_cat(missing)");
        broken_schema
            .reads
            .push(AttrRequirement::new("missing", TypeClass::Textual));
        let mut noop = CandidateFacts::new(1, "domain_num(age)");
        noop.profile_attributes = vec!["age".into()];
        noop.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        noop.coverage_on_fail = 0.0;
        noop.coverage_is_exact = true;
        let mut disjoint = CandidateFacts::new(4, "domain_num(age)");
        disjoint.profile_attributes = vec!["age".into()];
        disjoint
            .writes
            .push(AttrRequirement::new("target", TypeClass::Textual));
        let candidates = vec![broken_schema, noop, disjoint];
        let state = domains::AbsState::new();
        let d1 = analyze(&schema(), &state, 0.2, &candidates, &[(1, 1)]);
        let d2 = analyze(&schema(), &state, 0.2, &candidates, &[(1, 1)]);
        assert_eq!(d1, d2, "analysis is a pure function of its inputs");
        let rules: Vec<RuleId> = d1.diagnostics.iter().map(|d| d.rule).collect();
        let mut sorted = rules.clone();
        sorted.sort();
        assert_eq!(rules, sorted, "rule-major order");
        assert!(rules.contains(&RuleId::SchemaTyping));
        assert!(rules.contains(&RuleId::TransformConsistency));
        assert!(rules.contains(&RuleId::NoOpTransform));
        assert!(rules.contains(&RuleId::GraphSanity));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(RuleId::SchemaTyping.code(), "L1");
        assert_eq!(RuleId::GraphSanity.code(), "L5");
        assert_eq!(RuleId::NoOpTransform.name(), "no-op transform");
        let d = Diagnostic {
            rule: RuleId::NoOpTransform,
            severity: Severity::Error,
            pvt_ids: vec![2],
            attr: Some("len".into()),
            message: "certified no-op".into(),
        };
        assert_eq!(d.to_string(), "[L3/error] PVT 2: certified no-op");
        let mut diags = Diagnostics {
            analyzed: true,
            diagnostics: vec![d],
            pruned: vec![2],
            ..Default::default()
        };
        assert_eq!(
            diags.to_string(),
            "1 error(s) / 0 warning(s) / 0 info, 1 pruned"
        );
        diags.subsumed = vec![5, 6];
        assert_eq!(
            diags.to_string(),
            "1 error(s) / 0 warning(s) / 0 info, 1 pruned, 2 subsumed"
        );
        diags.subsumed.clear();
        diags.analyzed = false;
        assert_eq!(diags.to_string(), "lint off");
    }
}
