//! Rules L1–L4: per-candidate and cross-candidate lints.
//!
//! Each rule is an individually testable function returning the
//! diagnostics it found; [`crate::analyze`] composes them and imposes
//! the deterministic global ordering.

use crate::facts::CandidateFacts;
use crate::{Diagnostic, RuleId, Severity};
use dp_frame::Schema;
use std::collections::BTreeMap;

/// L1 — schema typing: every attribute the candidate reads or writes
/// must exist in the schema, and its declared dtype must admit the
/// access's type class. Violations are `Error`s: the transformation
/// would fail (missing column) or act on data it cannot interpret.
pub fn check_schema_typing(schema: &Schema, c: &CandidateFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (kind, reqs) in [("reads", &c.reads), ("writes", &c.writes)] {
        for req in reqs {
            let message = match schema.field(&req.attr) {
                None => format!(
                    "{} ({kind} `{}`): attribute is not in the schema {}",
                    c.label, req.attr, schema
                ),
                Some(field) if !req.ty.admits(field.dtype) => format!(
                    "{} ({kind} `{}`): declared dtype {} does not admit the required {} access",
                    c.label, req.attr, field.dtype, req.ty
                ),
                Some(_) => continue,
            };
            out.push(Diagnostic {
                rule: RuleId::SchemaTyping,
                severity: Severity::Error,
                pvt_ids: vec![c.id],
                attr: Some(req.attr.clone()),
                message,
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

/// L2 — violation–transform consistency: the transformation must be
/// able to move the profile's parameter toward the passing dataset's
/// value. Two provable failures, both `Error`s:
///
/// * the transformation writes none of the attributes the profile
///   constrains (a local transform on disjoint columns cannot change
///   the violation), or
/// * `V(D_fail, P) = 0` — the failing dataset already satisfies the
///   profile (e.g. a clamp whose bounds already contain the observed
///   range), so the profile cannot be a cause and the fix has nothing
///   to move.
pub fn check_transform_consistency(c: &CandidateFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !c.rewrites_all_attributes && !c.profile_attributes.is_empty() {
        let touches_profile = c
            .writes
            .iter()
            .any(|w| c.profile_attributes.contains(&w.attr));
        if !touches_profile {
            let writes: Vec<&str> = c.writes.iter().map(|w| w.attr.as_str()).collect();
            out.push(Diagnostic {
                rule: RuleId::TransformConsistency,
                severity: Severity::Error,
                pvt_ids: vec![c.id],
                attr: c.profile_attributes.first().cloned(),
                message: format!(
                    "{}: fix writes [{}] but the cause profile constrains [{}]; \
                     the transformation provably cannot move the profile parameter",
                    c.label,
                    writes.join(", "),
                    c.profile_attributes.join(", ")
                ),
            });
        }
    }
    if c.profile_violation_on_fail == 0.0 {
        out.push(Diagnostic {
            rule: RuleId::TransformConsistency,
            severity: Severity::Error,
            pvt_ids: vec![c.id],
            attr: c.profile_attributes.first().cloned(),
            message: format!(
                "{}: D_fail already satisfies the profile (violation 0), so it cannot \
                 be a cause and its repair is a certified no-op",
                c.label
            ),
        });
    }
    out
}

/// L3 — no-op/idempotence: a transformation whose coverage on
/// `D_fail` is zero fixes no violating tuples. When the coverage
/// estimate is exact for the transformation kind, applying it
/// provably returns the dataset unchanged — an `Error` (the oracle
/// query is certainly wasted); otherwise a `Warn`.
pub fn check_noop(c: &CandidateFacts) -> Vec<Diagnostic> {
    if c.coverage_on_fail != 0.0 {
        return Vec::new();
    }
    let (severity, certainty) = if c.coverage_is_exact {
        (
            Severity::Error,
            "certified no-op: applying it returns D_fail unchanged",
        )
    } else {
        (
            Severity::Warn,
            "estimated no-op: the coverage estimate is not exact for this transformation kind",
        )
    };
    vec![Diagnostic {
        rule: RuleId::NoOpTransform,
        severity,
        pvt_ids: vec![c.id],
        attr: c.writes.first().map(|w| w.attr.clone()),
        message: format!(
            "{}: transformation fixes no violating tuples on D_fail (coverage 0) — {certainty}",
            c.label
        ),
    }]
}

/// L4 — conflict detection: two candidates writing the same attribute
/// with incompatible targets (disjoint ranges or disjoint domains).
/// Each is individually valid, so this is a `Warn`: group testing
/// must not compose them in one application, because the
/// later-applied transformation undoes the earlier one.
pub fn check_write_conflicts(candidates: &[CandidateFacts]) -> Vec<Diagnostic> {
    let mut by_attr: BTreeMap<&str, Vec<&CandidateFacts>> = BTreeMap::new();
    for c in candidates {
        if let Some((attr, _)) = &c.write_target {
            by_attr.entry(attr.as_str()).or_default().push(c);
        }
    }
    let mut out = Vec::new();
    for (attr, writers) in by_attr {
        for (i, a) in writers.iter().enumerate() {
            for b in writers.iter().skip(i + 1) {
                let (ta, tb) = (
                    &a.write_target.as_ref().expect("grouped by target").1,
                    &b.write_target.as_ref().expect("grouped by target").1,
                );
                if !ta.compatible_with(tb) {
                    let mut ids = vec![a.id, b.id];
                    ids.sort_unstable();
                    out.push(Diagnostic {
                        rule: RuleId::WriteConflict,
                        severity: Severity::Warn,
                        pvt_ids: ids,
                        attr: Some(attr.to_string()),
                        message: format!(
                            "{} and {} drive `{attr}` toward incompatible targets \
                             ({ta} vs {tb}); group testing must not compose them",
                            a.label, b.label
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::{AttrRequirement, TypeClass, WriteTarget};
    use dp_frame::{DType, Field, Schema};
    use std::collections::BTreeSet;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DType::Int),
            Field::new("target", DType::Categorical),
            Field::new("note", DType::Text),
        ])
        .unwrap()
    }

    // --- L1 ---

    #[test]
    fn l1_flags_missing_and_mistyped_attributes() {
        let mut c = CandidateFacts::new(7, "domain_cat(zip)");
        c.reads
            .push(AttrRequirement::new("zip", TypeClass::Textual));
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Textual));
        let diags = check_schema_typing(&schema(), &c);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(diags.iter().all(|d| d.rule == RuleId::SchemaTyping));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("not in the schema")));
        assert!(diags.iter().any(|d| d
            .message
            .contains("does not admit the required textual access")));
    }

    #[test]
    fn l1_accepts_well_typed_accesses() {
        let mut c = CandidateFacts::new(7, "domain_num(age)");
        c.reads
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        c.reads
            .push(AttrRequirement::new("target", TypeClass::Textual));
        c.reads.push(AttrRequirement::new("note", TypeClass::Any));
        assert!(check_schema_typing(&schema(), &c).is_empty());
    }

    // --- L2 ---

    #[test]
    fn l2_flags_fix_on_disjoint_attributes() {
        let mut c = CandidateFacts::new(3, "domain_num(age)");
        c.profile_attributes = vec!["age".into()];
        c.writes.push(AttrRequirement::new("note", TypeClass::Any));
        let diags = check_transform_consistency(&c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0]
            .message
            .contains("cannot move the profile parameter"));
    }

    #[test]
    fn l2_flags_already_satisfied_profile() {
        let mut c = CandidateFacts::new(3, "domain_num(age)");
        c.profile_attributes = vec!["age".into()];
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        c.profile_violation_on_fail = 0.0;
        let diags = check_transform_consistency(&c);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("violation 0"));
    }

    #[test]
    fn l2_accepts_consistent_candidates_and_global_rewrites() {
        let mut c = CandidateFacts::new(3, "domain_num(age)");
        c.profile_attributes = vec!["age".into()];
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        assert!(check_transform_consistency(&c).is_empty());
        // A row-resampling transform touches every column and is
        // always attribute-consistent.
        let mut g = CandidateFacts::new(4, "selectivity(age = 1)");
        g.profile_attributes = vec!["age".into()];
        g.rewrites_all_attributes = true;
        assert!(check_transform_consistency(&g).is_empty());
    }

    // --- L3 ---

    #[test]
    fn l3_certifies_exact_zero_coverage_as_error() {
        let mut c = CandidateFacts::new(5, "domain_num(age)");
        c.coverage_on_fail = 0.0;
        c.coverage_is_exact = true;
        let diags = check_noop(&c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("certified no-op"));
    }

    #[test]
    fn l3_warns_on_inexact_zero_coverage() {
        let mut c = CandidateFacts::new(5, "indep_chi2(a, b)");
        c.coverage_on_fail = 0.0;
        c.coverage_is_exact = false;
        let diags = check_noop(&c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn l3_accepts_positive_coverage() {
        let mut c = CandidateFacts::new(5, "domain_num(age)");
        c.coverage_on_fail = 0.25;
        c.coverage_is_exact = true;
        assert!(check_noop(&c).is_empty());
    }

    // --- L4 ---

    fn with_target(id: usize, attr: &str, target: WriteTarget) -> CandidateFacts {
        let mut c = CandidateFacts::new(id, format!("pvt{id}"));
        c.write_target = Some((attr.to_string(), target));
        c
    }

    #[test]
    fn l4_flags_disjoint_range_writers_of_one_attribute() {
        let a = with_target(1, "age", WriteTarget::Range { lb: 0.0, ub: 10.0 });
        let b = with_target(2, "age", WriteTarget::Range { lb: 50.0, ub: 60.0 });
        let diags = check_write_conflicts(&[a, b]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert_eq!(diags[0].pvt_ids, vec![1, 2]);
        assert_eq!(diags[0].attr.as_deref(), Some("age"));
    }

    #[test]
    fn l4_flags_disjoint_domain_writers() {
        let dom = |vals: &[&str]| {
            WriteTarget::Domain(vals.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>())
        };
        let a = with_target(1, "target", dom(&["-1", "1"]));
        let b = with_target(9, "target", dom(&["0", "4"]));
        let diags = check_write_conflicts(&[b, a]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pvt_ids, vec![1, 9], "ids sorted ascending");
    }

    #[test]
    fn l4_accepts_overlapping_targets_and_distinct_attributes() {
        let a = with_target(1, "age", WriteTarget::Range { lb: 0.0, ub: 10.0 });
        let b = with_target(2, "age", WriteTarget::Range { lb: 5.0, ub: 60.0 });
        let c = with_target(3, "len", WriteTarget::Range { lb: 99.0, ub: 99.5 });
        assert!(check_write_conflicts(&[a, b, c]).is_empty());
    }
}
