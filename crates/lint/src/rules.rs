//! Rules L1–L4 (per-candidate and cross-candidate fact lints) and
//! L6–L9 (abstract-interpretation lints over the seeded state).
//!
//! Each rule is an individually testable function returning the
//! diagnostics it found; [`crate::analyze`] composes them and imposes
//! the deterministic global ordering.

use crate::absint::{
    apply_chain, chain_is_identity, chains_pointwise_equal, violation_unreachable,
};
use crate::domains::AbsState;
use crate::facts::CandidateFacts;
use crate::{Diagnostic, RuleId, Severity};
use dp_frame::Schema;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// L1 — schema typing: every attribute the candidate reads or writes
/// must exist in the schema, and its declared dtype must admit the
/// access's type class. Violations are `Error`s: the transformation
/// would fail (missing column) or act on data it cannot interpret.
pub fn check_schema_typing(schema: &Schema, c: &CandidateFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (kind, reqs) in [("reads", &c.reads), ("writes", &c.writes)] {
        for req in reqs {
            let message = match schema.field(&req.attr) {
                None => format!(
                    "{} ({kind} `{}`): attribute is not in the schema {}",
                    c.label, req.attr, schema
                ),
                Some(field) if !req.ty.admits(field.dtype) => format!(
                    "{} ({kind} `{}`): declared dtype {} does not admit the required {} access",
                    c.label, req.attr, field.dtype, req.ty
                ),
                Some(_) => continue,
            };
            out.push(Diagnostic {
                rule: RuleId::SchemaTyping,
                severity: Severity::Error,
                pvt_ids: vec![c.id],
                attr: Some(req.attr.clone()),
                message,
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

/// L2 — violation–transform consistency: the transformation must be
/// able to move the profile's parameter toward the passing dataset's
/// value. Two provable failures, both `Error`s:
///
/// * the transformation writes none of the attributes the profile
///   constrains (a local transform on disjoint columns cannot change
///   the violation), or
/// * `V(D_fail, P) = 0` — the failing dataset already satisfies the
///   profile (e.g. a clamp whose bounds already contain the observed
///   range), so the profile cannot be a cause and the fix has nothing
///   to move.
pub fn check_transform_consistency(c: &CandidateFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !c.rewrites_all_attributes && !c.profile_attributes.is_empty() {
        let touches_profile = c
            .writes
            .iter()
            .any(|w| c.profile_attributes.contains(&w.attr));
        if !touches_profile {
            let writes: Vec<&str> = c.writes.iter().map(|w| w.attr.as_str()).collect();
            out.push(Diagnostic {
                rule: RuleId::TransformConsistency,
                severity: Severity::Error,
                pvt_ids: vec![c.id],
                attr: c.profile_attributes.first().cloned(),
                message: format!(
                    "{}: fix writes [{}] but the cause profile constrains [{}]; \
                     the transformation provably cannot move the profile parameter",
                    c.label,
                    writes.join(", "),
                    c.profile_attributes.join(", ")
                ),
            });
        }
    }
    if c.profile_violation_on_fail == 0.0 {
        out.push(Diagnostic {
            rule: RuleId::TransformConsistency,
            severity: Severity::Error,
            pvt_ids: vec![c.id],
            attr: c.profile_attributes.first().cloned(),
            message: format!(
                "{}: D_fail already satisfies the profile (violation 0), so it cannot \
                 be a cause and its repair is a certified no-op",
                c.label
            ),
        });
    }
    out
}

/// L3 — no-op/idempotence: a transformation whose coverage on
/// `D_fail` is zero fixes no violating tuples. When the coverage
/// estimate is exact for the transformation kind, applying it
/// provably returns the dataset unchanged — an `Error` (the oracle
/// query is certainly wasted); otherwise a `Warn`.
pub fn check_noop(c: &CandidateFacts) -> Vec<Diagnostic> {
    if c.coverage_on_fail != 0.0 {
        return Vec::new();
    }
    let (severity, certainty) = if c.coverage_is_exact {
        (
            Severity::Error,
            "certified no-op: applying it returns D_fail unchanged",
        )
    } else {
        (
            Severity::Warn,
            "estimated no-op: the coverage estimate is not exact for this transformation kind",
        )
    };
    vec![Diagnostic {
        rule: RuleId::NoOpTransform,
        severity,
        pvt_ids: vec![c.id],
        attr: c.writes.first().map(|w| w.attr.clone()),
        message: format!(
            "{}: transformation fixes no violating tuples on D_fail (coverage 0) — {certainty}",
            c.label
        ),
    }]
}

/// L4 — conflict detection: two candidates writing the same attribute
/// with incompatible targets (disjoint ranges or disjoint domains).
/// Each is individually valid, so this is a `Warn`: group testing
/// must not compose them in one application, because the
/// later-applied transformation undoes the earlier one.
pub fn check_write_conflicts(candidates: &[CandidateFacts]) -> Vec<Diagnostic> {
    let mut by_attr: BTreeMap<&str, Vec<&CandidateFacts>> = BTreeMap::new();
    for c in candidates {
        if let Some((attr, _)) = &c.write_target {
            by_attr.entry(attr.as_str()).or_default().push(c);
        }
    }
    let mut out = Vec::new();
    for (attr, writers) in by_attr {
        for (i, a) in writers.iter().enumerate() {
            for b in writers.iter().skip(i + 1) {
                let (ta, tb) = (
                    &a.write_target.as_ref().expect("grouped by target").1,
                    &b.write_target.as_ref().expect("grouped by target").1,
                );
                if !ta.compatible_with(tb) {
                    let mut ids = vec![a.id, b.id];
                    ids.sort_unstable();
                    out.push(Diagnostic {
                        rule: RuleId::WriteConflict,
                        severity: Severity::Warn,
                        pvt_ids: ids,
                        attr: Some(attr.to_string()),
                        message: format!(
                            "{} and {} drive `{attr}` toward incompatible targets \
                             ({ta} vs {tb}); group testing must not compose them",
                            a.label, b.label
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The result of the L6 subsumption pass: the diagnostics plus the
/// machine-readable equivalence classes (each sorted ascending, the
/// first member the representative).
pub struct SubsumptionResult {
    /// One `Info` diagnostic per class of size ≥ 2.
    pub diagnostics: Vec<Diagnostic>,
    /// Equivalence classes of size ≥ 2, sorted by representative.
    pub classes: Vec<Vec<usize>>,
}

/// L6 — subsumption/equivalence: candidates that provably apply the
/// bit-identical repair are merged into one oracle charge per class.
///
/// Candidates are first grouped by the cheap filter — identical
/// profile read-set and coinciding abstract post-state on it — then
/// certified pairwise:
///
/// * **syntactic**: equal [`CandidateFacts::transform_key`]s mean the
///   two candidates apply the literally identical deterministic
///   function, interchangeable in *any* context. These classes are
///   safe to collapse under pruning: every member produces the same
///   frame, hence the same oracle score, wherever it is applied.
/// * **semantic**: [`chains_pointwise_equal`] proves two
///   syntactically different chains act identically on every frame
///   the seeded state admits (e.g. clamps whose differing bounds are
///   inactive on the observed interval). This holds on `D_fail`
///   itself but not necessarily on intermediate frames of an
///   iterative search, so these pairs are *reported* (`Info`) but
///   never collapsed.
///
/// Severity is `Info` throughout: duplicates are not futile — one
/// member of each class still deserves its oracle query.
pub fn check_subsumption(state: &AbsState, candidates: &[CandidateFacts]) -> SubsumptionResult {
    // Cheap grouping filter: profile read-set + abstract post-state
    // projected onto it must coincide before any certificate runs.
    let mut groups: BTreeMap<String, Vec<&CandidateFacts>> = BTreeMap::new();
    for c in candidates {
        if c.transfer.is_empty() || c.profile_attributes.is_empty() {
            continue;
        }
        let post = apply_chain(state, &c.transfer);
        let key = format!(
            "{:?}|{:?}",
            c.profile_attributes,
            post.project(&c.profile_attributes)
        );
        groups.entry(key).or_default().push(c);
    }

    let mut diagnostics = Vec::new();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        // Syntactic certificate: transform-key equality is an
        // equivalence relation, so clustering by key is exact.
        let mut by_key: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for c in members {
            if let Some(key) = &c.transform_key {
                by_key.entry(key.as_str()).or_default().push(c.id);
            }
        }
        // Semantic certificate: report pointwise-equal pairs that the
        // syntactic pass did not already put in one class.
        for (i, a) in members.iter().enumerate() {
            for b in members.iter().skip(i + 1) {
                if a.transform_key.is_some() && a.transform_key == b.transform_key {
                    continue;
                }
                if chains_pointwise_equal(state, &a.transfer, &b.transfer) {
                    let mut ids = vec![a.id, b.id];
                    ids.sort_unstable();
                    diagnostics.push(Diagnostic {
                        rule: RuleId::Subsumption,
                        severity: Severity::Info,
                        pvt_ids: ids,
                        attr: a.profile_attributes.first().cloned(),
                        message: format!(
                            "{} and {} act bit-identically on every frame the observed \
                             state admits (pointwise-equal on D_fail); equivalent there \
                             but not collapsible mid-search",
                            a.label, b.label
                        ),
                    });
                }
            }
        }
        for ids in by_key.into_values() {
            let mut ids = ids;
            ids.sort_unstable();
            if ids.len() < 2 {
                continue;
            }
            let rep = ids[0];
            diagnostics.push(Diagnostic {
                rule: RuleId::Subsumption,
                severity: Severity::Info,
                pvt_ids: ids.clone(),
                attr: None,
                message: format!(
                    "candidates [{}] apply the identical deterministic transformation; \
                     one oracle charge (representative #{rep}) decides the whole class",
                    ids.iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
            classes.push(ids);
        }
    }
    classes.sort();
    SubsumptionResult {
        diagnostics,
        classes,
    }
}

/// L7 — τ-unreachability: interval arithmetic on the candidate's own
/// profile parameters proves the transformation can never move the
/// violated parameter across the `tau` margin — on *any* frame the
/// seeded state admits, the post-state keeps the profile violated
/// beyond `tau`. An `Error`: like L2's provable inconsistency, the
/// fix cannot discharge the violation it claims to repair, so the
/// PVT is malformed and its oracle queries are certainly wasted.
pub fn check_tau_unreachable(
    state: &AbsState,
    tau: f64,
    candidates: &[CandidateFacts],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for c in candidates {
        let Some((attr, region)) = &c.profile_region else {
            continue;
        };
        if c.transfer.is_empty() {
            continue;
        }
        let post = apply_chain(state, &c.transfer);
        if violation_unreachable(&post, attr, region, tau) {
            out.push(Diagnostic {
                rule: RuleId::TauUnreachable,
                severity: Severity::Error,
                pvt_ids: vec![c.id],
                attr: Some(attr.clone()),
                message: format!(
                    "{}: the abstract post-state of `{attr}` provably keeps the profile \
                     violated beyond the τ = {tau} margin; the fix can never repair its \
                     own profile",
                    c.label
                ),
            });
        }
    }
    out
}

/// The result of the L8 commutation pass: one summary diagnostic (to
/// avoid O(m²) report flooding) plus the full fact table.
pub struct CommutationResult {
    /// At most one `Info` diagnostic summarizing the fact table.
    pub diagnostics: Vec<Diagnostic>,
    /// All certified commuting pairs, `(low id, high id)` sorted.
    pub pairs: Vec<(usize, usize)>,
}

/// L8 — commutation/independence: a candidate pair whose
/// transformations are deterministic (the RNG stream cannot skew
/// them), row-local (no resampling), and touch disjoint
/// read/write footprints provably commutes —
/// `t_b(t_a(d)) = t_a(t_b(d))` bit-for-bit on every frame. The fact
/// table feeds the speculation planner (commuting frontiers stay
/// useful deeper) and the commute-aware GT partitioner (conflict
/// edges are the pairs *not* in the table).
pub fn check_commutation(candidates: &[CandidateFacts]) -> CommutationResult {
    fn footprint(c: &CandidateFacts) -> BTreeSet<&str> {
        c.transform_reads
            .iter()
            .map(String::as_str)
            .chain(c.writes.iter().map(|w| w.attr.as_str()))
            .collect()
    }
    let mut pairs = Vec::new();
    for (i, a) in candidates.iter().enumerate() {
        if a.transform_key.is_none() || a.rewrites_all_attributes {
            continue;
        }
        let fa = footprint(a);
        let wa: BTreeSet<&str> = a.writes.iter().map(|w| w.attr.as_str()).collect();
        for b in candidates.iter().skip(i + 1) {
            if b.transform_key.is_none() || b.rewrites_all_attributes {
                continue;
            }
            let fb = footprint(b);
            let wb: BTreeSet<&str> = b.writes.iter().map(|w| w.attr.as_str()).collect();
            if wa.is_disjoint(&fb) && wb.is_disjoint(&fa) {
                let (lo, hi) = if a.id < b.id {
                    (a.id, b.id)
                } else {
                    (b.id, a.id)
                };
                pairs.push((lo, hi));
            }
        }
    }
    pairs.sort_unstable();
    let diagnostics = if pairs.is_empty() {
        Vec::new()
    } else {
        let total = candidates.len() * candidates.len().saturating_sub(1) / 2;
        vec![Diagnostic {
            rule: RuleId::Commutation,
            severity: Severity::Info,
            pvt_ids: Vec::new(),
            attr: None,
            message: format!(
                "{} of {} candidate pairs provably commute (disjoint deterministic \
                 read/write footprints); the fact table steers speculation depth and \
                 commute-aware partitioning",
                pairs.len(),
                total
            ),
        }]
    };
    CommutationResult { diagnostics, pairs }
}

/// L9 — abstract no-op: fixpoint detection over the seeded state. A
/// chain every step of which is provably the identity on the frames
/// the state admits (winsorize inside the observed hull, domain map
/// over a subset support, impute with a zero null fraction — also
/// under conditional guards, where L3's exact-coverage whitelist
/// cannot reach) returns `D_fail` bit-unchanged: an `Error`, the
/// oracle query is certainly wasted.
pub fn check_abstract_noop(state: &AbsState, candidates: &[CandidateFacts]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for c in candidates {
        if chain_is_identity(state, &c.transfer) {
            out.push(Diagnostic {
                rule: RuleId::AbstractNoOp,
                severity: Severity::Error,
                pvt_ids: vec![c.id],
                attr: c.writes.first().map(|w| w.attr.clone()),
                message: format!(
                    "{}: every step of the transformation is the identity on the \
                     observed abstract state — applying it provably returns D_fail \
                     unchanged",
                    c.label
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::{TransferOp, ValueRegion};
    use crate::domains::{AbsCol, Interval, SupportDom};
    use crate::facts::{AttrRequirement, TypeClass, WriteTarget};
    use dp_frame::{DType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", DType::Int),
            Field::new("target", DType::Categorical),
            Field::new("note", DType::Text),
        ])
        .unwrap()
    }

    // --- L1 ---

    #[test]
    fn l1_flags_missing_and_mistyped_attributes() {
        let mut c = CandidateFacts::new(7, "domain_cat(zip)");
        c.reads
            .push(AttrRequirement::new("zip", TypeClass::Textual));
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Textual));
        let diags = check_schema_typing(&schema(), &c);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(diags.iter().all(|d| d.rule == RuleId::SchemaTyping));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("not in the schema")));
        assert!(diags.iter().any(|d| d
            .message
            .contains("does not admit the required textual access")));
    }

    #[test]
    fn l1_accepts_well_typed_accesses() {
        let mut c = CandidateFacts::new(7, "domain_num(age)");
        c.reads
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        c.reads
            .push(AttrRequirement::new("target", TypeClass::Textual));
        c.reads.push(AttrRequirement::new("note", TypeClass::Any));
        assert!(check_schema_typing(&schema(), &c).is_empty());
    }

    // --- L2 ---

    #[test]
    fn l2_flags_fix_on_disjoint_attributes() {
        let mut c = CandidateFacts::new(3, "domain_num(age)");
        c.profile_attributes = vec!["age".into()];
        c.writes.push(AttrRequirement::new("note", TypeClass::Any));
        let diags = check_transform_consistency(&c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0]
            .message
            .contains("cannot move the profile parameter"));
    }

    #[test]
    fn l2_flags_already_satisfied_profile() {
        let mut c = CandidateFacts::new(3, "domain_num(age)");
        c.profile_attributes = vec!["age".into()];
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        c.profile_violation_on_fail = 0.0;
        let diags = check_transform_consistency(&c);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("violation 0"));
    }

    #[test]
    fn l2_accepts_consistent_candidates_and_global_rewrites() {
        let mut c = CandidateFacts::new(3, "domain_num(age)");
        c.profile_attributes = vec!["age".into()];
        c.writes
            .push(AttrRequirement::new("age", TypeClass::Numeric));
        assert!(check_transform_consistency(&c).is_empty());
        // A row-resampling transform touches every column and is
        // always attribute-consistent.
        let mut g = CandidateFacts::new(4, "selectivity(age = 1)");
        g.profile_attributes = vec!["age".into()];
        g.rewrites_all_attributes = true;
        assert!(check_transform_consistency(&g).is_empty());
    }

    // --- L3 ---

    #[test]
    fn l3_certifies_exact_zero_coverage_as_error() {
        let mut c = CandidateFacts::new(5, "domain_num(age)");
        c.coverage_on_fail = 0.0;
        c.coverage_is_exact = true;
        let diags = check_noop(&c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("certified no-op"));
    }

    #[test]
    fn l3_warns_on_inexact_zero_coverage() {
        let mut c = CandidateFacts::new(5, "indep_chi2(a, b)");
        c.coverage_on_fail = 0.0;
        c.coverage_is_exact = false;
        let diags = check_noop(&c);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn l3_accepts_positive_coverage() {
        let mut c = CandidateFacts::new(5, "domain_num(age)");
        c.coverage_on_fail = 0.25;
        c.coverage_is_exact = true;
        assert!(check_noop(&c).is_empty());
    }

    // --- L4 ---

    fn with_target(id: usize, attr: &str, target: WriteTarget) -> CandidateFacts {
        let mut c = CandidateFacts::new(id, format!("pvt{id}"));
        c.write_target = Some((attr.to_string(), target));
        c
    }

    #[test]
    fn l4_flags_disjoint_range_writers_of_one_attribute() {
        let a = with_target(1, "age", WriteTarget::Range { lb: 0.0, ub: 10.0 });
        let b = with_target(2, "age", WriteTarget::Range { lb: 50.0, ub: 60.0 });
        let diags = check_write_conflicts(&[a, b]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert_eq!(diags[0].pvt_ids, vec![1, 2]);
        assert_eq!(diags[0].attr.as_deref(), Some("age"));
    }

    #[test]
    fn l4_flags_disjoint_domain_writers() {
        let dom = |vals: &[&str]| {
            WriteTarget::Domain(vals.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>())
        };
        let a = with_target(1, "target", dom(&["-1", "1"]));
        let b = with_target(9, "target", dom(&["0", "4"]));
        let diags = check_write_conflicts(&[b, a]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pvt_ids, vec![1, 9], "ids sorted ascending");
    }

    #[test]
    fn l4_accepts_overlapping_targets_and_distinct_attributes() {
        let a = with_target(1, "age", WriteTarget::Range { lb: 0.0, ub: 10.0 });
        let b = with_target(2, "age", WriteTarget::Range { lb: 5.0, ub: 60.0 });
        let c = with_target(3, "len", WriteTarget::Range { lb: 99.0, ub: 99.5 });
        assert!(check_write_conflicts(&[a, b, c]).is_empty());
    }

    // --- L6–L9 ---

    fn seeded_state() -> AbsState {
        let mut s = AbsState::new();
        s.set(
            "len",
            AbsCol {
                interval: Interval::range(3.0, 15.0),
                null_lo: 0.0,
                null_hi: 0.0,
                support: SupportDom::Top,
            },
        );
        s.set(
            "target",
            AbsCol {
                interval: Interval::Empty,
                null_lo: 0.0,
                null_hi: 0.0,
                support: SupportDom::Set(["0", "4"].iter().map(|s| s.to_string()).collect()),
            },
        );
        s
    }

    fn clamp_candidate(
        id: usize,
        attr: &str,
        lb: f64,
        ub: f64,
        key: Option<&str>,
    ) -> CandidateFacts {
        let mut c = CandidateFacts::new(id, format!("pvt{id}"));
        c.profile_attributes = vec![attr.to_string()];
        c.writes
            .push(AttrRequirement::new(attr, TypeClass::Numeric));
        c.transform_reads = vec![attr.to_string()];
        c.transfer = vec![TransferOp::Clamp {
            attr: attr.to_string(),
            lb,
            ub,
        }];
        c.transform_key = key.map(str::to_string);
        c
    }

    #[test]
    fn l6_collapses_identical_keys_and_reports_pointwise_pairs() {
        // Two literal duplicates (same key) + one pointwise-equal
        // variant (different key, bound inactive on [3, 15]).
        let a = clamp_candidate(4, "len", 0.0, 20.0, Some("w(0,20)"));
        let b = clamp_candidate(2, "len", 0.0, 20.0, Some("w(0,20)"));
        let c = clamp_candidate(7, "len", 0.0, 25.0, Some("w(0,25)"));
        let result = check_subsumption(&seeded_state(), &[a, b, c]);
        assert_eq!(result.classes, vec![vec![2, 4]], "key class, sorted");
        let class_diag = result
            .diagnostics
            .iter()
            .find(|d| d.message.contains("identical deterministic"))
            .expect("class diagnostic");
        assert_eq!(class_diag.pvt_ids, vec![2, 4]);
        assert_eq!(class_diag.severity, Severity::Info);
        assert!(class_diag.message.contains("representative #2"));
        // The pointwise pairs (2,7) and (4,7) are reported, not
        // collapsed.
        assert_eq!(
            result
                .diagnostics
                .iter()
                .filter(|d| d.message.contains("pointwise-equal"))
                .count(),
            2
        );
    }

    #[test]
    fn l6_requires_coinciding_post_states() {
        // Same key shape but different post-intervals on the profile
        // read-set: the grouping filter must keep them apart.
        let a = clamp_candidate(0, "len", 0.0, 5.0, Some("w(0,5)"));
        let b = clamp_candidate(1, "len", 0.0, 9.0, Some("w(0,9)"));
        let result = check_subsumption(&seeded_state(), &[a, b]);
        assert!(result.classes.is_empty());
        assert!(result.diagnostics.is_empty());
    }

    #[test]
    fn l6_ignores_nondeterministic_and_unlowered_candidates() {
        let mut a = clamp_candidate(0, "len", 0.0, 20.0, None); // nondeterministic
        let mut b = clamp_candidate(1, "len", 0.0, 20.0, None);
        a.transform_key = None;
        b.transform_key = None;
        let result = check_subsumption(&seeded_state(), &[a, b]);
        assert!(result.classes.is_empty());
        // Pointwise equivalence still reports — the *chains* are
        // equal regardless of determinism of the key.
        let c = CandidateFacts::new(2, "unlowered");
        assert!(check_subsumption(&seeded_state(), &[c.clone(), c])
            .classes
            .is_empty());
    }

    #[test]
    fn l7_certifies_unreachable_regions() {
        // Profile wants len ∈ [0, 1]; the fix clamps len into [5, 10]
        // — provably still fully violated.
        let mut c = clamp_candidate(3, "len", 5.0, 10.0, Some("w(5,10)"));
        c.profile_region = Some(("len".to_string(), ValueRegion::Range { lb: 0.0, ub: 1.0 }));
        let diags = check_tau_unreachable(&seeded_state(), 0.2, &[c]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].pvt_ids, vec![3]);
        assert!(diags[0].message.contains("τ = 0.2"));
        // A clamp into the admissible region is (correctly) not
        // flagged.
        let mut ok = clamp_candidate(4, "len", 0.0, 1.0, Some("w(0,1)"));
        ok.profile_region = Some(("len".to_string(), ValueRegion::Range { lb: 0.0, ub: 1.0 }));
        assert!(check_tau_unreachable(&seeded_state(), 0.2, &[ok]).is_empty());
    }

    #[test]
    fn l8_certifies_disjoint_deterministic_pairs_only() {
        let a = clamp_candidate(0, "len", 0.0, 5.0, Some("a"));
        let b = clamp_candidate(1, "aux", 0.0, 5.0, Some("b"));
        let c = clamp_candidate(2, "len", 1.0, 6.0, Some("c")); // conflicts with a
        let mut shuffled = clamp_candidate(3, "other", 0.0, 5.0, None);
        shuffled.transform_key = None; // nondeterministic
        let mut resample = clamp_candidate(4, "fifth", 0.0, 5.0, Some("r"));
        resample.rewrites_all_attributes = true;
        let result = check_commutation(&[a, b, c, shuffled, resample]);
        assert_eq!(result.pairs, vec![(0, 1), (1, 2)]);
        assert_eq!(result.diagnostics.len(), 1, "one summary, not O(m²)");
        assert_eq!(result.diagnostics[0].severity, Severity::Info);
        assert!(result.diagnostics[0].message.contains("2 of 10"));
        // No pairs → no diagnostic at all.
        let lone = clamp_candidate(0, "len", 0.0, 5.0, Some("a"));
        assert!(check_commutation(&[lone]).diagnostics.is_empty());
    }

    #[test]
    fn l9_certifies_identity_chains_as_error() {
        // Clamp strictly containing the observed interval.
        let noop = clamp_candidate(5, "len", 0.0, 20.0, Some("w(0,20)"));
        let diags = check_abstract_noop(&seeded_state(), &[noop]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("identity on the"));
        // Guarded identity: L3's whitelist cannot see through the
        // guard, L9 can.
        let mut guarded = CandidateFacts::new(6, "cond(len)");
        guarded.transfer = vec![TransferOp::Guarded(Box::new(TransferOp::Clamp {
            attr: "len".into(),
            lb: 0.0,
            ub: 20.0,
        }))];
        assert_eq!(check_abstract_noop(&seeded_state(), &[guarded]).len(), 1);
        // An effective clamp is not flagged.
        let effective = clamp_candidate(7, "len", 0.0, 5.0, Some("w(0,5)"));
        assert!(check_abstract_noop(&seeded_state(), &[effective]).is_empty());
        // An unlowered candidate (empty chain) is not flagged.
        assert!(check_abstract_noop(&seeded_state(), &[CandidateFacts::new(8, "x")]).is_empty());
    }
}
