//! CART decision trees with Gini impurity.

use crate::matrix::Matrix;
use crate::Classifier;

/// A node of the fitted tree.
#[derive(Debug, Clone)]
enum Node {
    /// Predict the stored class.
    Leaf(usize),
    /// Route: `row[feature] <= threshold` goes left, else right.
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A binary CART classifier (greedy Gini splits).
///
/// Used directly in the Cardiovascular study (as the AdaBoost weak
/// learner) and inside [`crate::forest::RandomForest`].
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth (1 = a stump).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    root: Option<Node>,
}

impl DecisionTree {
    /// Untrained tree with the given depth cap.
    pub fn new(max_depth: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples_split: 2,
            root: None,
        }
    }

    /// Train on `x`/`y` with uniform sample weights.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) {
        let w = vec![1.0; y.len()];
        self.fit_weighted(x, y, &w, None);
    }

    /// Train with per-sample weights (AdaBoost) and an optional
    /// feature whitelist (random forests). Panics on empty data or
    /// length mismatches.
    pub fn fit_weighted(
        &mut self,
        x: &Matrix,
        y: &[usize],
        weights: &[f64],
        features: Option<&[usize]>,
    ) {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        assert_eq!(y.len(), weights.len(), "weight count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let idx: Vec<usize> = (0..x.rows()).collect();
        let all_features: Vec<usize>;
        let feats = match features {
            Some(f) => f,
            None => {
                all_features = (0..x.cols()).collect();
                &all_features
            }
        };
        self.root = Some(self.build(x, y, weights, &idx, feats, 0));
    }

    fn build(
        &self,
        x: &Matrix,
        y: &[usize],
        w: &[f64],
        idx: &[usize],
        feats: &[usize],
        depth: usize,
    ) -> Node {
        let majority = weighted_majority(y, w, idx);
        if depth >= self.max_depth || idx.len() < self.min_samples_split || is_pure(y, idx) {
            return Node::Leaf(majority);
        }
        let Some((feature, threshold)) = best_split(x, y, w, idx, feats) else {
            return Node::Leaf(majority);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x.get(i, feature) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf(majority);
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, w, &left_idx, feats, depth + 1)),
            right: Box::new(self.build(x, y, w, &right_idx, feats, depth + 1)),
        }
    }
}

fn is_pure(y: &[usize], idx: &[usize]) -> bool {
    idx.windows(2).all(|p| y[p[0]] == y[p[1]])
}

fn weighted_majority(y: &[usize], w: &[f64], idx: &[usize]) -> usize {
    let mut pos = 0.0;
    let mut neg = 0.0;
    for &i in idx {
        if y[i] == 1 {
            pos += w[i];
        } else {
            neg += w[i];
        }
    }
    usize::from(pos > neg)
}

/// Weighted Gini impurity of a (pos, neg) weight split.
fn gini(pos: f64, neg: f64) -> f64 {
    let total = pos + neg;
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

/// Exhaustive best split over candidate features: sort by feature
/// value, sweep thresholds between distinct values, minimize the
/// weighted child Gini.
fn best_split(
    x: &Matrix,
    y: &[usize],
    w: &[f64],
    idx: &[usize],
    feats: &[usize],
) -> Option<(usize, f64)> {
    let mut total_pos = 0.0;
    let mut total_neg = 0.0;
    for &i in idx {
        if y[i] == 1 {
            total_pos += w[i];
        } else {
            total_neg += w[i];
        }
    }
    let parent = gini(total_pos, total_neg);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let mut order: Vec<usize> = Vec::with_capacity(idx.len());
    for &f in feats {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| x.get(a, f).total_cmp(&x.get(b, f)));
        let mut left_pos = 0.0;
        let mut left_neg = 0.0;
        for k in 0..order.len() - 1 {
            let i = order[k];
            if y[i] == 1 {
                left_pos += w[i];
            } else {
                left_neg += w[i];
            }
            let v = x.get(i, f);
            let v_next = x.get(order[k + 1], f);
            if v == v_next {
                continue; // threshold must separate distinct values
            }
            let right_pos = total_pos - left_pos;
            let right_neg = total_neg - left_neg;
            let lw = left_pos + left_neg;
            let rw = right_pos + right_neg;
            let total = lw + rw;
            let score = (lw * gini(left_pos, left_neg) + rw * gini(right_pos, right_neg)) / total;
            // Allow zero-gain splits (score == parent): XOR-like
            // targets need a first split that does not reduce
            // impurity by itself. Depth bounds recursion.
            if score <= parent + 1e-12 && best.is_none_or(|(_, _, s)| score < s) {
                best = Some((f, (v + v_next) / 2.0, score));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

impl Classifier for DecisionTree {
    fn predict(&self, row: &[f64]) -> usize {
        let mut node = self.root.as_ref().expect("predict before fit");
        loop {
            match node {
                Node::Leaf(class) => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn stump_finds_single_threshold() {
        let x = Matrix::from_rows(vec![
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![10.0],
            vec![11.0],
            vec![12.0],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut tree = DecisionTree::new(1);
        tree.fit(&x, &y);
        assert_eq!(tree.predict(&[2.5]), 0);
        assert_eq!(tree.predict(&[10.5]), 1);
        assert_eq!(tree.predict_all(&x), y);
    }

    #[test]
    fn deeper_tree_learns_xor() {
        let x = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0, 1, 1, 0];
        let mut stump = DecisionTree::new(1);
        stump.fit(&x, &y);
        assert!(
            accuracy(&y, &stump.predict_all(&x)) < 1.0,
            "stump cannot do XOR"
        );
        let mut tree = DecisionTree::new(3);
        tree.fit(&x, &y);
        assert_eq!(tree.predict_all(&x), y, "depth 3 solves XOR");
    }

    #[test]
    fn pure_data_yields_constant_leaf() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let mut tree = DecisionTree::new(5);
        tree.fit(&x, &[1, 1]);
        assert_eq!(tree.predict(&[-100.0]), 1);
        assert_eq!(tree.predict(&[100.0]), 1);
    }

    #[test]
    fn sample_weights_steer_the_split() {
        // Unweighted majority is 0, but a huge weight on the single
        // positive flips the constant prediction.
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.0], vec![0.0]]);
        let y = vec![0, 0, 1];
        let mut tree = DecisionTree::new(1);
        tree.fit_weighted(&x, &y, &[1.0, 1.0, 10.0], None);
        assert_eq!(tree.predict(&[0.0]), 1);
    }

    #[test]
    fn feature_whitelist_restricts_splits() {
        // Feature 0 is perfectly predictive, feature 1 is noise; with
        // only feature 1 allowed the tree cannot do better than
        // majority.
        let x = Matrix::from_rows(vec![
            vec![0.0, 5.0],
            vec![0.0, 5.0],
            vec![1.0, 5.0],
            vec![1.0, 5.0],
        ]);
        let y = vec![0, 0, 1, 1];
        let mut tree = DecisionTree::new(3);
        tree.fit_weighted(&x, &y, &[1.0; 4], Some(&[1]));
        let preds = tree.predict_all(&x);
        assert!(preds.iter().all(|&p| p == preds[0]), "constant prediction");
    }
}
