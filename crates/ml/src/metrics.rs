//! Classification metrics.
//!
//! The paper's malfunction scores are built from these: the Sentiment
//! system uses the misclassification rate (Example 4), Cardiovascular
//! uses `1 - recall` on the positive class (§5.1).

/// Confusion counts for binary classification (class 1 = positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against labels. Panics on length mismatch.
    pub fn from_predictions(truth: &[usize], preds: &[usize]) -> Confusion {
        assert_eq!(truth.len(), preds.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&t, &p) in truth.iter().zip(preds) {
            match (t, p) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                _ => panic!("labels must be 0 or 1, got ({t}, {p})"),
            }
        }
        c
    }

    /// Fraction correct. 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// `tp / (tp + fp)`. 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`. 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Fraction of matching predictions. 0 on empty input.
pub fn accuracy(truth: &[usize], preds: &[usize]) -> f64 {
    assert_eq!(truth.len(), preds.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    truth.iter().zip(preds).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

/// `1 - accuracy`: the Sentiment system's malfunction score
/// (Example 4 of the paper).
pub fn misclassification_rate(truth: &[usize], preds: &[usize]) -> f64 {
    1.0 - accuracy(truth, preds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let truth = [1, 1, 0, 0, 1];
        let preds = [1, 0, 0, 1, 1];
        let c = Confusion::from_predictions(&truth, &preds);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn misclassification_complements_accuracy() {
        let truth = [1, 0, 1, 0];
        let preds = [1, 1, 1, 1];
        assert!((accuracy(&truth, &preds) - 0.5).abs() < 1e-12);
        assert!((misclassification_rate(&truth, &preds) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "labels must be 0 or 1")]
    fn nonbinary_labels_panic() {
        Confusion::from_predictions(&[2], &[0]);
    }
}
