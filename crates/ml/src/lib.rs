//! # dp-ml — machine-learning substrate
//!
//! The paper's case studies use off-the-shelf Python models as the
//! black-box systems under diagnosis: a pre-trained flair sentiment
//! model (§5.1 Sentiment), a scikit-learn `RandomForestClassifier`
//! (§5.1 Income), an `AdaBoostClassifier` (§5.1 Cardiovascular), and
//! a logistic regression in the running example (Example 1). None of
//! those exist in this environment, so this crate implements the
//! whole model zoo from scratch:
//!
//! - [`matrix::Matrix`] — dense row-major feature matrix.
//! - [`encoding`] — `DataFrame` → feature matrix (one-hot categorical
//!   encoding, numeric passthrough with mean imputation, label
//!   extraction).
//! - [`logistic`] — binary logistic regression (gradient descent).
//! - [`tree`] — CART decision trees (Gini impurity).
//! - [`forest`] — bagged random forests with feature subsampling.
//! - [`adaboost`] — SAMME AdaBoost over depth-1 stumps.
//! - [`naive_bayes`] — multinomial naive Bayes over token counts.
//! - [`sentiment`] — a lexicon + naive-Bayes sentiment classifier
//!   standing in for flair (see DESIGN.md, substitution 1).
//! - [`metrics`] — accuracy / precision / recall / F1 / confusion.
//! - [`fairness`] — disparate impact and statistical parity, the
//!   malfunction scores of the fairness case studies (Example 5,
//!   §5.1 Income).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels below are written as explicit index loops to match
// the textbook linear-algebra pseudocode they implement.
#![allow(clippy::needless_range_loop)]

pub mod adaboost;
pub mod encoding;
pub mod fairness;
pub mod forest;
pub mod gaussian_nb;
pub mod logistic;
pub mod matrix;
pub mod metrics;
pub mod naive_bayes;
pub mod sentiment;
pub mod tree;
pub mod validate;

pub use adaboost::AdaBoost;
pub use encoding::{encode_features, extract_labels, EncodedData};
pub use forest::RandomForest;
pub use gaussian_nb::GaussianNb;
pub use logistic::LogisticRegression;
pub use matrix::Matrix;
pub use naive_bayes::MultinomialNb;
pub use sentiment::SentimentModel;
pub use tree::DecisionTree;

/// A fitted binary classifier: predicts class 0 or 1 for a feature
/// row. All models in this crate implement it so systems under
/// diagnosis can swap models freely.
pub trait Classifier {
    /// Predict the class of one feature row.
    fn predict(&self, row: &[f64]) -> usize;

    /// Predict classes for every row of a matrix.
    fn predict_all(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.predict(x.row(i))).collect()
    }
}
