//! `DataFrame` → feature-matrix encoding.
//!
//! The case-study systems are pipelines: encode the dataset, train a
//! model, evaluate a malfunction score. This module is the encoding
//! stage. Numeric columns pass through with mean imputation for
//! NULLs; categorical columns are one-hot encoded (NULL = all zeros);
//! `Text` columns are skipped (the sentiment pipeline handles text
//! separately). The label column is extracted by matching its
//! rendered values against a caller-provided positive set.

use crate::matrix::Matrix;
use dp_frame::{DType, DataFrame, FrameError};

/// The result of encoding a frame: a feature matrix plus provenance.
#[derive(Debug, Clone)]
pub struct EncodedData {
    /// Feature matrix, one row per tuple.
    pub x: Matrix,
    /// Human-readable feature names (`col` or `col=value` for one-hot
    /// indicators), aligned with matrix columns.
    pub feature_names: Vec<String>,
}

/// Encode all columns of `df` except those named in `exclude`.
///
/// This mirrors the paper's Example 1 pre-processing, where the data
/// scientist drops the sensitive attributes before training.
pub fn encode_features(df: &DataFrame, exclude: &[&str]) -> Result<EncodedData, FrameError> {
    let n = df.n_rows();
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for col in df.columns() {
        if exclude.contains(&col.name()) {
            continue;
        }
        match col.dtype() {
            DType::Int | DType::Float | DType::Bool => {
                let present = col.f64_values();
                let mean = if present.is_empty() {
                    0.0
                } else {
                    present.iter().map(|(_, v)| v).sum::<f64>() / present.len() as f64
                };
                let mut vals = vec![mean; n];
                for (i, v) in present {
                    vals[i] = v;
                }
                columns.push((col.name().to_string(), vals));
            }
            DType::Categorical => {
                for (value, _) in col.value_counts() {
                    let mut indicator = vec![0.0; n];
                    for i in 0..n {
                        if !col.is_null(i) && col.get(i).to_string() == value {
                            indicator[i] = 1.0;
                        }
                    }
                    columns.push((format!("{}={}", col.name(), value), indicator));
                }
            }
            DType::Text => {} // handled by text-specific pipelines
        }
    }
    let feature_names: Vec<String> = columns.iter().map(|(n, _)| n.clone()).collect();
    let cols = columns.len();
    let mut x = Matrix::zeros(n, cols);
    for (j, (_, vals)) in columns.into_iter().enumerate() {
        for (i, v) in vals.into_iter().enumerate() {
            x.set(i, j, v);
        }
    }
    Ok(EncodedData { x, feature_names })
}

/// Extract binary labels from `df[label]`: 1 when the rendered value
/// is in `positive_values`, else 0 (NULL renders as the empty
/// string, so NULL labels become 0 unless "" is listed).
pub fn extract_labels(
    df: &DataFrame,
    label: &str,
    positive_values: &[&str],
) -> Result<Vec<usize>, FrameError> {
    let col = df.column(label)?;
    Ok((0..df.n_rows())
        .map(|i| {
            let rendered = col.get(i).to_string();
            usize::from(positive_values.contains(&rendered.as_str()))
        })
        .collect())
}

/// Standardize matrix columns in place to zero mean / unit variance
/// (constant columns are left untouched). Returns the per-column
/// `(mean, std)` so test data can reuse the training scaling.
pub fn standardize_columns(x: &mut Matrix) -> Vec<(f64, f64)> {
    let mut params = Vec::with_capacity(x.cols());
    for j in 0..x.cols() {
        let col = x.col(j);
        let n = col.len() as f64;
        let mean = col.iter().sum::<f64>() / n;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        if std > 0.0 {
            for i in 0..x.rows() {
                let v = (x.get(i, j) - mean) / std;
                x.set(i, j, v);
            }
        }
        params.push((mean, std));
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_frame::Column;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_ints("age", vec![Some(30), None, Some(50)]),
            Column::from_strings(
                "race",
                DType::Categorical,
                vec![Some("A".into()), Some("W".into()), Some("W".into())],
            ),
            Column::from_strings(
                "review",
                DType::Text,
                vec![Some("good".into()), Some("bad".into()), None],
            ),
            Column::from_strings(
                "target",
                DType::Categorical,
                vec![Some("yes".into()), Some("no".into()), Some("yes".into())],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn one_hot_and_imputation() {
        let enc = encode_features(&df(), &["target"]).unwrap();
        assert_eq!(
            enc.feature_names,
            vec!["age", "race=A", "race=W"],
            "text skipped, target excluded"
        );
        // NULL age imputed to mean of (30, 50) = 40.
        assert_eq!(enc.x.get(1, 0), 40.0);
        // One-hot rows.
        assert_eq!(enc.x.row(0), &[30.0, 1.0, 0.0]);
        assert_eq!(enc.x.row(2), &[50.0, 0.0, 1.0]);
    }

    #[test]
    fn labels_from_positive_set() {
        let y = extract_labels(&df(), "target", &["yes"]).unwrap();
        assert_eq!(y, vec![1, 0, 1]);
        assert!(extract_labels(&df(), "missing", &["yes"]).is_err());
    }

    #[test]
    fn exclusion_drops_sensitive_attributes() {
        // Example 1: drop race before training.
        let enc = encode_features(&df(), &["target", "race"]).unwrap();
        assert_eq!(enc.feature_names, vec!["age"]);
    }

    #[test]
    fn standardize_centers_and_scales() {
        let mut x = Matrix::from_rows(vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]]);
        let params = standardize_columns(&mut x);
        assert!((x.col(0).iter().sum::<f64>()).abs() < 1e-12);
        let var: f64 = x.col(0).iter().map(|v| v * v).sum::<f64>() / 3.0;
        assert!((var - 1.0).abs() < 1e-12);
        // Constant column untouched.
        assert_eq!(x.col(1), vec![5.0, 5.0, 5.0]);
        assert_eq!(params[1].1, 0.0);
    }
}
