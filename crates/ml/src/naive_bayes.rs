//! Multinomial naive Bayes over token counts.

use std::collections::HashMap;

/// Tokenize text: lowercase alphanumeric runs.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Multinomial naive Bayes text classifier with Laplace smoothing.
///
/// Backs the [`crate::sentiment::SentimentModel`] flair substitute:
/// trained once on a fixed lexicon-derived corpus, then used as a
/// frozen "pre-trained" model by the Sentiment case study.
#[derive(Debug, Clone, Default)]
pub struct MultinomialNb {
    /// log P(class).
    log_prior: [f64; 2],
    /// Per-class token log-likelihoods.
    log_likelihood: [HashMap<String, f64>; 2],
    /// Per-class log-likelihood of an unseen token.
    log_unseen: [f64; 2],
    fitted: bool,
}

impl MultinomialNb {
    /// Untrained model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train on `(document, label)` pairs with labels 0/1. Panics on
    /// empty input or if a class is absent.
    pub fn fit<S: AsRef<str>>(&mut self, docs: &[S], labels: &[usize]) {
        assert_eq!(docs.len(), labels.len(), "length mismatch");
        assert!(!docs.is_empty(), "cannot fit on empty corpus");
        let mut class_docs = [0usize; 2];
        let mut counts: [HashMap<String, usize>; 2] = [HashMap::new(), HashMap::new()];
        let mut totals = [0usize; 2];
        let mut vocab = std::collections::HashSet::new();
        for (doc, &label) in docs.iter().zip(labels) {
            assert!(label < 2, "labels must be 0 or 1");
            class_docs[label] += 1;
            for tok in tokenize(doc.as_ref()) {
                vocab.insert(tok.clone());
                *counts[label].entry(tok).or_insert(0) += 1;
                totals[label] += 1;
            }
        }
        assert!(
            class_docs[0] > 0 && class_docs[1] > 0,
            "both classes required"
        );
        let n = docs.len() as f64;
        let v = vocab.len() as f64;
        for c in 0..2 {
            self.log_prior[c] = (class_docs[c] as f64 / n).ln();
            let denom = totals[c] as f64 + v + 1.0;
            self.log_unseen[c] = (1.0 / denom).ln();
            self.log_likelihood[c] = counts[c]
                .iter()
                .map(|(tok, &cnt)| (tok.clone(), ((cnt as f64 + 1.0) / denom).ln()))
                .collect();
        }
        self.fitted = true;
    }

    /// Log-probability scores `[class 0, class 1]` for a document.
    pub fn scores(&self, doc: &str) -> [f64; 2] {
        assert!(self.fitted, "predict before fit");
        let mut s = self.log_prior;
        for tok in tokenize(doc) {
            for c in 0..2 {
                s[c] += self.log_likelihood[c]
                    .get(&tok)
                    .copied()
                    .unwrap_or(self.log_unseen[c]);
            }
        }
        s
    }

    /// Predicted class for a document.
    pub fn predict(&self, doc: &str) -> usize {
        let s = self.scores(doc);
        usize::from(s[1] > s[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(
            tokenize("Great movie! 10/10, LOVED it."),
            vec!["great", "movie", "10", "10", "loved", "it"]
        );
        assert!(tokenize("  ...  ").is_empty());
    }

    #[test]
    fn separates_simple_sentiment() {
        let docs = [
            "great wonderful excellent",
            "superb great loved",
            "terrible awful bad",
            "bad horrible waste",
        ];
        let labels = [1, 1, 0, 0];
        let mut nb = MultinomialNb::new();
        nb.fit(&docs, &labels);
        assert_eq!(nb.predict("what a great excellent film"), 1);
        assert_eq!(nb.predict("awful horrible mess"), 0);
    }

    #[test]
    fn unseen_tokens_fall_back_to_prior() {
        let docs = ["good", "good", "good", "bad"];
        let labels = [1, 1, 1, 0];
        let mut nb = MultinomialNb::new();
        nb.fit(&docs, &labels);
        // Document of only unseen tokens: prior dominates (class 1).
        assert_eq!(nb.predict("zxqwv"), 1);
    }

    #[test]
    #[should_panic(expected = "both classes required")]
    fn single_class_corpus_panics() {
        let mut nb = MultinomialNb::new();
        nb.fit(&["a", "b"], &[1, 1]);
    }
}
