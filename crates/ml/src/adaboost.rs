//! AdaBoost (discrete SAMME) over decision stumps.

use crate::matrix::Matrix;
use crate::tree::DecisionTree;
use crate::Classifier;

/// AdaBoost binary classifier (the §5.1 Cardiovascular system's
/// model), boosting depth-`stump_depth` CART trees with the discrete
/// SAMME weight update (for two classes, classic AdaBoost.M1).
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Depth of each weak learner (1 = stump).
    pub stump_depth: usize,
    learners: Vec<(DecisionTree, f64)>,
}

impl AdaBoost {
    /// Untrained booster.
    pub fn new(n_rounds: usize, stump_depth: usize) -> Self {
        AdaBoost {
            n_rounds,
            stump_depth,
            learners: Vec::new(),
        }
    }

    /// Train on `x`/`y` (labels 0/1). Panics on empty data.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows();
        let mut w = vec![1.0 / n as f64; n];
        self.learners.clear();
        for _ in 0..self.n_rounds {
            let mut tree = DecisionTree::new(self.stump_depth);
            tree.fit_weighted(x, y, &w, None);
            let preds = tree.predict_all(x);
            let err: f64 = preds
                .iter()
                .zip(y)
                .zip(&w)
                .filter(|((p, t), _)| p != t)
                .map(|(_, wi)| *wi)
                .sum();
            if err >= 0.5 {
                // Weak learner no better than chance: stop boosting.
                if self.learners.is_empty() {
                    self.learners.push((tree, 1.0));
                }
                break;
            }
            let err = err.max(1e-12);
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            // Reweight: up-weight mistakes, down-weight hits.
            for ((wi, p), t) in w.iter_mut().zip(&preds).zip(y) {
                let sign = if p == t { -1.0 } else { 1.0 };
                *wi *= (sign * alpha).exp();
            }
            let total: f64 = w.iter().sum();
            w.iter_mut().for_each(|wi| *wi /= total);
            self.learners.push((tree, alpha));
            if err <= 1e-12 {
                break; // perfect learner; further rounds are no-ops
            }
        }
    }

    /// Signed ensemble margin (positive favors class 1).
    pub fn decision_function(&self, row: &[f64]) -> f64 {
        self.learners
            .iter()
            .map(|(t, alpha)| {
                let vote = if t.predict(row) == 1 { 1.0 } else { -1.0 };
                alpha * vote
            })
            .sum()
    }

    /// Number of fitted rounds (may be fewer than `n_rounds` if
    /// boosting stopped early).
    pub fn len(&self) -> usize {
        self.learners.len()
    }

    /// True before `fit`.
    pub fn is_empty(&self) -> bool {
        self.learners.is_empty()
    }
}

impl Classifier for AdaBoost {
    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.learners.is_empty(), "predict before fit");
        usize::from(self.decision_function(row) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn boosting_beats_a_single_stump_on_stripes() {
        // Alternating stripes on one feature need several thresholds.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let v = i as f64 / 10.0;
            rows.push(vec![v]);
            y.push(usize::from((v as i64) % 2 == 0));
        }
        let x = Matrix::from_rows(rows);
        let mut stump = DecisionTree::new(1);
        stump.fit(&x, &y);
        let stump_acc = accuracy(&y, &stump.predict_all(&x));
        let mut ada = AdaBoost::new(40, 1);
        ada.fit(&x, &y);
        let ada_acc = accuracy(&y, &ada.predict_all(&x));
        assert!(
            ada_acc > stump_acc + 0.1,
            "ada {ada_acc} vs stump {stump_acc}"
        );
    }

    #[test]
    fn perfect_learner_short_circuits() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 0, 1, 1];
        let mut ada = AdaBoost::new(50, 1);
        ada.fit(&x, &y);
        assert_eq!(ada.len(), 1, "first stump is perfect");
        assert_eq!(ada.predict_all(&x), y);
    }

    #[test]
    fn decision_function_sign_matches_prediction() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 1, 0, 1];
        let mut ada = AdaBoost::new(10, 1);
        ada.fit(&x, &y);
        for row in [[0.0], [3.0]] {
            let df = ada.decision_function(&row);
            assert_eq!(usize::from(df > 0.0), ada.predict(&row));
        }
    }
}
