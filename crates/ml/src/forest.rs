//! Random forest: bagged CART trees with feature subsampling.

use crate::matrix::Matrix;
use crate::tree::DecisionTree;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A random forest classifier (the §5.1 Income system's model).
///
/// Each tree trains on a bootstrap sample with `√d` randomly chosen
/// candidate features; prediction is a majority vote. Seeded, so the
/// diagnosis oracle is deterministic across interventions.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// RNG seed (forests retrain inside the oracle; a fixed seed
    /// keeps malfunction scores reproducible).
    pub seed: u64,
    /// Candidate features per tree: `None` uses the `√d` default;
    /// `Some(k)` uses `min(k, d)` (with `Some(d)` the forest becomes
    /// pure bagging, which overfits the training data — useful when
    /// an oracle wants predictions to track the labels).
    pub features_per_tree: Option<usize>,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Untrained forest with the `√d` feature-subsampling default.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest {
            n_trees,
            max_depth,
            seed,
            features_per_tree: None,
            trees: Vec::new(),
        }
    }

    /// Train on `x`/`y`. Panics on empty data.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = x.rows();
        let d = x.cols();
        let n_feats = match self.features_per_tree {
            Some(k) => k.clamp(1, d),
            None => ((d as f64).sqrt().ceil() as usize).clamp(1, d),
        };
        self.trees.clear();
        let all_feats: Vec<usize> = (0..d).collect();
        for _ in 0..self.n_trees {
            // Bootstrap rows.
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let xb = x.take_rows(&idx);
            let yb: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            // Feature subsample.
            let mut feats = all_feats.clone();
            feats.shuffle(&mut rng);
            feats.truncate(n_feats);
            let mut tree = DecisionTree::new(self.max_depth);
            let w = vec![1.0; yb.len()];
            tree.fit_weighted(&xb, &yb, &w, Some(&feats));
            self.trees.push(tree);
        }
    }
}

impl RandomForest {
    /// Fraction of trees voting for class 1 — a calibrated-ish
    /// probability estimate for the ensemble.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        let votes: usize = self.trees.iter().map(|t| t.predict(row)).sum();
        votes as f64 / self.trees.len() as f64
    }
}

impl Classifier for RandomForest {
    fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict before fit");
        let votes: usize = self.trees.iter().map(|t| t.predict(row)).sum();
        usize::from(2 * votes > self.trees.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let jitter = (i % 7) as f64 * 0.01;
            if i % 2 == 0 {
                rows.push(vec![0.0 + jitter, 0.0 - jitter]);
                y.push(0);
            } else {
                rows.push(vec![3.0 - jitter, 3.0 + jitter]);
                y.push(1);
            }
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn separable_blobs_classified() {
        let (x, y) = blobs();
        let mut forest = RandomForest::new(15, 4, 42);
        forest.fit(&x, &y);
        assert!(accuracy(&y, &forest.predict_all(&x)) > 0.95);
    }

    #[test]
    fn same_seed_same_model() {
        let (x, y) = blobs();
        let mut a = RandomForest::new(10, 3, 7);
        let mut b = RandomForest::new(10, 3, 7);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_all(&x), b.predict_all(&x));
    }

    #[test]
    fn majority_vote_is_strict() {
        // With all-constant data the forest predicts the majority
        // class everywhere.
        let x = Matrix::from_rows(vec![vec![1.0]; 9]);
        let y = vec![0, 0, 0, 0, 0, 1, 1, 1, 1];
        let mut forest = RandomForest::new(9, 2, 1);
        forest.fit(&x, &y);
        // Indistinguishable features: prediction constant either way.
        let p = forest.predict(&[1.0]);
        assert!(p == 0 || p == 1);
    }
}
