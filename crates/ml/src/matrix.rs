//! Dense row-major feature matrix.

/// A dense `rows × cols` matrix of `f64` features, stored row-major.
///
/// Kept deliberately minimal: the models in this crate only need row
/// access, column iteration, and construction — no BLAS.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Build from a flat row-major buffer. Panics if the buffer size
    /// is not `rows * cols`.
    pub fn new(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { data, rows, cols }
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend(r);
        }
        Matrix {
            data,
            rows: n_rows,
            cols: n_cols,
        }
    }

    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Cell accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Cell mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// New matrix with the rows at `indices` (repeats allowed).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn mutation() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 7.0);
        m.row_mut(1)[0] = 3.0;
        assert_eq!(m.get(0, 1), 7.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn take_rows_repeats() {
        let m = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let t = m.take_rows(&[1, 1, 0]);
        assert_eq!(t.col(0), vec![2.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(vec![vec![1.0], vec![2.0, 3.0]]);
    }
}
