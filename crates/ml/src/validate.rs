//! Model validation: k-fold cross-validation and probability
//! estimates for ensembles.

use crate::matrix::Matrix;
use crate::metrics::accuracy;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a k-fold cross-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold test accuracies.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean test accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Standard deviation across folds.
    pub fn std_accuracy(&self) -> f64 {
        let m = self.mean_accuracy();
        if self.fold_accuracies.len() < 2 {
            return 0.0;
        }
        (self
            .fold_accuracies
            .iter()
            .map(|a| (a - m) * (a - m))
            .sum::<f64>()
            / self.fold_accuracies.len() as f64)
            .sqrt()
    }
}

/// k-fold cross-validation of any classifier family.
///
/// `fit` receives the training split and returns a fitted model;
/// folds are formed by a seeded shuffle. Panics when `k < 2` or there
/// are fewer samples than folds.
pub fn cross_validate<M, F>(x: &Matrix, y: &[usize], k: usize, seed: u64, mut fit: F) -> CvResult
where
    M: Classifier,
    F: FnMut(&Matrix, &[usize]) -> M,
{
    assert!(k >= 2, "need at least 2 folds");
    let n = x.rows();
    assert!(n >= k, "need at least one sample per fold");
    assert_eq!(n, y.len(), "sample count mismatch");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut fold_accuracies = Vec::with_capacity(k);
    for fold in 0..k {
        let test: Vec<usize> = idx.iter().copied().skip(fold).step_by(k).collect();
        let train: Vec<usize> = idx.iter().copied().filter(|i| !test.contains(i)).collect();
        let x_train = x.take_rows(&train);
        let y_train: Vec<usize> = train.iter().map(|&i| y[i]).collect();
        let model = fit(&x_train, &y_train);
        let x_test = x.take_rows(&test);
        let y_test: Vec<usize> = test.iter().map(|&i| y[i]).collect();
        let preds = model.predict_all(&x_test);
        fold_accuracies.push(accuracy(&y_test, &preds));
    }
    CvResult { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::tree::DecisionTree;

    fn separable(n: usize) -> (Matrix, Vec<usize>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<usize> = rows.iter().map(|r| usize::from(r[0] >= 5.0)).collect();
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn cv_scores_a_learnable_problem_high() {
        let (x, y) = separable(100);
        let result = cross_validate(&x, &y, 5, 1, |xt, yt| {
            let mut t = DecisionTree::new(3);
            t.fit(xt, yt);
            t
        });
        assert_eq!(result.fold_accuracies.len(), 5);
        assert!(result.mean_accuracy() > 0.9, "{result:?}");
        assert!(result.std_accuracy() < 0.2);
    }

    #[test]
    fn cv_scores_random_labels_near_chance() {
        let (x, _) = separable(100);
        let y: Vec<usize> = (0..100).map(|i| (i * 31 + 7) % 2).collect();
        let result = cross_validate(&x, &y, 5, 1, |xt, yt| {
            let mut m = LogisticRegression::default();
            m.fit(xt, yt);
            m
        });
        assert!((0.2..0.8).contains(&result.mean_accuracy()), "{result:?}");
    }

    #[test]
    fn folds_partition_all_samples() {
        // Every sample appears in exactly one test fold: total test
        // predictions across folds == n. Implied by step_by
        // construction; assert via sizes.
        let (x, y) = separable(23);
        let result = cross_validate(&x, &y, 4, 9, |xt, yt| {
            let mut t = DecisionTree::new(2);
            t.fit(xt, yt);
            t
        });
        assert_eq!(result.fold_accuracies.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k_must_be_at_least_two() {
        let (x, y) = separable(10);
        cross_validate(&x, &y, 1, 0, |xt, yt| {
            let mut t = DecisionTree::new(1);
            t.fit(xt, yt);
            t
        });
    }
}
