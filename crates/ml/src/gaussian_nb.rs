//! Gaussian naive Bayes over continuous features.

use crate::matrix::Matrix;
use crate::Classifier;

/// Binary Gaussian naive Bayes: each feature is modeled as an
/// independent normal per class; prediction maximizes the joint
/// log-likelihood plus the class log-prior.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// log P(class) for classes 0 and 1.
    log_prior: [f64; 2],
    /// Per-class per-feature (mean, variance).
    params: [Vec<(f64, f64)>; 2],
    fitted: bool,
}

/// Variance floor: degenerate (constant) features get a small
/// variance so the density stays finite.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Untrained model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train on `x`/`y` (labels 0/1). Panics on empty data, length
    /// mismatch, or a missing class.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows();
        let d = x.cols();
        let mut counts = [0usize; 2];
        for &label in y {
            assert!(label < 2, "labels must be 0 or 1");
            counts[label] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "both classes required");
        for c in 0..2 {
            self.log_prior[c] = (counts[c] as f64 / n as f64).ln();
            let mut params = Vec::with_capacity(d);
            for j in 0..d {
                let values: Vec<f64> = (0..n).filter(|&i| y[i] == c).map(|i| x.get(i, j)).collect();
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                    / values.len() as f64;
                params.push((mean, var.max(VAR_FLOOR)));
            }
            self.params[c] = params;
        }
        self.fitted = true;
    }

    /// Joint log-likelihood + log-prior per class.
    pub fn scores(&self, row: &[f64]) -> [f64; 2] {
        assert!(self.fitted, "predict before fit");
        assert_eq!(row.len(), self.params[0].len(), "feature count mismatch");
        let mut out = self.log_prior;
        for c in 0..2 {
            for (v, &(mean, var)) in row.iter().zip(&self.params[c]) {
                let diff = v - mean;
                out[c] += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
            }
        }
        out
    }

    /// Posterior probability of class 1 (softmax of the two scores).
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let s = self.scores(row);
        let m = s[0].max(s[1]);
        let e0 = (s[0] - m).exp();
        let e1 = (s[1] - m).exp();
        e1 / (e0 + e1)
    }
}

impl Classifier for GaussianNb {
    fn predict(&self, row: &[f64]) -> usize {
        let s = self.scores(row);
        usize::from(s[1] > s[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn gaussians() -> (Matrix, Vec<usize>) {
        // Two well-separated 2-d blobs with deterministic jitter.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let j = ((i * 37) % 17) as f64 / 17.0 - 0.5;
            let k = ((i * 53) % 13) as f64 / 13.0 - 0.5;
            if i % 2 == 0 {
                rows.push(vec![j, k]);
                y.push(0);
            } else {
                rows.push(vec![4.0 + j, 4.0 + k]);
                y.push(1);
            }
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussians();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y);
        assert!(accuracy(&y, &nb.predict_all(&x)) > 0.98);
        assert!(nb.predict_proba(&[4.0, 4.0]) > 0.99);
        assert!(nb.predict_proba(&[0.0, 0.0]) < 0.01);
    }

    #[test]
    fn probability_crosses_one_half_between_the_blobs() {
        // Deep in the tails the likelihood ratio is dominated by tiny
        // per-class variance differences, so no single midpoint is
        // guaranteed to be "uncertain"; what must hold is that the
        // posterior is ~0 at one blob center, ~1 at the other, and
        // monotone along the connecting segment.
        let (x, y) = gaussians();
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y);
        let probs: Vec<f64> = (0..=20)
            .map(|t| {
                let v = t as f64 / 20.0 * 4.0;
                nb.predict_proba(&[v, v])
            })
            .collect();
        assert!(probs[0] < 0.5 && probs[20] > 0.5);
        for w in probs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "monotone along the segment: {probs:?}");
        }
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let x = Matrix::from_rows(vec![
            vec![1.0, 5.0],
            vec![2.0, 5.0],
            vec![10.0, 5.0],
            vec![11.0, 5.0],
        ]);
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNb::new();
        nb.fit(&x, &y);
        assert_eq!(nb.predict(&[1.5, 5.0]), 0);
        assert_eq!(nb.predict(&[10.5, 5.0]), 1);
        let s = nb.scores(&[1.5, 5.0]);
        assert!(s[0].is_finite() && s[1].is_finite());
    }

    #[test]
    #[should_panic(expected = "both classes required")]
    fn single_class_panics() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        GaussianNb::new().fit(&x, &[0, 0]);
    }
}
