//! Fairness metrics: disparate impact and statistical parity.
//!
//! Example 5 of the paper uses disparate impact — "the ratio between
//! the number of tuples with favorable outcomes within the
//! unprivileged and the privileged groups" — as the malfunction
//! score for fair classification, and the §5.1 Income system returns
//! the *normalized* disparate impact w.r.t. the protected attribute.

/// Group assignment for fairness computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Member of the unprivileged (protected) group.
    Unprivileged,
    /// Member of the privileged group.
    Privileged,
}

/// Favorable-outcome rate per group: `(unprivileged, privileged)`.
///
/// Returns `None` if either group is empty.
pub fn favorable_rates(preds: &[usize], groups: &[Group]) -> Option<(f64, f64)> {
    assert_eq!(preds.len(), groups.len(), "length mismatch");
    let mut up_fav = 0usize;
    let mut up_n = 0usize;
    let mut pr_fav = 0usize;
    let mut pr_n = 0usize;
    for (&p, &g) in preds.iter().zip(groups) {
        match g {
            Group::Unprivileged => {
                up_n += 1;
                up_fav += p;
            }
            Group::Privileged => {
                pr_n += 1;
                pr_fav += p;
            }
        }
    }
    if up_n == 0 || pr_n == 0 {
        return None;
    }
    Some((up_fav as f64 / up_n as f64, pr_fav as f64 / pr_n as f64))
}

/// Disparate impact: `P(fav | unprivileged) / P(fav | privileged)`.
///
/// 1.0 is perfectly fair; values below 0.8 violate the usual
/// four-fifths rule. Conventions for degenerate cases: both rates
/// zero → 1.0 (trivially balanced); privileged rate zero with a
/// nonzero unprivileged rate → `f64::INFINITY` (reverse disparity);
/// missing group → `None`.
pub fn disparate_impact(preds: &[usize], groups: &[Group]) -> Option<f64> {
    let (up, pr) = favorable_rates(preds, groups)?;
    if pr == 0.0 {
        return Some(if up == 0.0 { 1.0 } else { f64::INFINITY });
    }
    Some(up / pr)
}

/// Normalized disparate impact as a malfunction score in `[0, 1]`:
/// `1 - min(DI, 1/DI)`. Zero means perfectly fair; one means one
/// group never receives the favorable outcome. This is the §5.1
/// Income system's malfunction score.
pub fn normalized_disparate_impact(preds: &[usize], groups: &[Group]) -> Option<f64> {
    let di = disparate_impact(preds, groups)?;
    if di == 0.0 || di.is_infinite() {
        return Some(1.0);
    }
    Some(1.0 - di.min(1.0 / di))
}

/// Add-one (Laplace) smoothed variant of
/// [`normalized_disparate_impact`]: group rates are computed as
/// `(fav + 1) / (n + 2)`. With very few favorable predictions the raw
/// ratio is knife-edged (3 favorable males and 0 females gives DI = 0
/// exactly); smoothing keeps the malfunction score stable, which
/// interventional diagnosis needs from its oracle.
pub fn normalized_disparate_impact_smoothed(preds: &[usize], groups: &[Group]) -> Option<f64> {
    assert_eq!(preds.len(), groups.len(), "length mismatch");
    let mut up_fav = 0usize;
    let mut up_n = 0usize;
    let mut pr_fav = 0usize;
    let mut pr_n = 0usize;
    for (&p, &g) in preds.iter().zip(groups) {
        match g {
            Group::Unprivileged => {
                up_n += 1;
                up_fav += p;
            }
            Group::Privileged => {
                pr_n += 1;
                pr_fav += p;
            }
        }
    }
    if up_n == 0 || pr_n == 0 {
        return None;
    }
    let up = (up_fav + 1) as f64 / (up_n + 2) as f64;
    let pr = (pr_fav + 1) as f64 / (pr_n + 2) as f64;
    let di = up / pr;
    Some(1.0 - di.min(1.0 / di))
}

/// Statistical parity difference:
/// `P(fav | unprivileged) - P(fav | privileged)` in `[-1, 1]`.
pub fn statistical_parity_difference(preds: &[usize], groups: &[Group]) -> Option<f64> {
    let (up, pr) = favorable_rates(preds, groups)?;
    Some(up - pr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Group::{Privileged as P, Unprivileged as U};

    #[test]
    fn fair_predictions_have_di_one() {
        let preds = [1, 0, 1, 0];
        let groups = [U, U, P, P];
        assert!((disparate_impact(&preds, &groups).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(normalized_disparate_impact(&preds, &groups).unwrap(), 0.0);
        assert_eq!(statistical_parity_difference(&preds, &groups).unwrap(), 0.0);
    }

    #[test]
    fn biased_predictions_scored() {
        // Unprivileged favorable rate 0.25, privileged 0.75.
        let preds = [1, 0, 0, 0, 1, 1, 1, 0];
        let groups = [U, U, U, U, P, P, P, P];
        let di = disparate_impact(&preds, &groups).unwrap();
        assert!((di - 1.0 / 3.0).abs() < 1e-12);
        let m = normalized_disparate_impact(&preds, &groups).unwrap();
        assert!((m - 2.0 / 3.0).abs() < 1e-12);
        let spd = statistical_parity_difference(&preds, &groups).unwrap();
        assert!((spd + 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        // No favorable outcomes anywhere: fair by convention.
        assert_eq!(disparate_impact(&[0, 0], &[U, P]).unwrap(), 1.0);
        // Reverse disparity: privileged never favored.
        assert_eq!(disparate_impact(&[1, 0], &[U, P]).unwrap(), f64::INFINITY);
        assert_eq!(normalized_disparate_impact(&[1, 0], &[U, P]).unwrap(), 1.0);
        // Missing a group entirely.
        assert!(disparate_impact(&[1, 0], &[U, U]).is_none());
    }

    #[test]
    fn smoothed_di_is_stable_on_tiny_counts() {
        // 1 favorable male out of 50, 0 of 50 females: raw normalized
        // DI saturates at 1.0; smoothed stays moderate.
        let mut preds = vec![0usize; 100];
        preds[99] = 1;
        let groups: Vec<Group> = (0..100).map(|i| if i < 50 { U } else { P }).collect();
        assert_eq!(normalized_disparate_impact(&preds, &groups).unwrap(), 1.0);
        let smoothed = normalized_disparate_impact_smoothed(&preds, &groups).unwrap();
        assert!((0.3..0.7).contains(&smoothed), "{smoothed}");
        // With balanced strong signals the two agree closely.
        let preds: Vec<usize> = (0..100).map(|i| usize::from(i % 2 == 0)).collect();
        let raw = normalized_disparate_impact(&preds, &groups).unwrap();
        let sm = normalized_disparate_impact_smoothed(&preds, &groups).unwrap();
        assert!((raw - sm).abs() < 0.05);
    }

    #[test]
    fn normalized_di_is_symmetric() {
        // Swapping group roles must not change the normalized score.
        let preds = [1, 0, 0, 0, 1, 1, 1, 0];
        let groups = [U, U, U, U, P, P, P, P];
        let swapped: Vec<Group> = groups
            .iter()
            .map(|g| match g {
                U => P,
                P => U,
            })
            .collect();
        let a = normalized_disparate_impact(&preds, &groups).unwrap();
        let b = normalized_disparate_impact(&preds, &swapped).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
