//! Binary logistic regression trained by batch gradient descent.

use crate::matrix::Matrix;
use crate::Classifier;

/// Binary logistic regression (the model of the paper's Example 1).
///
/// Trained with full-batch gradient descent on the log-loss with L2
/// regularization. Deterministic given the same data, so oracle
/// queries in the diagnosis loop are reproducible.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learned weights, one per feature (empty before `fit`).
    pub weights: Vec<f64>,
    /// Learned intercept.
    pub bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of gradient steps.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.1,
            epochs: 200,
            l2: 1e-3,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fresh untrained model with the default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train on feature matrix `x` and binary labels `y` (0/1).
    /// Panics if `x.rows() != y.len()` or the matrix is empty.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        let n = x.rows();
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let inv_n = 1.0 / n as f64;
        let mut grad = vec![0.0; d];
        for _ in 0..self.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for i in 0..n {
                let row = x.row(i);
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, w)| a * w)
                        .sum::<f64>();
                let err = sigmoid(z) - y[i] as f64;
                for (g, a) in grad.iter_mut().zip(row) {
                    *g += err * a;
                }
                grad_b += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= self.learning_rate * (g * inv_n + self.l2 * *w);
            }
            self.bias -= self.learning_rate * grad_b * inv_n;
        }
    }

    /// Predicted probability of class 1.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature count mismatch");
        let z = self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(a, w)| a * w)
                .sum::<f64>();
        sigmoid(z)
    }
}

impl Classifier for LogisticRegression {
    fn predict(&self, row: &[f64]) -> usize {
        usize::from(self.predict_proba(row) >= 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0 && sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(-1000.0) < 1e-3);
    }

    #[test]
    fn learns_linearly_separable_data() {
        // y = 1 iff x0 + x1 > 1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 10.0, j as f64 / 10.0);
                rows.push(vec![a, b]);
                y.push(usize::from(a + b > 1.0));
            }
        }
        let x = Matrix::from_rows(rows);
        let mut model = LogisticRegression {
            epochs: 2000,
            learning_rate: 0.5,
            ..Default::default()
        };
        model.fit(&x, &y);
        let preds = model.predict_all(&x);
        assert!(accuracy(&y, &preds) > 0.95);
    }

    #[test]
    fn probabilities_order_by_margin() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![0.2], vec![0.8]]);
        let y = vec![0, 1, 0, 1];
        let mut model = LogisticRegression::default();
        model.fit(&x, &y);
        assert!(model.predict_proba(&[1.0]) > model.predict_proba(&[0.0]));
        assert!(model.predict_proba(&[2.0]) > model.predict_proba(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn mismatched_labels_panic() {
        let x = Matrix::zeros(3, 1);
        LogisticRegression::default().fit(&x, &[0, 1]);
    }
}
