//! Pre-trained sentiment classifier — the flair substitute.
//!
//! The paper's Sentiment system uses flair, a pre-trained neural
//! sentiment model, as a frozen black box that maps text to a
//! sentiment in `{-1, +1}` and compares against the dataset's
//! `target` attribute. What matters to the case study is *not* model
//! quality but the frozen label convention: the system assumes
//! `target ∈ {-1, +1}`, while the failing (twitter-like) dataset
//! encodes sentiment as `{0, 4}` — so every prediction "mismatches"
//! and the malfunction score is 1.0 until the Domain profile of
//! `target` is repaired.
//!
//! [`SentimentModel::pretrained`] builds the frozen model: a
//! sentiment lexicon plus a multinomial naive Bayes trained on a
//! small built-in corpus generated from that lexicon. It is
//! deterministic and never retrained by the case study.

use crate::naive_bayes::{tokenize, MultinomialNb};

/// Positive-sentiment lexicon (a compact subset of standard opinion
/// lexicons).
pub const POSITIVE_WORDS: &[&str] = &[
    "good",
    "great",
    "excellent",
    "wonderful",
    "amazing",
    "superb",
    "loved",
    "love",
    "fantastic",
    "brilliant",
    "delightful",
    "enjoyable",
    "masterpiece",
    "perfect",
    "beautiful",
    "charming",
    "impressive",
    "stunning",
    "best",
    "awesome",
    "happy",
    "fun",
    "glad",
    "recommend",
    "favorite",
    "touching",
    "compelling",
    "remarkable",
];

/// Negative-sentiment lexicon.
pub const NEGATIVE_WORDS: &[&str] = &[
    "bad",
    "terrible",
    "awful",
    "horrible",
    "boring",
    "waste",
    "poor",
    "worst",
    "hate",
    "hated",
    "dull",
    "disappointing",
    "disappointed",
    "mess",
    "annoying",
    "stupid",
    "painful",
    "unwatchable",
    "mediocre",
    "weak",
    "sad",
    "angry",
    "avoid",
    "ridiculous",
    "lame",
    "pathetic",
    "tedious",
    "cliched",
];

/// A frozen sentiment model mapping text to `-1` (negative) or `+1`
/// (positive).
#[derive(Debug, Clone)]
pub struct SentimentModel {
    nb: MultinomialNb,
}

impl SentimentModel {
    /// The "pre-trained" model: naive Bayes fitted on a deterministic
    /// lexicon-derived corpus (each lexicon word in several template
    /// contexts).
    pub fn pretrained() -> SentimentModel {
        let templates = [
            "this movie was {}",
            "really {} experience overall",
            "i found it {} from start to finish",
            "what a {} film",
            "{} acting and {} plot",
        ];
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for (words, label) in [(POSITIVE_WORDS, 1usize), (NEGATIVE_WORDS, 0usize)] {
            for w in words {
                for t in &templates {
                    docs.push(t.replace("{}", w));
                    labels.push(label);
                }
            }
        }
        let mut nb = MultinomialNb::new();
        nb.fit(&docs, &labels);
        SentimentModel { nb }
    }

    /// Predict sentiment: `+1` positive, `-1` negative.
    ///
    /// Lexicon counting decides when it is unambiguous (this keeps
    /// behavior interpretable for tests); the naive Bayes breaks
    /// ties and handles texts with no lexicon hits.
    pub fn predict(&self, text: &str) -> i64 {
        let mut pos = 0i64;
        let mut neg = 0i64;
        for tok in tokenize(text) {
            if POSITIVE_WORDS.contains(&tok.as_str()) {
                pos += 1;
            }
            if NEGATIVE_WORDS.contains(&tok.as_str()) {
                neg += 1;
            }
        }
        if pos != neg {
            return if pos > neg { 1 } else { -1 };
        }
        if self.nb.predict(text) == 1 {
            1
        } else {
            -1
        }
    }
}

impl Default for SentimentModel {
    fn default() -> Self {
        Self::pretrained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_hits_dominate() {
        let m = SentimentModel::pretrained();
        assert_eq!(m.predict("A wonderful, brilliant masterpiece."), 1);
        assert_eq!(m.predict("Terrible plot, awful acting, total waste."), -1);
        assert_eq!(
            m.predict("great start but a horrible boring ending"),
            -1,
            "2 negative vs 1 positive"
        );
    }

    #[test]
    fn predictions_are_in_the_frozen_domain() {
        let m = SentimentModel::pretrained();
        for text in ["meh", "", "the 42 clouds", "good bad"] {
            let p = m.predict(text);
            assert!(p == 1 || p == -1, "prediction {p} outside {{-1, 1}}");
        }
    }

    #[test]
    fn model_is_deterministic() {
        let a = SentimentModel::pretrained();
        let b = SentimentModel::pretrained();
        for text in ["loved it", "hated it", "it exists"] {
            assert_eq!(a.predict(text), b.predict(text));
        }
    }
}
