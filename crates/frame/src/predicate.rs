//! Boolean predicate AST for selections (`σ_P`).
//!
//! Selectivity profiles (Fig 1 row 6) are parameterized by a selection
//! predicate `P`, e.g. `gender = F ∧ high_expenditure = yes` in the
//! paper's running example. This module provides that predicate
//! language and a vectorized evaluator producing a row mask.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::Value;
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality (loose across numeric types).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(&self, cell: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        // SQL semantics: comparisons involving NULL are false, except
        // explicit IS NULL handled by Predicate::IsNull.
        if cell.is_null() || rhs.is_null() {
            return false;
        }
        let ord = cell.total_cmp(rhs);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean expression over one tuple, evaluated row-wise against a
/// [`DataFrame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op literal`.
    Cmp {
        /// Attribute name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `column IS NULL`.
    IsNull(String),
    /// `column IS NOT NULL`.
    IsNotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Constant truth (useful as a fold identity).
    True,
}

impl Predicate {
    /// Convenience constructor for an atomic comparison.
    pub fn cmp<S: Into<String>, V: Into<Value>>(column: S, op: CmpOp, value: V) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Names of all attributes this predicate references (with
    /// duplicates removed, in first-mention order). The PVT–attribute
    /// graph uses this to connect Selectivity PVTs to attributes.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Predicate::Cmp { column, .. }
            | Predicate::IsNull(column)
            | Predicate::IsNotNull(column) => {
                if !out.iter().any(|c| c == column) {
                    out.push(column.clone());
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }

    /// Evaluate against every row, producing a selection mask.
    ///
    /// Vectorized: combinators run word-wise over bitmaps and atomic
    /// comparisons run as typed loops over column chunks, matching
    /// [`Predicate::matches_row`] (i.e. [`CmpOp::apply`] over
    /// [`Value::total_cmp`]) bit for bit.
    pub fn evaluate(&self, df: &DataFrame) -> Result<Bitmap> {
        let n = df.n_rows();
        match self {
            Predicate::True => Ok(Bitmap::with_value(n, true)),
            Predicate::Cmp { column, op, value } => Ok(eval_cmp(df.column(column)?, *op, value)),
            Predicate::IsNull(column) => Ok(df.column(column)?.validity_mask().not()),
            Predicate::IsNotNull(column) => Ok(df.column(column)?.validity_mask()),
            Predicate::And(a, b) => Ok(a.evaluate(df)?.and(&b.evaluate(df)?)),
            Predicate::Or(a, b) => Ok(a.evaluate(df)?.or(&b.evaluate(df)?)),
            Predicate::Not(p) => Ok(p.evaluate(df)?.not()),
        }
    }

    /// Evaluate for a single row.
    pub fn matches_row(&self, df: &DataFrame, row: usize) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { column, op, value } => {
                Ok(op.apply(&df.column(column)?.get(row), value))
            }
            Predicate::IsNull(column) => Ok(df.column(column)?.is_null(row)),
            Predicate::IsNotNull(column) => Ok(!df.column(column)?.is_null(row)),
            Predicate::And(a, b) => Ok(a.matches_row(df, row)? && b.matches_row(df, row)?),
            Predicate::Or(a, b) => Ok(a.matches_row(df, row)? || b.matches_row(df, row)?),
            Predicate::Not(p) => Ok(!p.matches_row(df, row)?),
        }
    }
}

/// How a chunk's cells compare against the literal, resolved once per
/// chunk from the storage variant instead of per row through [`Value`].
enum CmpMode<'a> {
    /// Numeric cell vs numeric literal: `f64` total order.
    Num(f64),
    /// String cell vs string literal: lexicographic.
    Str(&'a str),
    /// Incomparable runtime types: [`Value::total_cmp`] falls back to
    /// ordering by type name, which is constant across the chunk.
    Fixed(std::cmp::Ordering),
}

/// Vectorized `column op literal` over the column's chunks. NULL
/// cells (and a NULL literal) never match, mirroring [`CmpOp::apply`].
fn eval_cmp(col: &Column, op: CmpOp, rhs: &Value) -> Bitmap {
    use std::cmp::Ordering;
    if rhs.is_null() {
        return Bitmap::with_value(col.len(), false);
    }
    let keep = |ord: Ordering| match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    };
    let mut out = Bitmap::new();
    for chunk in col.chunks() {
        let validity = chunk.validity();
        let mode = match (chunk.data(), rhs) {
            (ColumnData::Str(_), Value::Str(s)) => CmpMode::Str(s),
            (ColumnData::Str(_), _) => CmpMode::Fixed("Str".cmp(rhs.type_name())),
            (_, _) => match rhs.as_f64() {
                Some(y) => CmpMode::Num(y),
                // Numeric cell vs string literal: type-name order.
                None => match chunk.data() {
                    ColumnData::Int(_) => CmpMode::Fixed("Int".cmp(rhs.type_name())),
                    ColumnData::Float(_) => CmpMode::Fixed("Float".cmp(rhs.type_name())),
                    ColumnData::Bool(_) => CmpMode::Fixed("Bool".cmp(rhs.type_name())),
                    ColumnData::Str(_) => unreachable!("handled above"),
                },
            },
        };
        match (chunk.data(), &mode) {
            (ColumnData::Int(v), CmpMode::Num(y)) => {
                for (off, x) in v.iter().enumerate() {
                    out.push(validity.get(off) && keep((*x as f64).total_cmp(y)));
                }
            }
            (ColumnData::Float(v), CmpMode::Num(y)) => {
                for (off, x) in v.iter().enumerate() {
                    out.push(validity.get(off) && keep(x.total_cmp(y)));
                }
            }
            (ColumnData::Bool(v), CmpMode::Num(y)) => {
                for (off, b) in v.iter().enumerate() {
                    let x = *b as u8 as f64;
                    out.push(validity.get(off) && keep(x.total_cmp(y)));
                }
            }
            (ColumnData::Str(v), CmpMode::Str(s)) => {
                for (off, x) in v.iter().enumerate() {
                    out.push(validity.get(off) && keep(x.as_str().cmp(s)));
                }
            }
            (_, CmpMode::Fixed(ord)) => {
                // Constant verdict for every non-NULL cell: the chunk
                // mask is either all-false or the validity bitmap.
                if keep(*ord) {
                    out.append(validity);
                } else {
                    out.append(&Bitmap::with_value(chunk.len(), false));
                }
            }
            _ => unreachable!("mode matches the chunk's storage variant"),
        }
    }
    out
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::IsNull(c) => write!(f, "{c} IS NULL"),
            Predicate::IsNotNull(c) => write!(f, "{c} IS NOT NULL"),
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(p) => write!(f, "¬({p})"),
            Predicate::True => write!(f, "TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dtype::DType;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_ints("age", vec![Some(45), Some(22), None, Some(60)]),
            Column::from_strings(
                "gender",
                DType::Categorical,
                vec![
                    Some("F".into()),
                    Some("M".into()),
                    Some("F".into()),
                    Some("M".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn atomic_comparisons() {
        let d = df();
        let m = Predicate::cmp("age", CmpOp::Ge, 45).evaluate(&d).unwrap();
        let bits: Vec<bool> = m.iter().collect();
        assert_eq!(bits, vec![true, false, false, true]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let d = df();
        // NULL age row never matches < or >= comparisons.
        let lt = Predicate::cmp("age", CmpOp::Lt, 1000).evaluate(&d).unwrap();
        assert!(!lt.get(2));
        let ge = Predicate::cmp("age", CmpOp::Ge, 0).evaluate(&d).unwrap();
        assert!(!ge.get(2));
        // but IS NULL does.
        let isnull = Predicate::IsNull("age".into()).evaluate(&d).unwrap();
        assert_eq!(isnull.count_ones(), 1);
        assert!(isnull.get(2));
    }

    #[test]
    fn conjunction_matches_paper_example() {
        // gender = F ∧ age >= 40, the shape of the paper's Selectivity
        // predicate.
        let d = df();
        let p = Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp("age", CmpOp::Ge, 40));
        let m = p.evaluate(&d).unwrap();
        assert_eq!(m.count_ones(), 1);
        assert!(m.get(0));
    }

    #[test]
    fn disjunction_and_negation() {
        let d = df();
        let p = Predicate::cmp("age", CmpOp::Lt, 30)
            .or(Predicate::cmp("age", CmpOp::Gt, 50))
            .not();
        let m = p.evaluate(&d).unwrap();
        let bits: Vec<bool> = m.iter().collect();
        assert_eq!(bits, vec![true, false, true, false]);
    }

    #[test]
    fn columns_deduplicated() {
        let p = Predicate::cmp("a", CmpOp::Eq, 1)
            .and(Predicate::cmp("b", CmpOp::Eq, 2).or(Predicate::cmp("a", CmpOp::Gt, 0)));
        assert_eq!(p.columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn matches_row_agrees_with_evaluate() {
        let d = df();
        let p = Predicate::cmp("gender", CmpOp::Eq, "M");
        let m = p.evaluate(&d).unwrap();
        for i in 0..d.n_rows() {
            assert_eq!(p.matches_row(&d, i).unwrap(), m.get(i));
        }
    }

    #[test]
    fn missing_column_errors() {
        let d = df();
        assert!(Predicate::cmp("zip", CmpOp::Eq, 1).evaluate(&d).is_err());
    }

    #[test]
    fn display_renders() {
        let p = Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp("age", CmpOp::Ge, 40));
        assert_eq!(p.to_string(), "(gender = F ∧ age >= 40)");
    }

    /// Differential check: the vectorized evaluator must agree with
    /// the row-at-a-time reference on every row.
    fn assert_matches_reference(d: &DataFrame, p: &Predicate) {
        let m = p.evaluate(d).unwrap();
        assert_eq!(m.len(), d.n_rows());
        for i in 0..d.n_rows() {
            assert_eq!(m.get(i), p.matches_row(d, i).unwrap(), "row {i} of {p}");
        }
    }

    #[test]
    fn vectorized_matches_rowwise_across_chunk_boundaries() {
        use crate::column::CHUNK_ROWS;
        // Lengths around chunk and word boundaries, plus empty.
        for len in [
            0usize,
            1,
            63,
            64,
            65,
            CHUNK_ROWS - 1,
            CHUNK_ROWS,
            CHUNK_ROWS + 5,
        ] {
            let ages: Vec<Option<i64>> = (0..len as i64)
                .map(|i| if i % 7 == 0 { None } else { Some(i % 90) })
                .collect();
            let genders: Vec<Option<String>> = (0..len)
                .map(|i| match i % 3 {
                    0 => Some("F".to_string()),
                    1 => Some("M".to_string()),
                    _ => None,
                })
                .collect();
            let d = DataFrame::from_columns(vec![
                Column::from_ints("age", ages),
                Column::from_strings("gender", DType::Categorical, genders),
            ])
            .unwrap();
            for p in [
                Predicate::True,
                Predicate::cmp("age", CmpOp::Ge, 45),
                Predicate::cmp("age", CmpOp::Lt, 10).or(Predicate::cmp("gender", CmpOp::Eq, "F")),
                Predicate::cmp("gender", CmpOp::Eq, "F")
                    .and(Predicate::cmp("age", CmpOp::Ge, 40))
                    .not(),
                Predicate::IsNull("age".into()),
                Predicate::IsNotNull("gender".into()),
                // Mismatched literal types: constant type-name order.
                Predicate::cmp("age", CmpOp::Eq, "45"),
                Predicate::cmp("gender", CmpOp::Lt, 3),
                Predicate::cmp("age", CmpOp::Ne, "x"),
                // NULL literal never matches.
                Predicate::cmp("age", CmpOp::Eq, Value::Null),
            ] {
                assert_matches_reference(&d, &p);
            }
        }
    }

    #[test]
    fn all_null_column_predicates() {
        let d = DataFrame::from_columns(vec![Column::from_ints("x", vec![None; 70])]).unwrap();
        let isnull = Predicate::IsNull("x".into()).evaluate(&d).unwrap();
        assert_eq!(isnull.count_ones(), 70);
        let cmp = Predicate::cmp("x", CmpOp::Le, 1_000_000)
            .evaluate(&d)
            .unwrap();
        assert_eq!(cmp.count_ones(), 0);
        assert_matches_reference(&d, &Predicate::cmp("x", CmpOp::Ne, 0));
    }

    #[test]
    fn float_and_bool_fast_paths_match_reference() {
        let d = DataFrame::from_columns(vec![
            Column::from_floats(
                "score",
                (0..130)
                    .map(|i| {
                        if i % 11 == 0 {
                            None
                        } else {
                            Some(i as f64 / 3.0 - 10.0)
                        }
                    })
                    .collect(),
            ),
            Column::from_bools("flag", (0..130).map(|i| Some(i % 2 == 0)).collect()),
        ])
        .unwrap();
        for p in [
            Predicate::cmp("score", CmpOp::Gt, 0.0),
            Predicate::cmp("score", CmpOp::Le, -5.0),
            Predicate::cmp("flag", CmpOp::Eq, true),
            Predicate::cmp("flag", CmpOp::Eq, 1),
            Predicate::cmp("score", CmpOp::Eq, 7), // Int literal vs Float column
        ] {
            assert_matches_reference(&d, &p);
        }
    }
}
