//! Boolean predicate AST for selections (`σ_P`).
//!
//! Selectivity profiles (Fig 1 row 6) are parameterized by a selection
//! predicate `P`, e.g. `gender = F ∧ high_expenditure = yes` in the
//! paper's running example. This module provides that predicate
//! language and a vectorized evaluator producing a row mask.

use crate::bitmap::Bitmap;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::Value;
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality (loose across numeric types).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(&self, cell: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        // SQL semantics: comparisons involving NULL are false, except
        // explicit IS NULL handled by Predicate::IsNull.
        if cell.is_null() || rhs.is_null() {
            return false;
        }
        let ord = cell.total_cmp(rhs);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean expression over one tuple, evaluated row-wise against a
/// [`DataFrame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op literal`.
    Cmp {
        /// Attribute name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `column IS NULL`.
    IsNull(String),
    /// `column IS NOT NULL`.
    IsNotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Constant truth (useful as a fold identity).
    True,
}

impl Predicate {
    /// Convenience constructor for an atomic comparison.
    pub fn cmp<S: Into<String>, V: Into<Value>>(column: S, op: CmpOp, value: V) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Names of all attributes this predicate references (with
    /// duplicates removed, in first-mention order). The PVT–attribute
    /// graph uses this to connect Selectivity PVTs to attributes.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Predicate::Cmp { column, .. }
            | Predicate::IsNull(column)
            | Predicate::IsNotNull(column) => {
                if !out.iter().any(|c| c == column) {
                    out.push(column.clone());
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }

    /// Evaluate against every row, producing a selection mask.
    pub fn evaluate(&self, df: &DataFrame) -> Result<Bitmap> {
        let n = df.n_rows();
        match self {
            Predicate::True => Ok(Bitmap::with_value(n, true)),
            Predicate::Cmp { column, op, value } => {
                let col = df.column(column)?;
                Ok(Bitmap::from_iter(
                    (0..n).map(|i| op.apply(&col.get(i), value)),
                ))
            }
            Predicate::IsNull(column) => {
                let col = df.column(column)?;
                Ok(Bitmap::from_iter((0..n).map(|i| col.is_null(i))))
            }
            Predicate::IsNotNull(column) => {
                let col = df.column(column)?;
                Ok(Bitmap::from_iter((0..n).map(|i| !col.is_null(i))))
            }
            Predicate::And(a, b) => {
                let ma = a.evaluate(df)?;
                let mb = b.evaluate(df)?;
                Ok(Bitmap::from_iter((0..n).map(|i| ma.get(i) && mb.get(i))))
            }
            Predicate::Or(a, b) => {
                let ma = a.evaluate(df)?;
                let mb = b.evaluate(df)?;
                Ok(Bitmap::from_iter((0..n).map(|i| ma.get(i) || mb.get(i))))
            }
            Predicate::Not(p) => {
                let m = p.evaluate(df)?;
                Ok(Bitmap::from_iter((0..n).map(|i| !m.get(i))))
            }
        }
    }

    /// Evaluate for a single row.
    pub fn matches_row(&self, df: &DataFrame, row: usize) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { column, op, value } => {
                Ok(op.apply(&df.column(column)?.get(row), value))
            }
            Predicate::IsNull(column) => Ok(df.column(column)?.is_null(row)),
            Predicate::IsNotNull(column) => Ok(!df.column(column)?.is_null(row)),
            Predicate::And(a, b) => Ok(a.matches_row(df, row)? && b.matches_row(df, row)?),
            Predicate::Or(a, b) => Ok(a.matches_row(df, row)? || b.matches_row(df, row)?),
            Predicate::Not(p) => Ok(!p.matches_row(df, row)?),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::IsNull(c) => write!(f, "{c} IS NULL"),
            Predicate::IsNotNull(c) => write!(f, "{c} IS NOT NULL"),
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(p) => write!(f, "¬({p})"),
            Predicate::True => write!(f, "TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dtype::DType;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_ints("age", vec![Some(45), Some(22), None, Some(60)]),
            Column::from_strings(
                "gender",
                DType::Categorical,
                vec![
                    Some("F".into()),
                    Some("M".into()),
                    Some("F".into()),
                    Some("M".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn atomic_comparisons() {
        let d = df();
        let m = Predicate::cmp("age", CmpOp::Ge, 45).evaluate(&d).unwrap();
        let bits: Vec<bool> = m.iter().collect();
        assert_eq!(bits, vec![true, false, false, true]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let d = df();
        // NULL age row never matches < or >= comparisons.
        let lt = Predicate::cmp("age", CmpOp::Lt, 1000).evaluate(&d).unwrap();
        assert!(!lt.get(2));
        let ge = Predicate::cmp("age", CmpOp::Ge, 0).evaluate(&d).unwrap();
        assert!(!ge.get(2));
        // but IS NULL does.
        let isnull = Predicate::IsNull("age".into()).evaluate(&d).unwrap();
        assert_eq!(isnull.count_ones(), 1);
        assert!(isnull.get(2));
    }

    #[test]
    fn conjunction_matches_paper_example() {
        // gender = F ∧ age >= 40, the shape of the paper's Selectivity
        // predicate.
        let d = df();
        let p = Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp("age", CmpOp::Ge, 40));
        let m = p.evaluate(&d).unwrap();
        assert_eq!(m.count_ones(), 1);
        assert!(m.get(0));
    }

    #[test]
    fn disjunction_and_negation() {
        let d = df();
        let p = Predicate::cmp("age", CmpOp::Lt, 30)
            .or(Predicate::cmp("age", CmpOp::Gt, 50))
            .not();
        let m = p.evaluate(&d).unwrap();
        let bits: Vec<bool> = m.iter().collect();
        assert_eq!(bits, vec![true, false, true, false]);
    }

    #[test]
    fn columns_deduplicated() {
        let p = Predicate::cmp("a", CmpOp::Eq, 1)
            .and(Predicate::cmp("b", CmpOp::Eq, 2).or(Predicate::cmp("a", CmpOp::Gt, 0)));
        assert_eq!(p.columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn matches_row_agrees_with_evaluate() {
        let d = df();
        let p = Predicate::cmp("gender", CmpOp::Eq, "M");
        let m = p.evaluate(&d).unwrap();
        for i in 0..d.n_rows() {
            assert_eq!(p.matches_row(&d, i).unwrap(), m.get(i));
        }
    }

    #[test]
    fn missing_column_errors() {
        let d = df();
        assert!(Predicate::cmp("zip", CmpOp::Eq, 1).evaluate(&d).is_err());
    }

    #[test]
    fn display_renders() {
        let p = Predicate::cmp("gender", CmpOp::Eq, "F").and(Predicate::cmp("age", CmpOp::Ge, 40));
        assert_eq!(p.to_string(), "(gender = F ∧ age >= 40)");
    }
}
