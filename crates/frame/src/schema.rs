//! Schema: ordered, named, typed fields.

use crate::dtype::DType;
use crate::error::{FrameError, Result};
use std::fmt;

/// One attribute `A_j` of the relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Logical type.
    pub dtype: DType,
}

impl Field {
    /// Construct a field.
    pub fn new<S: Into<String>>(name: S, dtype: DType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// The relation schema `R(A_1, …, A_m)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(FrameError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Number of attributes (`m`).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Whether an attribute exists, by name.
    pub fn contains(&self, name: &str) -> bool {
        self.field(name).is_some()
    }

    /// Declared dtype of an attribute, by name.
    pub fn dtype_of(&self, name: &str) -> Option<DType> {
        self.field(name).map(|f| f.dtype)
    }

    /// Names of the numeric attributes ([`DType::is_numeric`]), in
    /// schema order.
    pub fn numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of the string-backed attributes ([`DType::is_string`]),
    /// in schema order.
    pub fn string_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.dtype.is_string())
            .map(|f| f.name.as_str())
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DType::Int),
            Field::new("a", DType::Float),
        ])
        .unwrap_err();
        assert!(matches!(err, FrameError::DuplicateColumn(_)));
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            Field::new("age", DType::Int),
            Field::new("name", DType::Text),
        ])
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("zip"), None);
        assert_eq!(s.field("age").unwrap().dtype, DType::Int);
        assert_eq!(s.names(), vec!["age", "name"]);
    }

    #[test]
    fn introspection_helpers() {
        let s = Schema::new(vec![
            Field::new("age", DType::Int),
            Field::new("score", DType::Float),
            Field::new("flag", DType::Bool),
            Field::new("name", DType::Text),
            Field::new("code", DType::Categorical),
        ])
        .unwrap();
        assert!(s.contains("age") && !s.contains("zip"));
        assert_eq!(s.dtype_of("score"), Some(DType::Float));
        assert_eq!(s.dtype_of("zip"), None);
        assert_eq!(s.numeric_names(), vec!["age", "score"]);
        assert_eq!(s.string_names(), vec!["name", "code"]);
    }

    #[test]
    fn display_is_relational() {
        let s = Schema::new(vec![Field::new("age", DType::Int)]).unwrap();
        assert_eq!(s.to_string(), "R(age: Int)");
    }
}
