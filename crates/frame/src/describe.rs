//! Dataset summaries: `describe()` and sorting.
//!
//! Diagnosis sessions start with "what does this data look like";
//! these utilities give examples and reports a compact way to show
//! it. Kept out of `frame.rs` so the core relation type stays lean.

use crate::column::Column;
use crate::dtype::DType;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::Value;

/// Per-column summary of a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub dtype: DType,
    /// Row count.
    pub len: usize,
    /// NULL count.
    pub nulls: usize,
    /// Distinct non-NULL values (rendered).
    pub distinct: usize,
    /// Min/max for numeric columns.
    pub min_max: Option<(f64, f64)>,
    /// Mean for numeric columns.
    pub mean: Option<f64>,
    /// Most frequent rendered value and its count.
    pub mode: Option<(String, usize)>,
}

/// Summarize every column of `df`.
pub fn describe(df: &DataFrame) -> Vec<ColumnSummary> {
    df.columns().iter().map(summarize_column).collect()
}

fn summarize_column(col: &Column) -> ColumnSummary {
    let counts = col.value_counts();
    let distinct = counts.len();
    let mode = counts.into_iter().max_by_key(|(_, c)| *c);
    let numeric: Vec<f64> = col.f64_values().into_iter().map(|(_, v)| v).collect();
    let mean = if numeric.is_empty() {
        None
    } else {
        Some(numeric.iter().sum::<f64>() / numeric.len() as f64)
    };
    ColumnSummary {
        name: col.name().to_string(),
        dtype: col.dtype(),
        len: col.len(),
        nulls: col.null_count(),
        distinct,
        min_max: col.min_max(),
        mean,
        mode,
    }
}

/// Render the summaries as an aligned text table.
pub fn describe_table(df: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:<12} {:>6} {:>6} {:>8} {:>22} {:>10}\n",
        "column", "dtype", "rows", "nulls", "distinct", "range", "mean"
    ));
    for s in describe(df) {
        let range = s
            .min_max
            .map(|(lo, hi)| format!("[{lo:.3}, {hi:.3}]"))
            .unwrap_or_default();
        let mean = s.mean.map(|m| format!("{m:.3}")).unwrap_or_default();
        out.push_str(&format!(
            "{:<20} {:<12} {:>6} {:>6} {:>8} {:>22} {:>10}\n",
            s.name,
            s.dtype.to_string(),
            s.len,
            s.nulls,
            s.distinct,
            range,
            mean
        ));
    }
    out
}

/// Row indices of `df` sorted by the given column (NULLs first,
/// ascending by [`Value::total_cmp`]; stable).
pub fn sort_indices(df: &DataFrame, column: &str, descending: bool) -> Result<Vec<usize>> {
    let col = df.column(column)?;
    let mut idx: Vec<usize> = (0..df.n_rows()).collect();
    idx.sort_by(|&a, &b| {
        let ord = col.get(a).total_cmp(&col.get(b));
        if descending {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(idx)
}

/// A copy of `df` sorted by the given column.
pub fn sort_by(df: &DataFrame, column: &str, descending: bool) -> Result<DataFrame> {
    let idx = sort_indices(df, column, descending)?;
    df.take(&idx)
}

/// Top-`k` rows by a column (descending).
pub fn top_k(df: &DataFrame, column: &str, k: usize) -> Result<DataFrame> {
    let idx = sort_indices(df, column, true)?;
    df.take(&idx[..idx.len().min(k)])
}

/// Rendered distinct-value histogram of one column (counts,
/// descending), capped at `max_rows` lines.
pub fn value_histogram(df: &DataFrame, column: &str, max_rows: usize) -> Result<String> {
    let col = df.column(column)?;
    let mut counts = col.value_counts();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    let mut out = String::new();
    for (value, count) in counts.into_iter().take(max_rows) {
        let frac = count as f64 / total.max(1) as f64;
        let bar = "#".repeat((frac * 40.0).round() as usize);
        out.push_str(&format!("{value:<16} {count:>6} {bar}\n"));
    }
    if col.null_count() > 0 {
        out.push_str(&format!("{:<16} {:>6} (NULL)\n", "∅", col.null_count()));
    }
    let _ = Value::Null; // Value is part of this module's contract
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_ints("age", vec![Some(40), Some(20), None, Some(30)]),
            Column::from_strings(
                "city",
                DType::Categorical,
                vec![
                    Some("b".into()),
                    Some("a".into()),
                    Some("a".into()),
                    Some("c".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn describe_summarizes_each_column() {
        let s = describe(&frame());
        assert_eq!(s.len(), 2);
        let age = &s[0];
        assert_eq!(age.name, "age");
        assert_eq!(age.nulls, 1);
        assert_eq!(age.distinct, 3);
        assert_eq!(age.min_max, Some((20.0, 40.0)));
        assert!((age.mean.unwrap() - 30.0).abs() < 1e-12);
        let city = &s[1];
        assert_eq!(city.mode, Some(("a".to_string(), 2)));
        assert!(city.min_max.is_none());
    }

    #[test]
    fn describe_table_renders() {
        let t = describe_table(&frame());
        assert!(t.contains("age"));
        assert!(t.contains("city"));
        assert!(t.contains("[20.000, 40.000]"));
    }

    #[test]
    fn sorting_is_stable_with_nulls_first() {
        let sorted = sort_by(&frame(), "age", false).unwrap();
        let ages: Vec<String> = (0..4)
            .map(|i| sorted.cell(i, "age").unwrap().to_string())
            .collect();
        assert_eq!(ages, vec!["", "20", "30", "40"]);
        let desc = sort_by(&frame(), "age", true).unwrap();
        assert_eq!(desc.cell(0, "age").unwrap().to_string(), "40");
    }

    #[test]
    fn top_k_takes_largest() {
        let top = top_k(&frame(), "age", 2).unwrap();
        assert_eq!(top.n_rows(), 2);
        assert_eq!(top.cell(0, "age").unwrap().to_string(), "40");
        assert_eq!(top.cell(1, "age").unwrap().to_string(), "30");
    }

    #[test]
    fn histogram_orders_by_count() {
        let h = value_histogram(&frame(), "city", 10).unwrap();
        let first = h.lines().next().unwrap();
        assert!(first.starts_with('a'), "{h}");
        let h = value_histogram(&frame(), "age", 10).unwrap();
        assert!(h.contains("(NULL)"));
    }
}
