//! Minimal CSV reader/writer with type inference.
//!
//! Examples write generated scenario datasets to disk so users can
//! inspect the passing/failing data the framework reasons about, and
//! read datasets back in. The dialect is RFC-4180-ish: comma
//! separator, double-quote quoting with `""` escapes, `\n`/`\r\n`
//! records; empty fields are NULL.

use crate::builder::DataFrameBuilder;
use crate::column::Column;
use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use crate::value::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Split one CSV record into fields, honoring quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(FrameError::Csv(format!(
                            "line {line_no}: quote inside unquoted field"
                        )));
                    }
                }
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv(format!("line {line_no}: unclosed quote")));
    }
    fields.push(cur);
    Ok(fields)
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Infer a column dtype from raw string fields (empty = NULL).
///
/// Ints that all parse stay `Int`; otherwise floats; otherwise
/// `true`/`false` booleans; string columns become `Categorical` when
/// the distinct-value count is small relative to the data, `Text`
/// otherwise.
fn infer_dtype(raw: &[Option<&str>]) -> DType {
    let present: Vec<&str> = raw.iter().flatten().copied().collect();
    if present.is_empty() {
        return DType::Text;
    }
    if present.iter().all(|s| s.parse::<i64>().is_ok()) {
        return DType::Int;
    }
    if present.iter().all(|s| s.parse::<f64>().is_ok()) {
        return DType::Float;
    }
    if present
        .iter()
        .all(|s| s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false"))
    {
        return DType::Bool;
    }
    let distinct: std::collections::HashSet<&str> = present.iter().copied().collect();
    // Heuristic mirroring common profilers: low cardinality => category.
    if distinct.len() <= 20 || distinct.len() * 2 <= present.len() {
        DType::Categorical
    } else {
        DType::Text
    }
}

fn parse_value(raw: Option<&str>, dtype: DType, column: &str) -> Result<Value> {
    let Some(s) = raw else { return Ok(Value::Null) };
    match dtype {
        DType::Int => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| FrameError::TypeMismatch {
                column: column.to_string(),
                expected: "Int".into(),
                found: s.to_string(),
            }),
        DType::Float => s
            .parse::<f64>()
            .map(Value::from)
            .map_err(|_| FrameError::TypeMismatch {
                column: column.to_string(),
                expected: "Float".into(),
                found: s.to_string(),
            }),
        DType::Bool => {
            if s.eq_ignore_ascii_case("true") {
                Ok(Value::Bool(true))
            } else if s.eq_ignore_ascii_case("false") {
                Ok(Value::Bool(false))
            } else {
                Err(FrameError::TypeMismatch {
                    column: column.to_string(),
                    expected: "Bool".into(),
                    found: s.to_string(),
                })
            }
        }
        DType::Categorical | DType::Text => Ok(Value::Str(s.to_string())),
    }
}

/// Read a CSV document (header row required) with dtype inference.
pub fn read_csv<R: Read>(reader: R) -> Result<DataFrame> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in buf.lines() {
        let line = line?;
        if !line.is_empty() {
            lines.push(line);
        }
    }
    if lines.is_empty() {
        return Err(FrameError::Csv("empty document".into()));
    }
    let header = split_record(&lines[0], 1)?;
    let n_cols = header.len();
    let mut raw_rows: Vec<Vec<Option<String>>> = Vec::with_capacity(lines.len() - 1);
    for (i, line) in lines.iter().enumerate().skip(1) {
        let fields = split_record(line, i + 1)?;
        if fields.len() != n_cols {
            return Err(FrameError::Csv(format!(
                "line {}: expected {} fields, found {}",
                i + 1,
                n_cols,
                fields.len()
            )));
        }
        raw_rows.push(
            fields
                .into_iter()
                .map(|f| if f.is_empty() { None } else { Some(f) })
                .collect(),
        );
    }
    let mut dtypes = Vec::with_capacity(n_cols);
    for j in 0..n_cols {
        let col_raw: Vec<Option<&str>> = raw_rows.iter().map(|r| r[j].as_deref()).collect();
        dtypes.push(infer_dtype(&col_raw));
    }
    let fields: Vec<(&str, DType)> = header
        .iter()
        .map(|h| h.as_str())
        .zip(dtypes.iter().copied())
        .collect();
    let mut builder = DataFrameBuilder::with_fields(&fields);
    for (i, raw) in raw_rows.iter().enumerate() {
        let mut row = Vec::with_capacity(n_cols);
        for (j, cell) in raw.iter().enumerate() {
            row.push(
                parse_value(cell.as_deref(), dtypes[j], &header[j])
                    .map_err(|e| FrameError::Csv(format!("line {}: {e}", i + 2)))?,
            );
        }
        builder.push_row(row)?;
    }
    Ok(builder.build())
}

/// Read a CSV file from a path.
pub fn read_csv_path<P: AsRef<Path>>(path: P) -> Result<DataFrame> {
    let file = std::fs::File::open(path)?;
    read_csv(file)
}

/// Write a frame as CSV (header + rows; NULL as empty field).
pub fn write_csv<W: Write>(df: &DataFrame, mut writer: W) -> Result<()> {
    let names: Vec<String> = df.columns().iter().map(|c| quote_field(c.name())).collect();
    writeln!(writer, "{}", names.join(","))?;
    for i in 0..df.n_rows() {
        let row: Vec<String> = df
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(i);
                if v.is_null() {
                    String::new()
                } else {
                    quote_field(&v.to_string())
                }
            })
            .collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

/// Write a frame as a CSV file at `path`.
pub fn write_csv_path<P: AsRef<Path>>(df: &DataFrame, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(df, std::io::BufWriter::new(file))
}

/// Explicit-schema variant of [`read_csv`] that skips inference. The
/// `(name, dtype)` list must match the header.
pub fn read_csv_with_schema<R: Read>(reader: R, fields: &[(&str, DType)]) -> Result<DataFrame> {
    let df = read_csv(reader)?;
    if df.n_cols() != fields.len() {
        return Err(FrameError::Csv(format!(
            "schema has {} columns, file has {}",
            fields.len(),
            df.n_cols()
        )));
    }
    let mut cols: Vec<Column> = Vec::with_capacity(fields.len());
    for (col, (name, dtype)) in df.columns().iter().zip(fields) {
        if col.name() != *name {
            return Err(FrameError::Csv(format!(
                "expected column {name:?}, file has {:?}",
                col.name()
            )));
        }
        let values: Vec<Value> = col
            .iter()
            .map(|v| match (v, dtype) {
                (Value::Null, _) => Value::Null,
                (v, DType::Categorical | DType::Text) => Value::Str(v.to_string()),
                (Value::Int(i), DType::Float) => Value::Float(i as f64),
                (Value::Str(s), DType::Int) => {
                    s.parse::<i64>().map(Value::Int).unwrap_or(Value::Null)
                }
                (Value::Str(s), DType::Float) => {
                    s.parse::<f64>().map(Value::from).unwrap_or(Value::Null)
                }
                (v, _) => v,
            })
            .collect();
        cols.push(Column::from_values(*name, *dtype, values)?);
    }
    DataFrame::from_columns(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_nulls_and_quotes() {
        let mut df = DataFrame::new();
        df.add_column(Column::from_ints("age", vec![Some(30), None]))
            .unwrap();
        df.add_column(Column::from_strings(
            "note",
            DType::Text,
            vec![Some("hello, \"world\"".into()), Some("plain".into())],
        ))
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&df, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("\"hello, \"\"world\"\"\""));
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.cell(0, "age").unwrap(), Value::Int(30));
        assert!(back.cell(1, "age").unwrap().is_null());
        assert_eq!(
            back.cell(0, "note").unwrap(),
            Value::Str("hello, \"world\"".into())
        );
    }

    #[test]
    fn infers_types() {
        let csv = "a,b,c,d\n1,1.5,true,x\n2,2.5,false,y\n3,,true,x\n";
        let df = read_csv(csv.as_bytes()).unwrap();
        let schema = df.schema();
        assert_eq!(schema.field("a").unwrap().dtype, DType::Int);
        assert_eq!(schema.field("b").unwrap().dtype, DType::Float);
        assert_eq!(schema.field("c").unwrap().dtype, DType::Bool);
        assert_eq!(schema.field("d").unwrap().dtype, DType::Categorical);
        assert!(df.cell(2, "b").unwrap().is_null());
    }

    #[test]
    fn rejects_ragged_rows_and_bad_quotes() {
        assert!(read_csv("a,b\n1\n".as_bytes()).is_err());
        assert!(read_csv("a\n\"unclosed\n".as_bytes()).is_err());
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        // One distinct value would infer Categorical; force Text.
        let csv = "id,tag\n1,aaa\n2,aaa\n";
        let df = read_csv_with_schema(
            csv.as_bytes(),
            &[("id", DType::Float), ("tag", DType::Text)],
        )
        .unwrap();
        assert_eq!(df.schema().field("id").unwrap().dtype, DType::Float);
        assert_eq!(df.schema().field("tag").unwrap().dtype, DType::Text);
        assert_eq!(df.cell(0, "id").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn path_roundtrip() {
        let dir = std::env::temp_dir().join("dp_frame_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let df =
            DataFrame::from_columns(vec![Column::from_ints("x", vec![Some(1), Some(2)])]).unwrap();
        write_csv_path(&df, &path).unwrap();
        let back = read_csv_path(&path).unwrap();
        assert_eq!(back.n_rows(), 2);
        std::fs::remove_file(&path).ok();
    }
}
