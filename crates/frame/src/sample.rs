//! Random row sampling.
//!
//! Interventions on Selectivity profiles (Fig 1 row 6) undersample
//! tuples satisfying a predicate, and the paper's example scenario
//! oversamples the underrepresented group; both need reproducible
//! random index selection.

use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample `n` row indices without replacement from `0..len`.
/// Errors if `n > len`.
pub fn sample_indices_without_replacement<R: Rng>(
    rng: &mut R,
    len: usize,
    n: usize,
) -> Result<Vec<usize>> {
    if n > len {
        return Err(FrameError::InvalidArgument(format!(
            "cannot sample {n} rows without replacement from {len}"
        )));
    }
    let mut idx: Vec<usize> = (0..len).collect();
    idx.shuffle(rng);
    idx.truncate(n);
    idx.sort_unstable();
    Ok(idx)
}

/// Sample `n` row indices with replacement from `0..len`.
/// Errors if `len == 0` and `n > 0`.
pub fn sample_indices_with_replacement<R: Rng>(
    rng: &mut R,
    len: usize,
    n: usize,
) -> Result<Vec<usize>> {
    if len == 0 && n > 0 {
        return Err(FrameError::InvalidArgument(
            "cannot sample with replacement from an empty frame".into(),
        ));
    }
    Ok((0..n).map(|_| rng.gen_range(0..len)).collect())
}

/// A uniform random subset of `n` rows of `df`, without replacement.
pub fn sample_rows<R: Rng>(rng: &mut R, df: &DataFrame, n: usize) -> Result<DataFrame> {
    let idx = sample_indices_without_replacement(rng, df.n_rows(), n)?;
    df.take(&idx)
}

/// Bootstrap sample: `n` rows with replacement.
pub fn bootstrap_rows<R: Rng>(rng: &mut R, df: &DataFrame, n: usize) -> Result<DataFrame> {
    let idx = sample_indices_with_replacement(rng, df.n_rows(), n)?;
    df.take(&idx)
}

/// Stratified sample of `n` indices from `0..len` without
/// replacement: rows are partitioned into `n_strata` contiguous
/// equal-width row ranges and each contributes proportionally to its
/// size (largest-remainder rounding), so the sample covers the whole
/// index range instead of clustering — the property the sampled
/// oracle's Hoeffding bound leans on when rows are ordered.
///
/// A stratum smaller than its quota contributes all of its rows and
/// the deficit is redistributed to strata with spare capacity, so the
/// result always has exactly `n` indices. Errors if `n > len`.
pub fn stratified_sample_indices<R: Rng>(
    rng: &mut R,
    len: usize,
    n: usize,
    n_strata: usize,
) -> Result<Vec<usize>> {
    if n > len {
        return Err(FrameError::InvalidArgument(format!(
            "cannot sample {n} rows without replacement from {len}"
        )));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let n_strata = n_strata.clamp(1, len);
    // Contiguous row ranges of near-equal width.
    let bounds: Vec<(usize, usize)> = (0..n_strata)
        .map(|s| (s * len / n_strata, (s + 1) * len / n_strata))
        .collect();
    // Proportional quotas by largest remainder, capped at the stratum
    // size (a small stratum must not be over-drawn).
    let mut quotas: Vec<usize> = Vec::with_capacity(n_strata);
    let mut remainders: Vec<(usize, usize)> = Vec::with_capacity(n_strata);
    let mut assigned = 0usize;
    for (s, &(lo, hi)) in bounds.iter().enumerate() {
        let size = hi - lo;
        let exact = n * size; // quota = exact / len, remainder exact % len
        let q = (exact / len).min(size);
        remainders.push((exact % len, s));
        quotas.push(q);
        assigned += q;
    }
    // Hand out the rounding leftovers to the largest remainders
    // first, then fill any residual deficit (from capped strata) from
    // whichever strata still have spare capacity.
    remainders.sort_unstable_by(|a, b| b.cmp(a));
    for &(_, s) in &remainders {
        if assigned == n {
            break;
        }
        let (lo, hi) = bounds[s];
        if quotas[s] < hi - lo {
            quotas[s] += 1;
            assigned += 1;
        }
    }
    for (s, &(lo, hi)) in bounds.iter().enumerate() {
        while assigned < n && quotas[s] < hi - lo {
            quotas[s] += 1;
            assigned += 1;
        }
    }
    debug_assert_eq!(assigned, n, "quotas must cover the request exactly");
    let mut out = Vec::with_capacity(n);
    for (&(lo, hi), &q) in bounds.iter().zip(&quotas) {
        let within = sample_indices_without_replacement(rng, hi - lo, q)?;
        out.extend(within.into_iter().map(|i| lo + i));
    }
    out.sort_unstable();
    Ok(out)
}

/// Split `df` into (train, test) by shuffling rows and cutting at
/// `train_fraction`. Errors on fractions outside `(0, 1)`.
pub fn train_test_split<R: Rng>(
    rng: &mut R,
    df: &DataFrame,
    train_fraction: f64,
) -> Result<(DataFrame, DataFrame)> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(FrameError::InvalidArgument(format!(
            "train_fraction must be in (0,1), got {train_fraction}"
        )));
    }
    let mut idx: Vec<usize> = (0..df.n_rows()).collect();
    idx.shuffle(rng);
    let cut = ((df.n_rows() as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, df.n_rows().saturating_sub(1).max(1));
    let (train_idx, test_idx) = idx.split_at(cut.min(idx.len()));
    Ok((df.take(train_idx)?, df.take(test_idx)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn df(n: usize) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_ints(
            "id",
            (0..n as i64).map(Some).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn without_replacement_is_a_subset() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = sample_indices_without_replacement(&mut rng, 100, 30).unwrap();
        assert_eq!(idx.len(), 30);
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "no repeats");
        assert!(idx.iter().all(|&i| i < 100));
        assert!(sample_indices_without_replacement(&mut rng, 5, 6).is_err());
    }

    #[test]
    fn with_replacement_allows_repeats() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = sample_indices_with_replacement(&mut rng, 3, 50).unwrap();
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 3));
        assert!(sample_indices_with_replacement(&mut rng, 0, 1).is_err());
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let d = df(100);
        let a = sample_rows(&mut StdRng::seed_from_u64(42), &d, 10).unwrap();
        let b = sample_rows(&mut StdRng::seed_from_u64(42), &d, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = df(50);
        let (train, test) = train_test_split(&mut StdRng::seed_from_u64(1), &d, 0.8).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), 50);
        assert_eq!(train.n_rows(), 40);
        assert!(train_test_split(&mut StdRng::seed_from_u64(1), &d, 1.5).is_err());
    }

    #[test]
    fn bootstrap_has_requested_size() {
        let d = df(10);
        let b = bootstrap_rows(&mut StdRng::seed_from_u64(3), &d, 25).unwrap();
        assert_eq!(b.n_rows(), 25);
    }

    #[test]
    fn stratified_draws_exactly_n_unique_in_range() {
        for (len, n, strata) in [
            (100usize, 30usize, 8usize),
            (97, 41, 10),
            (64, 64, 7),
            (1000, 1, 16),
            (5, 5, 16), // more strata than rows
            (10, 0, 4),
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            let idx = stratified_sample_indices(&mut rng, len, n, strata).unwrap();
            assert_eq!(idx.len(), n, "len={len} n={n} strata={strata}");
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            assert!(idx.iter().all(|&i| i < len));
        }
        let mut rng = StdRng::seed_from_u64(11);
        assert!(stratified_sample_indices(&mut rng, 5, 6, 2).is_err());
    }

    /// Regression: a stratum smaller than the per-stratum quota must
    /// contribute all its rows (never over-draw) and the deficit must
    /// be made up elsewhere (never under-draw).
    #[test]
    fn stratified_small_stratum_redistributes_deficit() {
        // len 65, 16 strata → widths alternate 4 and 5; asking for 60
        // of 65 rows forces quotas above several strata's sizes.
        let mut rng = StdRng::seed_from_u64(3);
        let idx = stratified_sample_indices(&mut rng, 65, 60, 16).unwrap();
        assert_eq!(idx.len(), 60);
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 60, "no index drawn twice");
        // Degenerate: n == len must return every index regardless of
        // how unevenly the strata divide.
        let mut rng = StdRng::seed_from_u64(3);
        let all = stratified_sample_indices(&mut rng, 65, 65, 16).unwrap();
        assert_eq!(all, (0..65).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_covers_every_stratum() {
        // 10 strata of 100 rows each; 20 draws → every stratum must
        // contribute exactly 2 (proportional quotas, no clustering).
        let mut rng = StdRng::seed_from_u64(9);
        let idx = stratified_sample_indices(&mut rng, 1000, 20, 10).unwrap();
        for s in 0..10 {
            let in_stratum = idx
                .iter()
                .filter(|&&i| i >= s * 100 && i < (s + 1) * 100)
                .count();
            assert_eq!(in_stratum, 2, "stratum {s}");
        }
    }
}
