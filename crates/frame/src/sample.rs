//! Random row sampling.
//!
//! Interventions on Selectivity profiles (Fig 1 row 6) undersample
//! tuples satisfying a predicate, and the paper's example scenario
//! oversamples the underrepresented group; both need reproducible
//! random index selection.

use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample `n` row indices without replacement from `0..len`.
/// Errors if `n > len`.
pub fn sample_indices_without_replacement<R: Rng>(
    rng: &mut R,
    len: usize,
    n: usize,
) -> Result<Vec<usize>> {
    if n > len {
        return Err(FrameError::InvalidArgument(format!(
            "cannot sample {n} rows without replacement from {len}"
        )));
    }
    let mut idx: Vec<usize> = (0..len).collect();
    idx.shuffle(rng);
    idx.truncate(n);
    idx.sort_unstable();
    Ok(idx)
}

/// Sample `n` row indices with replacement from `0..len`.
/// Errors if `len == 0` and `n > 0`.
pub fn sample_indices_with_replacement<R: Rng>(
    rng: &mut R,
    len: usize,
    n: usize,
) -> Result<Vec<usize>> {
    if len == 0 && n > 0 {
        return Err(FrameError::InvalidArgument(
            "cannot sample with replacement from an empty frame".into(),
        ));
    }
    Ok((0..n).map(|_| rng.gen_range(0..len)).collect())
}

/// A uniform random subset of `n` rows of `df`, without replacement.
pub fn sample_rows<R: Rng>(rng: &mut R, df: &DataFrame, n: usize) -> Result<DataFrame> {
    let idx = sample_indices_without_replacement(rng, df.n_rows(), n)?;
    df.take(&idx)
}

/// Bootstrap sample: `n` rows with replacement.
pub fn bootstrap_rows<R: Rng>(rng: &mut R, df: &DataFrame, n: usize) -> Result<DataFrame> {
    let idx = sample_indices_with_replacement(rng, df.n_rows(), n)?;
    df.take(&idx)
}

/// Split `df` into (train, test) by shuffling rows and cutting at
/// `train_fraction`. Errors on fractions outside `(0, 1)`.
pub fn train_test_split<R: Rng>(
    rng: &mut R,
    df: &DataFrame,
    train_fraction: f64,
) -> Result<(DataFrame, DataFrame)> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(FrameError::InvalidArgument(format!(
            "train_fraction must be in (0,1), got {train_fraction}"
        )));
    }
    let mut idx: Vec<usize> = (0..df.n_rows()).collect();
    idx.shuffle(rng);
    let cut = ((df.n_rows() as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, df.n_rows().saturating_sub(1).max(1));
    let (train_idx, test_idx) = idx.split_at(cut.min(idx.len()));
    Ok((df.take(train_idx)?, df.take(test_idx)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn df(n: usize) -> DataFrame {
        DataFrame::from_columns(vec![Column::from_ints(
            "id",
            (0..n as i64).map(Some).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn without_replacement_is_a_subset() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = sample_indices_without_replacement(&mut rng, 100, 30).unwrap();
        assert_eq!(idx.len(), 30);
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "no repeats");
        assert!(idx.iter().all(|&i| i < 100));
        assert!(sample_indices_without_replacement(&mut rng, 5, 6).is_err());
    }

    #[test]
    fn with_replacement_allows_repeats() {
        let mut rng = StdRng::seed_from_u64(7);
        let idx = sample_indices_with_replacement(&mut rng, 3, 50).unwrap();
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 3));
        assert!(sample_indices_with_replacement(&mut rng, 0, 1).is_err());
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let d = df(100);
        let a = sample_rows(&mut StdRng::seed_from_u64(42), &d, 10).unwrap();
        let b = sample_rows(&mut StdRng::seed_from_u64(42), &d, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = df(50);
        let (train, test) = train_test_split(&mut StdRng::seed_from_u64(1), &d, 0.8).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), 50);
        assert_eq!(train.n_rows(), 40);
        assert!(train_test_split(&mut StdRng::seed_from_u64(1), &d, 1.5).is_err());
    }

    #[test]
    fn bootstrap_has_requested_size() {
        let d = df(10);
        let b = bootstrap_rows(&mut StdRng::seed_from_u64(3), &d, 25).unwrap();
        assert_eq!(b.n_rows(), 25);
    }
}
