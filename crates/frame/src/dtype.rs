//! Logical column types.

use crate::value::Value;
use std::fmt;

/// Logical type of a column.
///
/// The distinction between [`DType::Categorical`] and [`DType::Text`]
/// matters downstream: Fig 1 of the paper discovers a *domain set* for
/// categorical attributes (row 1) but a *learned pattern / length
/// bound* for text attributes (row 3), and χ²-based independence
/// profiles (row 7) only apply to categorical data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Booleans.
    Bool,
    /// Low-cardinality string data (domains, codes, labels).
    Categorical,
    /// Free-form string data (reviews, names, phone numbers).
    Text,
}

impl DType {
    /// True for `Int` and `Float`.
    #[inline]
    pub fn is_numeric(&self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }

    /// True for `Categorical` and `Text` (string-backed storage).
    #[inline]
    pub fn is_string(&self) -> bool {
        matches!(self, DType::Categorical | DType::Text)
    }

    /// Whether a [`Value`] is admissible in a column of this type.
    /// NULL is admissible everywhere.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DType::Int, Value::Int(_))
                | (DType::Float, Value::Float(_) | Value::Int(_))
                | (DType::Bool, Value::Bool(_))
                | (DType::Categorical | DType::Text, Value::Str(_))
        )
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Int => "Int",
            DType::Float => "Float",
            DType::Bool => "Bool",
            DType::Categorical => "Categorical",
            DType::Text => "Text",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_matching_values() {
        assert!(DType::Int.admits(&Value::Int(1)));
        assert!(!DType::Int.admits(&Value::Float(1.0)));
        assert!(DType::Float.admits(&Value::Int(1)), "ints widen to float");
        assert!(DType::Categorical.admits(&Value::Str("a".into())));
        assert!(DType::Text.admits(&Value::Str("a".into())));
        assert!(!DType::Bool.admits(&Value::Int(0)));
    }

    #[test]
    fn null_admissible_everywhere() {
        for dt in [
            DType::Int,
            DType::Float,
            DType::Bool,
            DType::Categorical,
            DType::Text,
        ] {
            assert!(dt.admits(&Value::Null));
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(DType::Int.is_numeric() && DType::Float.is_numeric());
        assert!(!DType::Categorical.is_numeric());
        assert!(DType::Text.is_string() && DType::Categorical.is_string());
        assert!(!DType::Bool.is_string());
    }
}
