//! Row-oriented frame construction.

use crate::column::Column;
use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::frame::DataFrame;
use crate::schema::Schema;
use crate::value::Value;

/// Builds a [`DataFrame`] row by row against a fixed schema.
///
/// Scenario generators produce tuples one entity at a time; the builder
/// turns those into typed columnar storage with per-row type checking.
#[derive(Debug, Clone)]
pub struct DataFrameBuilder {
    columns: Vec<Column>,
}

impl DataFrameBuilder {
    /// Start a builder for the given schema.
    pub fn new(schema: &Schema) -> Self {
        DataFrameBuilder {
            columns: schema
                .fields()
                .iter()
                .map(|f| Column::empty(f.name.clone(), f.dtype))
                .collect(),
        }
    }

    /// Start a builder from (name, dtype) pairs.
    pub fn with_fields(fields: &[(&str, DType)]) -> Self {
        DataFrameBuilder {
            columns: fields
                .iter()
                .map(|(n, t)| Column::empty(n.to_string(), *t))
                .collect(),
        }
    }

    /// Append one tuple. The row must have exactly one value per
    /// column, in schema order. On a mid-row type error the partially
    /// pushed prefix is rolled back is *not* attempted; instead we
    /// validate the whole row first so the builder never ends up
    /// ragged.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(FrameError::LengthMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(&row) {
            if !col.dtype().admits(v) {
                return Err(FrameError::TypeMismatch {
                    column: col.name().to_string(),
                    expected: col.dtype().to_string(),
                    found: v.type_name().to_string(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v).expect("validated above");
        }
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// True iff no rows appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish, producing the frame.
    pub fn build(self) -> DataFrame {
        DataFrame::from_columns(self.columns).expect("builder invariant: equal lengths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_typed_rows() {
        let mut b = DataFrameBuilder::with_fields(&[
            ("name", DType::Text),
            ("age", DType::Int),
            ("score", DType::Float),
        ]);
        b.push_row(vec!["alice".into(), 30.into(), 1.5.into()])
            .unwrap();
        b.push_row(vec![Value::Null, Value::Null, 7.into()])
            .unwrap();
        assert_eq!(b.len(), 2);
        let df = b.build();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.cell(0, "name").unwrap(), Value::Str("alice".into()));
        assert_eq!(df.cell(1, "score").unwrap(), Value::Float(7.0));
        assert!(df.cell(1, "age").unwrap().is_null());
    }

    #[test]
    fn rejects_ragged_and_mistyped_rows_atomically() {
        let mut b = DataFrameBuilder::with_fields(&[("a", DType::Int), ("b", DType::Int)]);
        assert!(b.push_row(vec![1.into()]).is_err());
        // Second value is mistyped: nothing must be appended.
        assert!(b.push_row(vec![1.into(), "x".into()]).is_err());
        assert_eq!(b.len(), 0);
        b.push_row(vec![1.into(), 2.into()]).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn from_schema() {
        use crate::schema::{Field, Schema};
        let schema = Schema::new(vec![Field::new("x", DType::Float)]).unwrap();
        let mut b = DataFrameBuilder::new(&schema);
        b.push_row(vec![2.5.into()]).unwrap();
        let df = b.build();
        assert_eq!(df.schema(), schema);
    }
}
