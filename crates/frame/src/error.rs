//! Error type shared by all dataframe operations.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, FrameError>;

/// Errors produced by dataframe construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Columns in a frame (or a row being appended) disagree in length
    /// or arity. The payload describes the mismatch.
    LengthMismatch(String),
    /// A value's runtime type does not match the column's [`crate::DType`].
    TypeMismatch {
        /// Name of the offending column.
        column: String,
        /// Expected logical type.
        expected: String,
        /// What was actually supplied.
        found: String,
    },
    /// A row index is out of bounds.
    RowOutOfBounds {
        /// Requested row index.
        index: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// CSV parsing failed; payload holds line number and description.
    Csv(String),
    /// An I/O error occurred (message-only to keep the error `Clone`).
    Io(String),
    /// An operation received invalid arguments (empty frame, bad
    /// fraction, …).
    InvalidArgument(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            FrameError::LengthMismatch(msg) => write!(f, "length mismatch: {msg}"),
            FrameError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in column {column:?}: expected {expected}, found {found}"
            ),
            FrameError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for frame of {len} rows")
            }
            FrameError::Csv(msg) => write!(f, "csv error: {msg}"),
            FrameError::Io(msg) => write!(f, "io error: {msg}"),
            FrameError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_descriptive() {
        let e = FrameError::ColumnNotFound("age".into());
        assert!(e.to_string().contains("age"));
        let e = FrameError::TypeMismatch {
            column: "age".into(),
            expected: "Int".into(),
            found: "Str".into(),
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains("Int") && s.contains("Str"));
        let e = FrameError::RowOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: FrameError = io.into();
        assert!(matches!(e, FrameError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
