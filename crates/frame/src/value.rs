//! Dynamically typed cell values.

use std::cmp::Ordering;
use std::fmt;

/// A single cell of a dataset: `t.A_j` in the paper's notation.
///
/// `Value` is the dynamically typed interchange currency between the
/// typed columnar storage and row-oriented consumers (builders, CSV,
/// predicates, transformations).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL-style NULL / missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is normalized to [`Value::Null`] at column
    /// boundaries so that profile arithmetic never sees NaN.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string (backs both `Categorical` and `Text` columns).
    Str(String),
}

impl Value {
    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` and `Float` (and `Bool` as 0/1) coerce to
    /// `f64`; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (exact; floats are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Bool(_) => "Bool",
            Value::Str(_) => "Str",
        }
    }

    /// Total comparison used by predicates and sorting.
    ///
    /// NULL sorts before everything; numeric types compare by value
    /// across `Int`/`Float`/`Bool`; strings compare lexicographically;
    /// values of incomparable types order by type name so the ordering
    /// is still total (needed for deterministic group-by keys).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => a.type_name().cmp(b.type_name()),
            },
        }
    }

    /// Equality for predicate evaluation: numeric cross-type equality
    /// (`Int(2) == Float(2.0)`), NULL equal only to NULL.
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Bool(true).total_cmp(&Value::Int(1)), Ordering::Equal);
    }

    #[test]
    fn null_sorts_first_and_only_equals_null() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert!(Value::Null.loose_eq(&Value::Null));
        assert!(!Value::Null.loose_eq(&Value::Int(0)));
    }

    #[test]
    fn nan_floats_become_null() {
        let v: Value = f64::NAN.into();
        assert!(v.is_null());
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Float(2.5).as_i64(), None);
    }

    #[test]
    fn option_conversion() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(3i64).into();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Str("ab".into()).to_string(), "ab");
    }
}
