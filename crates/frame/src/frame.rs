//! The `DataFrame`: a relation instance `D ⊆ Dom^m`.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{FrameError, Result};
use crate::predicate::Predicate;
use crate::schema::{Field, Schema};
use crate::value::Value;
use std::fmt;

/// An in-memory relation: equal-length named typed columns.
///
/// All of the paper's machinery — profile discovery, violation
/// scoring, and interventional transformations — operates on this
/// type. Transformations mutate columns in place via
/// [`DataFrame::column_mut`] or rebuild row sets via
/// [`DataFrame::take`] / [`DataFrame::filter`].
#[derive(Debug, Clone, Default)]
pub struct DataFrame {
    columns: Vec<Column>,
    /// Name → position index. Wide frames (the synthetic scaling
    /// experiments reach 10⁴ columns) need O(1) column lookup —
    /// per-PVT violation scoring does one lookup per candidate.
    index: std::collections::HashMap<String, usize>,
}

impl PartialEq for DataFrame {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns
    }
}

impl DataFrame {
    /// Empty frame (no columns, no rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from columns, validating equal lengths and unique names.
    pub fn from_columns(columns: Vec<Column>) -> Result<Self> {
        let mut df = DataFrame::new();
        for c in columns {
            df.add_column(c)?;
        }
        Ok(df)
    }

    /// Number of rows (`|D|`).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns (`m`).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True iff the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// The schema of this frame.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name(), c.dtype()))
                .collect(),
        )
        .expect("frame invariant: unique column names")
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| FrameError::ColumnNotFound(name.to_string()))
    }

    /// Mutable column by name (the intervention entry point).
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        match self.index.get(name) {
            Some(&i) => Ok(&mut self.columns[i]),
            None => Err(FrameError::ColumnNotFound(name.to_string())),
        }
    }

    /// Append a column; must match the current row count (unless the
    /// frame has no columns yet) and have a fresh name.
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.index.contains_key(column.name()) {
            return Err(FrameError::DuplicateColumn(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch(format!(
                "column {:?} has {} rows, frame has {}",
                column.name(),
                column.len(),
                self.n_rows()
            )));
        }
        self.index
            .insert(column.name().to_string(), self.columns.len());
        self.columns.push(column);
        Ok(())
    }

    /// Replace an existing column (same name) wholesale; must match
    /// the row count.
    pub fn replace_column(&mut self, column: Column) -> Result<()> {
        if column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch(format!(
                "replacement column {:?} has {} rows, frame has {}",
                column.name(),
                column.len(),
                self.n_rows()
            )));
        }
        let idx = *self
            .index
            .get(column.name())
            .ok_or_else(|| FrameError::ColumnNotFound(column.name().to_string()))?;
        self.columns[idx] = column;
        Ok(())
    }

    /// Drop a column by name, returning it.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let idx = *self
            .index
            .get(name)
            .ok_or_else(|| FrameError::ColumnNotFound(name.to_string()))?;
        let removed = self.columns.remove(idx);
        self.index.remove(name);
        for v in self.index.values_mut() {
            if *v > idx {
                *v -= 1;
            }
        }
        Ok(removed)
    }

    /// The tuple at `index` as owned values, in column order.
    pub fn row(&self, index: usize) -> Result<Vec<Value>> {
        if index >= self.n_rows() {
            return Err(FrameError::RowOutOfBounds {
                index,
                len: self.n_rows(),
            });
        }
        Ok(self.columns.iter().map(|c| c.get(index)).collect())
    }

    /// Single cell accessor.
    pub fn cell(&self, row: usize, column: &str) -> Result<Value> {
        let col = self.column(column)?;
        if row >= col.len() {
            return Err(FrameError::RowOutOfBounds {
                index: row,
                len: col.len(),
            });
        }
        Ok(col.get(row))
    }

    /// Projection: keep only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            cols.push(self.column(n)?.clone());
        }
        DataFrame::from_columns(cols)
    }

    /// Selection by bitmap mask (`σ` with a precomputed mask).
    pub fn filter(&self, mask: &Bitmap) -> Result<DataFrame> {
        if mask.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch(format!(
                "mask has {} bits, frame has {} rows",
                mask.len(),
                self.n_rows()
            )));
        }
        DataFrame::from_columns(self.columns.iter().map(|c| c.filter(mask)).collect())
    }

    /// Selection by predicate: `σ_P(D)`.
    pub fn filter_by(&self, predicate: &Predicate) -> Result<DataFrame> {
        let mask = predicate.evaluate(self)?;
        self.filter(&mask)
    }

    /// Fraction of tuples satisfying `predicate`: `|σ_P(D)| / |D|`.
    /// This is the paper's selectivity (Fig 1 row 6). Zero on an empty
    /// frame.
    pub fn selectivity(&self, predicate: &Predicate) -> Result<f64> {
        if self.is_empty() {
            return Ok(0.0);
        }
        let mask = predicate.evaluate(self)?;
        Ok(mask.count_ones() as f64 / self.n_rows() as f64)
    }

    /// Gather rows at `indices` (repeats allowed) into a new frame.
    /// Backs over/undersampling transformations.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.n_rows()) {
            return Err(FrameError::RowOutOfBounds {
                index: bad,
                len: self.n_rows(),
            });
        }
        DataFrame::from_columns(self.columns.iter().map(|c| c.take(indices)).collect())
    }

    /// Vertically concatenate another frame with an identical schema.
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.schema() != other.schema() {
            return Err(FrameError::LengthMismatch(
                "cannot concat frames with different schemas".into(),
            ));
        }
        let mut out = self.clone();
        for (col, other_col) in out.columns.iter_mut().zip(other.columns.iter()) {
            for v in other_col.iter() {
                col.push(v)?;
            }
        }
        Ok(out)
    }

    /// First `n` rows (or fewer).
    pub fn head(&self, n: usize) -> DataFrame {
        let idx: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&idx).expect("indices in range")
    }

    /// Approximate heap bytes of this frame's buffers, counting every
    /// chunk at full size even when shared — i.e. what an eager
    /// full-copy materialization of this frame would occupy.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }

    /// Whether the named column is backed by exactly the same chunk
    /// allocations in `self` and `other` — true for columns a
    /// copy-on-write clone has not yet written to.
    pub fn column_shares_chunks(&self, other: &DataFrame, name: &str) -> bool {
        match (self.column(name), other.column(name)) {
            (Ok(a), Ok(b)) => a.shares_chunks_with(b),
            _ => false,
        }
    }
}

/// Approximate heap bytes held by a set of frames *after* chunk
/// deduplication: each distinct chunk allocation is counted once, no
/// matter how many frames or columns share it. The gap between this
/// and the sum of [`DataFrame::heap_bytes`] is exactly what
/// copy-on-write saves.
pub fn unique_heap_bytes<'a, I: IntoIterator<Item = &'a DataFrame>>(frames: I) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0usize;
    for df in frames {
        for col in df.columns() {
            for chunk in col.chunks() {
                if seen.insert(std::sync::Arc::as_ptr(chunk)) {
                    total += chunk.heap_bytes();
                }
            }
        }
    }
    total
}

impl fmt::Display for DataFrame {
    /// Renders a small aligned preview table (up to 10 rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = self.n_rows().min(10);
        let headers: Vec<String> = self.columns.iter().map(|c| c.name().to_string()).collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(show);
        for i in 0..show {
            rows.push(self.columns.iter().map(|c| c.get(i).to_string()).collect());
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, "{h:w$} | ")?;
        }
        writeln!(f)?;
        for row in &rows {
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, "{cell:w$} | ")?;
            }
            writeln!(f)?;
        }
        if self.n_rows() > show {
            writeln!(f, "... ({} rows total)", self.n_rows())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::predicate::{CmpOp, Predicate};

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_ints("age", vec![Some(45), Some(22), Some(60), None]),
            Column::from_strings(
                "gender",
                DType::Categorical,
                vec![
                    Some("F".into()),
                    Some("M".into()),
                    Some("M".into()),
                    Some("F".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let err = DataFrame::from_columns(vec![
            Column::from_ints("a", vec![Some(1)]),
            Column::from_ints("a", vec![Some(2)]),
        ])
        .unwrap_err();
        assert!(matches!(err, FrameError::DuplicateColumn(_)));

        let err = DataFrame::from_columns(vec![
            Column::from_ints("a", vec![Some(1)]),
            Column::from_ints("b", vec![Some(2), Some(3)]),
        ])
        .unwrap_err();
        assert!(matches!(err, FrameError::LengthMismatch(_)));
    }

    #[test]
    fn row_and_cell_access() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 2);
        assert_eq!(
            df.row(0).unwrap(),
            vec![Value::Int(45), Value::Str("F".into())]
        );
        assert_eq!(df.cell(3, "age").unwrap(), Value::Null);
        assert!(df.row(4).is_err());
        assert!(df.cell(0, "zip").is_err());
    }

    #[test]
    fn select_projects_in_order() {
        let df = sample();
        let p = df.select(&["gender", "age"]).unwrap();
        assert_eq!(p.schema().names(), vec!["gender", "age"]);
        assert!(df.select(&["nope"]).is_err());
    }

    #[test]
    fn filter_by_predicate_and_selectivity() {
        let df = sample();
        let pred = Predicate::cmp("gender", CmpOp::Eq, "M");
        let sel = df.selectivity(&pred).unwrap();
        assert!((sel - 0.5).abs() < 1e-12);
        let filtered = df.filter_by(&pred).unwrap();
        assert_eq!(filtered.n_rows(), 2);
        assert_eq!(filtered.cell(0, "age").unwrap(), Value::Int(22));
    }

    #[test]
    fn take_and_concat() {
        let df = sample();
        let boot = df.take(&[0, 0, 2]).unwrap();
        assert_eq!(boot.n_rows(), 3);
        assert_eq!(boot.cell(1, "age").unwrap(), Value::Int(45));
        let both = df.concat(&boot).unwrap();
        assert_eq!(both.n_rows(), 7);
        assert!(df.take(&[9]).is_err());
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let df = sample();
        let other = DataFrame::from_columns(vec![Column::from_ints("age", vec![Some(1)])]).unwrap();
        assert!(df.concat(&other).is_err());
    }

    #[test]
    fn replace_and_drop_column() {
        let mut df = sample();
        let new_age = Column::from_ints("age", vec![Some(1), Some(2), Some(3), Some(4)]);
        df.replace_column(new_age).unwrap();
        assert_eq!(df.cell(0, "age").unwrap(), Value::Int(1));
        let dropped = df.drop_column("gender").unwrap();
        assert_eq!(dropped.name(), "gender");
        assert_eq!(df.n_cols(), 1);
    }

    #[test]
    fn clone_shares_chunks_and_dedup_accounting_sees_it() {
        let df = sample();
        let copy = df.clone();
        assert!(df.column_shares_chunks(&copy, "age"));
        assert!(df.column_shares_chunks(&copy, "gender"));
        // Two clones occupy one frame's worth of unique bytes.
        let eager = df.heap_bytes() + copy.heap_bytes();
        let unique = unique_heap_bytes([&df, &copy]);
        assert_eq!(eager, 2 * unique);
        // Writing one column un-shares only that column's chunks.
        let mut written = copy.clone();
        written
            .column_mut("age")
            .unwrap()
            .set(0, Value::Int(99))
            .unwrap();
        assert!(!df.column_shares_chunks(&written, "age"));
        assert!(df.column_shares_chunks(&written, "gender"));
    }

    #[test]
    fn head_and_display() {
        let df = sample();
        assert_eq!(df.head(2).n_rows(), 2);
        assert_eq!(df.head(100).n_rows(), 4);
        let rendered = df.to_string();
        assert!(rendered.contains("age") && rendered.contains("gender"));
    }
}
