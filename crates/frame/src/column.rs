//! Typed column storage with validity bitmaps.
//!
//! Storage is *chunked and copy-on-write*: a column is a sequence of
//! fixed-size [`Chunk`]s held behind [`std::sync::Arc`]s. Cloning a
//! column — and therefore a whole [`crate::DataFrame`] — is
//! O(#chunks) reference-count bumps, and writers clone only the
//! chunks they actually modify (`Arc::make_mut`). A composed
//! transformation that edits one attribute thus leaves every other
//! column's chunks shared with the source frame, together with their
//! cached content fingerprints (see [`Chunk::cached_fingerprint`]).

use crate::bitmap::Bitmap;
use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::value::Value;
use std::sync::{Arc, OnceLock};

/// Rows per storage chunk. A multiple of 64 so chunk validity bitmaps
/// stay word-aligned and chunk masks concatenate word-wise.
pub const CHUNK_ROWS: usize = 4096;

/// Physical storage of one chunk of a column. Slots masked out by the
/// validity bitmap hold an arbitrary placeholder (0 / 0.0 / false / "").
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// `Int` columns.
    Int(Vec<i64>),
    /// `Float` columns.
    Float(Vec<f64>),
    /// `Bool` columns.
    Bool(Vec<bool>),
    /// `Categorical` and `Text` columns.
    Str(Vec<String>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    fn empty(dtype: DType) -> ColumnData {
        match dtype {
            DType::Int => ColumnData::Int(Vec::new()),
            DType::Float => ColumnData::Float(Vec::new()),
            DType::Bool => ColumnData::Bool(Vec::new()),
            DType::Categorical | DType::Text => ColumnData::Str(Vec::new()),
        }
    }

    /// Heap bytes held by the buffer (strings count their capacity).
    fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v
                .iter()
                .map(|s| std::mem::size_of::<String>() + s.capacity())
                .sum(),
        }
    }
}

/// One fixed-size run of rows of a column: typed values plus their
/// validity bitmap, plus a lazily computed content fingerprint.
///
/// All chunks of a column hold exactly [`CHUNK_ROWS`] rows except the
/// last, which holds the remainder — so a row index maps to
/// `(index / CHUNK_ROWS, index % CHUNK_ROWS)` without a lookup table.
#[derive(Debug)]
pub struct Chunk {
    data: ColumnData,
    validity: Bitmap,
    /// Cached content fingerprint. Populated on first use by
    /// [`Chunk::cached_fingerprint`]; every mutation path resets it.
    fp: OnceLock<u64>,
}

impl Clone for Chunk {
    fn clone(&self) -> Chunk {
        Chunk {
            data: self.data.clone(),
            validity: self.validity.clone(),
            // The clone holds identical contents, so the cached
            // fingerprint transfers; mutators reset it after cloning.
            fp: self.fp.clone(),
        }
    }
}

impl PartialEq for Chunk {
    fn eq(&self, other: &Self) -> bool {
        // The fingerprint cache is derived state: two chunks with
        // equal contents are equal regardless of which has hashed.
        self.data == other.data && self.validity == other.validity
    }
}

impl Chunk {
    fn new(data: ColumnData, validity: Bitmap) -> Chunk {
        debug_assert_eq!(data.len(), validity.len());
        Chunk {
            data,
            validity,
            fp: OnceLock::new(),
        }
    }

    /// Number of rows in this chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True iff the chunk holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Typed value buffer. Slots masked out by the validity bitmap
    /// hold arbitrary placeholders — pair with [`Chunk::validity`]
    /// when reading.
    #[inline]
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap (1 = valid, 0 = NULL).
    #[inline]
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// The chunk's content fingerprint, computing it with `compute`
    /// on first use and caching it for every later caller. The hash
    /// policy lives with the caller (the oracle), the cache with the
    /// storage: chunks shared between frames hash exactly once.
    pub fn cached_fingerprint(&self, compute: impl FnOnce(&Chunk) -> u64) -> u64 {
        *self.fp.get_or_init(|| compute(self))
    }

    /// Whether a fingerprint is currently cached (test introspection).
    pub fn has_cached_fingerprint(&self) -> bool {
        self.fp.get().is_some()
    }

    /// Approximate heap bytes held by this chunk's buffers.
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes() + self.validity.words().len() * 8
    }
}

/// A named, typed column: `D.A_j` in the paper's notation — the
/// multiset of values all tuples take for attribute `A_j`, stored as
/// copy-on-write [`Chunk`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    dtype: DType,
    len: usize,
    chunks: Vec<Arc<Chunk>>,
}

/// Chunk the `(value, validity)` stream of a constructor into
/// `CHUNK_ROWS`-sized chunks.
fn build_chunks<T>(
    values: Vec<Option<T>>,
    mut admit: impl FnMut(&T) -> bool,
    mut placeholder: impl FnMut() -> T,
    wrap: impl Fn(Vec<T>) -> ColumnData,
) -> (usize, Vec<Arc<Chunk>>) {
    let len = values.len();
    let mut chunks = Vec::with_capacity(len.div_ceil(CHUNK_ROWS));
    let mut buf: Vec<T> = Vec::with_capacity(CHUNK_ROWS.min(len));
    let mut validity = Bitmap::new();
    for v in values {
        match v {
            Some(x) if admit(&x) => {
                buf.push(x);
                validity.push(true);
            }
            _ => {
                buf.push(placeholder());
                validity.push(false);
            }
        }
        if buf.len() == CHUNK_ROWS {
            chunks.push(Arc::new(Chunk::new(
                wrap(std::mem::take(&mut buf)),
                std::mem::take(&mut validity),
            )));
        }
    }
    if !buf.is_empty() {
        chunks.push(Arc::new(Chunk::new(wrap(buf), validity)));
    }
    (len, chunks)
}

impl Column {
    /// Build an `Int` column; `None` entries become NULL.
    pub fn from_ints<S: Into<String>>(name: S, values: Vec<Option<i64>>) -> Self {
        let (len, chunks) = build_chunks(values, |_| true, || 0, ColumnData::Int);
        Column {
            name: name.into(),
            dtype: DType::Int,
            len,
            chunks,
        }
    }

    /// Build a `Float` column; `None` and NaN entries become NULL.
    pub fn from_floats<S: Into<String>>(name: S, values: Vec<Option<f64>>) -> Self {
        let (len, chunks) = build_chunks(values, |x| !x.is_nan(), || 0.0, ColumnData::Float);
        Column {
            name: name.into(),
            dtype: DType::Float,
            len,
            chunks,
        }
    }

    /// Build a `Bool` column; `None` entries become NULL.
    pub fn from_bools<S: Into<String>>(name: S, values: Vec<Option<bool>>) -> Self {
        let (len, chunks) = build_chunks(values, |_| true, || false, ColumnData::Bool);
        Column {
            name: name.into(),
            dtype: DType::Bool,
            len,
            chunks,
        }
    }

    /// Build a string-backed column (`Categorical` or `Text`).
    pub fn from_strings<S: Into<String>>(
        name: S,
        dtype: DType,
        values: Vec<Option<String>>,
    ) -> Self {
        assert!(dtype.is_string(), "from_strings requires a string dtype");
        let (len, chunks) = build_chunks(values, |_| true, String::new, ColumnData::Str);
        Column {
            name: name.into(),
            dtype,
            len,
            chunks,
        }
    }

    /// Build a column of `dtype` from dynamically typed values.
    ///
    /// Fails with [`FrameError::TypeMismatch`] on any value the dtype
    /// does not admit. `Int` values widen into `Float` columns.
    pub fn from_values<S: Into<String>>(name: S, dtype: DType, values: Vec<Value>) -> Result<Self> {
        let name = name.into();
        let mut col = Column::empty(name, dtype);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Empty column of the given type.
    pub fn empty<S: Into<String>>(name: S, dtype: DType) -> Self {
        Column {
            name: name.into(),
            dtype,
            len: 0,
            chunks: Vec::new(),
        }
    }

    /// Column name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column in place.
    pub fn set_name<S: Into<String>>(&mut self, name: S) {
        self.name = name.into();
    }

    /// Logical type.
    #[inline]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Re-tag a string column between `Categorical` and `Text`
    /// (identical storage, different profile semantics).
    pub fn retag(&mut self, dtype: DType) -> Result<()> {
        if self.dtype.is_string() && dtype.is_string() {
            self.dtype = dtype;
            Ok(())
        } else {
            Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "a string dtype".into(),
                found: format!("{} -> {}", self.dtype, dtype),
            })
        }
    }

    /// The storage chunks backing this column, in row order. Every
    /// chunk holds exactly [`CHUNK_ROWS`] rows except the last.
    #[inline]
    pub fn chunks(&self) -> &[Arc<Chunk>] {
        &self.chunks
    }

    /// Whether `self` and `other` are backed by exactly the same
    /// chunk allocations (pointer equality, not value equality) —
    /// i.e. a clone of `other` that no write has yet un-shared.
    pub fn shares_chunks_with(&self, other: &Column) -> bool {
        self.chunks.len() == other.chunks.len()
            && self
                .chunks
                .iter()
                .zip(&other.chunks)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Approximate heap bytes of this column's buffers, counting
    /// shared chunks at full size (the "eager copy" accounting).
    pub fn heap_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.heap_bytes()).sum()
    }

    /// The concatenated validity bitmap (1 = valid, 0 = NULL) over
    /// all rows. Chunk bitmaps are word-aligned, so this is a word
    /// copy, not a bit-by-bit rebuild.
    pub fn validity_mask(&self) -> Bitmap {
        let mut out = Bitmap::new();
        for chunk in &self.chunks {
            out.append(&chunk.validity);
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        self.chunks.iter().map(|c| c.validity.count_zeros()).sum()
    }

    /// Whether row `index` is NULL.
    #[inline]
    pub fn is_null(&self, index: usize) -> bool {
        assert!(index < self.len, "row index {index} out of {}", self.len);
        !self.chunks[index / CHUNK_ROWS]
            .validity
            .get(index % CHUNK_ROWS)
    }

    /// Value at `index` as a dynamically typed [`Value`].
    pub fn get(&self, index: usize) -> Value {
        assert!(index < self.len, "row index {index} out of {}", self.len);
        let chunk = &self.chunks[index / CHUNK_ROWS];
        let off = index % CHUNK_ROWS;
        if !chunk.validity.get(off) {
            return Value::Null;
        }
        match &chunk.data {
            ColumnData::Int(v) => Value::Int(v[off]),
            ColumnData::Float(v) => Value::Float(v[off]),
            ColumnData::Bool(v) => Value::Bool(v[off]),
            ColumnData::Str(v) => Value::Str(v[off].clone()),
        }
    }

    /// Unique access to the chunk holding row `index`, un-sharing it
    /// if needed and resetting its cached fingerprint.
    fn chunk_mut(&mut self, index: usize) -> (&mut Chunk, usize) {
        let slot = &mut self.chunks[index / CHUNK_ROWS];
        let chunk = Arc::make_mut(slot);
        chunk.fp.take();
        (chunk, index % CHUNK_ROWS)
    }

    /// Append a value, checking it against the dtype.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if !self.dtype.admits(&value) {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype.to_string(),
                found: value.type_name().to_string(),
            });
        }
        if self.chunks.last().is_none_or(|c| c.len() == CHUNK_ROWS) {
            self.chunks.push(Arc::new(Chunk::new(
                ColumnData::empty(self.dtype),
                Bitmap::new(),
            )));
        }
        let chunk = Arc::make_mut(self.chunks.last_mut().expect("chunk pushed above"));
        chunk.fp.take();
        match (&mut chunk.data, value) {
            (data, Value::Null) => {
                match data {
                    ColumnData::Int(v) => v.push(0),
                    ColumnData::Float(v) => v.push(0.0),
                    ColumnData::Bool(v) => v.push(false),
                    ColumnData::Str(v) => v.push(String::new()),
                }
                chunk.validity.push(false);
            }
            (ColumnData::Int(v), Value::Int(i)) => {
                v.push(i);
                chunk.validity.push(true);
            }
            (ColumnData::Float(v), Value::Float(x)) => {
                v.push(x);
                chunk.validity.push(true);
            }
            (ColumnData::Float(v), Value::Int(i)) => {
                v.push(i as f64);
                chunk.validity.push(true);
            }
            (ColumnData::Bool(v), Value::Bool(b)) => {
                v.push(b);
                chunk.validity.push(true);
            }
            (ColumnData::Str(v), Value::Str(s)) => {
                v.push(s);
                chunk.validity.push(true);
            }
            _ => unreachable!("admits() already filtered mismatches"),
        }
        self.len += 1;
        Ok(())
    }

    /// Overwrite the value at `index` (same type rules as [`push`](Self::push)).
    ///
    /// Writing a value a slot already holds is a no-op that leaves
    /// the chunk shared (copy-on-write never clones for an identical
    /// write).
    pub fn set(&mut self, index: usize, value: Value) -> Result<()> {
        if index >= self.len {
            return Err(FrameError::RowOutOfBounds {
                index,
                len: self.len,
            });
        }
        if !self.dtype.admits(&value) {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype.to_string(),
                found: value.type_name().to_string(),
            });
        }
        // Skip the write (and the chunk un-sharing it would force)
        // when the slot already holds the value. Floats compare by
        // bit pattern so a -0.0 → 0.0 write still lands.
        {
            let chunk = &self.chunks[index / CHUNK_ROWS];
            let off = index % CHUNK_ROWS;
            let valid = chunk.validity.get(off);
            let same = match (&chunk.data, &value) {
                (_, Value::Null) => !valid,
                (ColumnData::Int(v), Value::Int(i)) => valid && v[off] == *i,
                (ColumnData::Float(v), Value::Float(x)) => valid && v[off].to_bits() == x.to_bits(),
                (ColumnData::Float(v), Value::Int(i)) => {
                    valid && v[off].to_bits() == (*i as f64).to_bits()
                }
                (ColumnData::Bool(v), Value::Bool(b)) => valid && v[off] == *b,
                (ColumnData::Str(v), Value::Str(s)) => valid && v[off] == *s,
                _ => false,
            };
            if same {
                return Ok(());
            }
        }
        let (chunk, off) = self.chunk_mut(index);
        match (&mut chunk.data, value) {
            (_, Value::Null) => chunk.validity.set(off, false),
            (ColumnData::Int(v), Value::Int(i)) => {
                v[off] = i;
                chunk.validity.set(off, true);
            }
            (ColumnData::Float(v), Value::Float(x)) => {
                v[off] = x;
                chunk.validity.set(off, true);
            }
            (ColumnData::Float(v), Value::Int(i)) => {
                v[off] = i as f64;
                chunk.validity.set(off, true);
            }
            (ColumnData::Bool(v), Value::Bool(b)) => {
                v[off] = b;
                chunk.validity.set(off, true);
            }
            (ColumnData::Str(v), Value::Str(s)) => {
                v[off] = s;
                chunk.validity.set(off, true);
            }
            _ => unreachable!("admits() already filtered mismatches"),
        }
        Ok(())
    }

    /// Iterator over values as [`Value`]s (allocates for strings).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Non-NULL values as `f64`, paired with their row indices.
    /// Empty for non-numeric columns.
    pub fn f64_values(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for (ci, chunk) in self.chunks.iter().enumerate() {
            let base = ci * CHUNK_ROWS;
            match &chunk.data {
                ColumnData::Int(v) => {
                    out.extend(chunk.validity.ones().map(|off| (base + off, v[off] as f64)));
                }
                ColumnData::Float(v) => {
                    out.extend(chunk.validity.ones().map(|off| (base + off, v[off])));
                }
                ColumnData::Bool(v) => {
                    out.extend(
                        chunk
                            .validity
                            .ones()
                            .map(|off| (base + off, v[off] as u8 as f64)),
                    );
                }
                ColumnData::Str(_) => return Vec::new(),
            }
        }
        out
    }

    /// Non-NULL string values paired with row indices; empty for
    /// non-string columns.
    pub fn str_values(&self) -> Vec<(usize, &str)> {
        let mut out = Vec::new();
        for (ci, chunk) in self.chunks.iter().enumerate() {
            let base = ci * CHUNK_ROWS;
            match &chunk.data {
                ColumnData::Str(v) => {
                    out.extend(
                        chunk
                            .validity
                            .ones()
                            .map(|off| (base + off, v[off].as_str())),
                    );
                }
                _ => return Vec::new(),
            }
        }
        out
    }

    /// Map every non-NULL numeric value through `f` in place.
    /// Returns the number of values changed (for transformation
    /// coverage accounting). No-op on non-numeric columns.
    ///
    /// Chunks are un-shared lazily, on the first row `f` actually
    /// changes: a map that leaves a chunk untouched leaves it shared
    /// with every other frame holding it.
    pub fn map_numeric_in_place<F: FnMut(f64) -> f64>(&mut self, mut f: F) -> usize {
        let mut changed = 0;
        for slot in &mut self.chunks {
            match &slot.data {
                ColumnData::Float(_) => {
                    for off in 0..slot.len() {
                        if !slot.validity.get(off) {
                            continue;
                        }
                        let ColumnData::Float(v) = &slot.data else {
                            unreachable!("chunk variant fixed per column")
                        };
                        let x = v[off];
                        let y = f(x);
                        if y != x {
                            let chunk = Arc::make_mut(slot);
                            chunk.fp.take();
                            let ColumnData::Float(v) = &mut chunk.data else {
                                unreachable!("chunk variant fixed per column")
                            };
                            v[off] = y;
                            changed += 1;
                        }
                    }
                }
                ColumnData::Int(_) => {
                    for off in 0..slot.len() {
                        if !slot.validity.get(off) {
                            continue;
                        }
                        let ColumnData::Int(v) = &slot.data else {
                            unreachable!("chunk variant fixed per column")
                        };
                        let x = v[off];
                        let y = f(x as f64).round() as i64;
                        if y != x {
                            let chunk = Arc::make_mut(slot);
                            chunk.fp.take();
                            let ColumnData::Int(v) = &mut chunk.data else {
                                unreachable!("chunk variant fixed per column")
                            };
                            v[off] = y;
                            changed += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        changed
    }

    /// Map every non-NULL string value through `f` in place; returns
    /// how many changed. No-op on non-string columns. Same lazy
    /// un-sharing as [`Column::map_numeric_in_place`].
    pub fn map_str_in_place<F: FnMut(&str) -> Option<String>>(&mut self, mut f: F) -> usize {
        let mut changed = 0;
        for slot in &mut self.chunks {
            if !matches!(slot.data, ColumnData::Str(_)) {
                break;
            }
            for off in 0..slot.len() {
                if !slot.validity.get(off) {
                    continue;
                }
                let ColumnData::Str(v) = &slot.data else {
                    unreachable!("checked above")
                };
                let Some(new) = f(&v[off]) else { continue };
                if new != v[off] {
                    let chunk = Arc::make_mut(slot);
                    chunk.fp.take();
                    let ColumnData::Str(v) = &mut chunk.data else {
                        unreachable!("checked above")
                    };
                    v[off] = new;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// New column keeping only rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        let mut out = Column::empty(self.name.clone(), self.dtype);
        for i in mask.ones() {
            out.push(self.get(i)).expect("same dtype");
        }
        out
    }

    /// New column with rows gathered at `indices` (repeats allowed —
    /// used by over/undersampling transformations).
    pub fn take(&self, indices: &[usize]) -> Column {
        let mut out = Column::empty(self.name.clone(), self.dtype);
        for &i in indices {
            out.push(self.get(i)).expect("same dtype");
        }
        out
    }

    /// Distinct non-NULL values (as display strings) with counts,
    /// sorted by value. Backs categorical domain discovery.
    pub fn value_counts(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for chunk in &self.chunks {
            match &chunk.data {
                ColumnData::Str(v) => {
                    for off in chunk.validity.ones() {
                        match counts.get_mut(v[off].as_str()) {
                            Some(c) => *c += 1,
                            None => {
                                counts.insert(v[off].clone(), 1);
                            }
                        }
                    }
                }
                ColumnData::Int(v) => {
                    for off in chunk.validity.ones() {
                        *counts.entry(v[off].to_string()).or_insert(0) += 1;
                    }
                }
                ColumnData::Float(v) => {
                    for off in chunk.validity.ones() {
                        *counts.entry(format!("{}", v[off])).or_insert(0) += 1;
                    }
                }
                ColumnData::Bool(v) => {
                    for off in chunk.validity.ones() {
                        *counts.entry(v[off].to_string()).or_insert(0) += 1;
                    }
                }
            }
        }
        counts.into_iter().collect()
    }

    /// Min and max over non-NULL numeric values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for chunk in &self.chunks {
            match &chunk.data {
                ColumnData::Int(v) => {
                    for off in chunk.validity.ones() {
                        let x = v[off] as f64;
                        lo = lo.min(x);
                        hi = hi.max(x);
                        any = true;
                    }
                }
                ColumnData::Float(v) => {
                    for off in chunk.validity.ones() {
                        let x = v[off];
                        lo = lo.min(x);
                        hi = hi.max(x);
                        any = true;
                    }
                }
                ColumnData::Bool(v) => {
                    for off in chunk.validity.ones() {
                        let x = v[off] as u8 as f64;
                        lo = lo.min(x);
                        hi = hi.max(x);
                        any = true;
                    }
                }
                ColumnData::Str(_) => return None,
            }
        }
        if any {
            Some((lo, hi))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_roundtrip_with_nulls() {
        let col = Column::from_ints("age", vec![Some(1), None, Some(3)]);
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(0), Value::Int(1));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Int(3));
    }

    #[test]
    fn float_column_nan_is_null() {
        let col = Column::from_floats("x", vec![Some(1.0), Some(f64::NAN), None]);
        assert_eq!(col.null_count(), 2);
        assert_eq!(col.get(1), Value::Null);
    }

    #[test]
    fn push_type_checks() {
        let mut col = Column::empty("c", DType::Int);
        assert!(col.push(Value::Int(1)).is_ok());
        assert!(col.push(Value::Null).is_ok());
        let err = col.push(Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut col = Column::empty("c", DType::Float);
        col.push(Value::Int(3)).unwrap();
        assert_eq!(col.get(0), Value::Float(3.0));
    }

    #[test]
    fn set_overwrites_and_updates_validity() {
        let mut col = Column::from_ints("c", vec![Some(1), None]);
        col.set(1, Value::Int(9)).unwrap();
        assert_eq!(col.get(1), Value::Int(9));
        col.set(0, Value::Null).unwrap();
        assert!(col.is_null(0));
        assert!(matches!(
            col.set(5, Value::Int(0)),
            Err(FrameError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn map_numeric_counts_changes_and_skips_nulls() {
        let mut col = Column::from_floats("h", vec![Some(100.0), None, Some(50.0)]);
        let changed = col.map_numeric_in_place(|x| x / 2.54);
        assert_eq!(changed, 2);
        assert!(col.is_null(1));
        assert!((col.get(0).as_f64().unwrap() - 100.0 / 2.54).abs() < 1e-12);
    }

    #[test]
    fn map_numeric_rounds_for_int_columns() {
        let mut col = Column::from_ints("h", vec![Some(100)]);
        col.map_numeric_in_place(|x| x * 2.54);
        assert_eq!(col.get(0), Value::Int(254));
    }

    #[test]
    fn map_str_in_place_replaces() {
        let mut col = Column::from_strings(
            "g",
            DType::Categorical,
            vec![Some("4".into()), Some("0".into()), None],
        );
        let changed = col.map_str_in_place(|s| match s {
            "4" => Some("1".into()),
            "0" => Some("-1".into()),
            _ => None,
        });
        assert_eq!(changed, 2);
        assert_eq!(col.get(0), Value::Str("1".into()));
        assert_eq!(col.get(1), Value::Str("-1".into()));
    }

    #[test]
    fn filter_and_take() {
        let col = Column::from_ints("c", vec![Some(10), Some(20), Some(30)]);
        let mask = Bitmap::from_iter([true, false, true]);
        let f = col.filter(&mask);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1), Value::Int(30));
        let t = col.take(&[2, 2, 0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn value_counts_and_min_max() {
        let col = Column::from_strings(
            "g",
            DType::Categorical,
            vec![Some("M".into()), Some("F".into()), Some("M".into()), None],
        );
        assert_eq!(
            col.value_counts(),
            vec![("F".to_string(), 1), ("M".to_string(), 2)]
        );
        let num = Column::from_ints("a", vec![Some(5), Some(-2), None, Some(7)]);
        assert_eq!(num.min_max(), Some((-2.0, 7.0)));
        let empty = Column::empty("e", DType::Float);
        assert_eq!(empty.min_max(), None);
    }

    #[test]
    fn retag_between_string_types_only() {
        let mut col = Column::from_strings("t", DType::Text, vec![Some("a".into())]);
        assert!(col.retag(DType::Categorical).is_ok());
        assert_eq!(col.dtype(), DType::Categorical);
        let mut num = Column::from_ints("n", vec![Some(1)]);
        assert!(num.retag(DType::Text).is_err());
    }

    #[test]
    fn f64_values_includes_bools() {
        let col = Column::from_bools("b", vec![Some(true), None, Some(false)]);
        let vals = col.f64_values();
        assert_eq!(vals, vec![(0, 1.0), (2, 0.0)]);
    }

    // ------------------------------------------------------------
    // Chunked / copy-on-write behavior
    // ------------------------------------------------------------

    /// A column long enough to span three chunks, with the last one
    /// partial and NULLs sprinkled across chunk boundaries.
    fn multi_chunk() -> Column {
        let values: Vec<Option<i64>> = (0..2 * CHUNK_ROWS as i64 + 7)
            .map(|i| if i % 97 == 0 { None } else { Some(i) })
            .collect();
        Column::from_ints("big", values)
    }

    #[test]
    fn constructors_chunk_at_chunk_rows() {
        let col = multi_chunk();
        assert_eq!(col.chunks().len(), 3);
        assert_eq!(col.chunks()[0].len(), CHUNK_ROWS);
        assert_eq!(col.chunks()[1].len(), CHUNK_ROWS);
        assert_eq!(col.chunks()[2].len(), 7);
        assert_eq!(col.len(), 2 * CHUNK_ROWS + 7);
        // Values and NULLs land at the right global indices.
        assert_eq!(col.get(CHUNK_ROWS), Value::Int(CHUNK_ROWS as i64));
        assert!(col.is_null(97 * 42));
    }

    #[test]
    fn push_grows_the_last_chunk_only() {
        let mut col = Column::empty("c", DType::Int);
        for i in 0..CHUNK_ROWS as i64 + 1 {
            col.push(Value::Int(i)).unwrap();
        }
        assert_eq!(col.chunks().len(), 2);
        assert_eq!(col.chunks()[1].len(), 1);
        assert_eq!(col.get(CHUNK_ROWS), Value::Int(CHUNK_ROWS as i64));
    }

    #[test]
    fn clone_shares_chunks_until_written() {
        let base = multi_chunk();
        let mut copy = base.clone();
        assert!(copy.shares_chunks_with(&base));
        // A write to one row un-shares exactly that chunk.
        copy.set(CHUNK_ROWS + 1, Value::Int(-1)).unwrap();
        assert!(!copy.shares_chunks_with(&base));
        assert!(Arc::ptr_eq(&base.chunks()[0], &copy.chunks()[0]));
        assert!(!Arc::ptr_eq(&base.chunks()[1], &copy.chunks()[1]));
        assert!(Arc::ptr_eq(&base.chunks()[2], &copy.chunks()[2]));
        // The base is untouched.
        assert_eq!(base.get(CHUNK_ROWS + 1), Value::Int(CHUNK_ROWS as i64 + 1));
        assert_eq!(copy.get(CHUNK_ROWS + 1), Value::Int(-1));
    }

    #[test]
    fn identical_set_does_not_unshare() {
        let base = multi_chunk();
        let mut copy = base.clone();
        copy.set(5, Value::Int(5)).unwrap(); // already holds 5
        copy.set(0, Value::Null).unwrap(); // index 0 is already NULL
        assert!(copy.shares_chunks_with(&base));
    }

    #[test]
    fn map_unshares_only_chunks_with_changes() {
        let base = multi_chunk();
        let mut copy = base.clone();
        // Change only rows in the final partial chunk.
        let cut = (2 * CHUNK_ROWS) as f64;
        let changed = copy.map_numeric_in_place(|x| if x >= cut { -x } else { x });
        assert!(changed > 0);
        assert!(Arc::ptr_eq(&base.chunks()[0], &copy.chunks()[0]));
        assert!(Arc::ptr_eq(&base.chunks()[1], &copy.chunks()[1]));
        assert!(!Arc::ptr_eq(&base.chunks()[2], &copy.chunks()[2]));
    }

    #[test]
    fn mutation_resets_cached_fingerprint() {
        let base = multi_chunk();
        let fp0 = base.chunks()[0].cached_fingerprint(|_| 0xABCD);
        assert_eq!(fp0, 0xABCD);
        let mut copy = base.clone();
        // The clone carries the cache for shared chunks...
        assert!(copy.chunks()[0].has_cached_fingerprint());
        // ...but a write invalidates it on the written chunk only.
        copy.set(0, Value::Int(123)).unwrap();
        assert!(!copy.chunks()[0].has_cached_fingerprint());
        assert!(base.chunks()[0].has_cached_fingerprint());
    }

    #[test]
    fn all_null_column_roundtrips() {
        let col = Column::from_ints("n", vec![None; CHUNK_ROWS + 3]);
        assert_eq!(col.null_count(), CHUNK_ROWS + 3);
        assert_eq!(col.f64_values(), Vec::new());
        assert_eq!(col.value_counts(), Vec::new());
        assert_eq!(col.min_max(), None);
        let mask = col.validity_mask();
        assert_eq!(mask.len(), CHUNK_ROWS + 3);
        assert_eq!(mask.count_ones(), 0);
    }

    #[test]
    fn validity_mask_concatenates_across_chunks() {
        let col = multi_chunk();
        let mask = col.validity_mask();
        assert_eq!(mask.len(), col.len());
        for i in 0..col.len() {
            assert_eq!(mask.get(i), !col.is_null(i), "row {i}");
        }
    }
}
