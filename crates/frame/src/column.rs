//! Typed column storage with validity bitmaps.

use crate::bitmap::Bitmap;
use crate::dtype::DType;
use crate::error::{FrameError, Result};
use crate::value::Value;

/// Physical storage of one column. Slots masked out by the validity
/// bitmap hold an arbitrary placeholder (0 / 0.0 / false / "").
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// `Int` columns.
    Int(Vec<i64>),
    /// `Float` columns.
    Float(Vec<f64>),
    /// `Bool` columns.
    Bool(Vec<bool>),
    /// `Categorical` and `Text` columns.
    Str(Vec<String>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }
}

/// A named, typed column: `D.A_j` in the paper's notation — the
/// multiset of values all tuples take for attribute `A_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    dtype: DType,
    data: ColumnData,
    validity: Bitmap,
}

impl Column {
    /// Build an `Int` column; `None` entries become NULL.
    pub fn from_ints<S: Into<String>>(name: S, values: Vec<Option<i64>>) -> Self {
        let validity = Bitmap::from_iter(values.iter().map(|v| v.is_some()));
        let data = values.into_iter().map(|v| v.unwrap_or(0)).collect();
        Column {
            name: name.into(),
            dtype: DType::Int,
            data: ColumnData::Int(data),
            validity,
        }
    }

    /// Build a `Float` column; `None` and NaN entries become NULL.
    pub fn from_floats<S: Into<String>>(name: S, values: Vec<Option<f64>>) -> Self {
        let validity =
            Bitmap::from_iter(values.iter().map(|v| matches!(v, Some(x) if !x.is_nan())));
        let data = values
            .into_iter()
            .map(|v| match v {
                Some(x) if !x.is_nan() => x,
                _ => 0.0,
            })
            .collect();
        Column {
            name: name.into(),
            dtype: DType::Float,
            data: ColumnData::Float(data),
            validity,
        }
    }

    /// Build a `Bool` column; `None` entries become NULL.
    pub fn from_bools<S: Into<String>>(name: S, values: Vec<Option<bool>>) -> Self {
        let validity = Bitmap::from_iter(values.iter().map(|v| v.is_some()));
        let data = values.into_iter().map(|v| v.unwrap_or(false)).collect();
        Column {
            name: name.into(),
            dtype: DType::Bool,
            data: ColumnData::Bool(data),
            validity,
        }
    }

    /// Build a string-backed column (`Categorical` or `Text`).
    pub fn from_strings<S: Into<String>>(
        name: S,
        dtype: DType,
        values: Vec<Option<String>>,
    ) -> Self {
        assert!(dtype.is_string(), "from_strings requires a string dtype");
        let validity = Bitmap::from_iter(values.iter().map(|v| v.is_some()));
        let data = values.into_iter().map(|v| v.unwrap_or_default()).collect();
        Column {
            name: name.into(),
            dtype,
            data: ColumnData::Str(data),
            validity,
        }
    }

    /// Build a column of `dtype` from dynamically typed values.
    ///
    /// Fails with [`FrameError::TypeMismatch`] on any value the dtype
    /// does not admit. `Int` values widen into `Float` columns.
    pub fn from_values<S: Into<String>>(name: S, dtype: DType, values: Vec<Value>) -> Result<Self> {
        let name = name.into();
        let mut col = Column::empty(name, dtype);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Empty column of the given type.
    pub fn empty<S: Into<String>>(name: S, dtype: DType) -> Self {
        let data = match dtype {
            DType::Int => ColumnData::Int(Vec::new()),
            DType::Float => ColumnData::Float(Vec::new()),
            DType::Bool => ColumnData::Bool(Vec::new()),
            DType::Categorical | DType::Text => ColumnData::Str(Vec::new()),
        };
        Column {
            name: name.into(),
            dtype,
            data,
            validity: Bitmap::new(),
        }
    }

    /// Column name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column in place.
    pub fn set_name<S: Into<String>>(&mut self, name: S) {
        self.name = name.into();
    }

    /// Logical type.
    #[inline]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Re-tag a string column between `Categorical` and `Text`
    /// (identical storage, different profile semantics).
    pub fn retag(&mut self, dtype: DType) -> Result<()> {
        if self.dtype.is_string() && dtype.is_string() {
            self.dtype = dtype;
            Ok(())
        } else {
            Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: "a string dtype".into(),
                found: format!("{} -> {}", self.dtype, dtype),
            })
        }
    }

    /// Raw typed buffer backing this column. Slots masked out by the
    /// validity bitmap hold arbitrary placeholders — pair with
    /// [`Column::validity`] when reading.
    #[inline]
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap (1 = valid, 0 = NULL).
    #[inline]
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        self.validity.count_zeros()
    }

    /// Whether row `index` is NULL.
    #[inline]
    pub fn is_null(&self, index: usize) -> bool {
        !self.validity.get(index)
    }

    /// Value at `index` as a dynamically typed [`Value`].
    pub fn get(&self, index: usize) -> Value {
        if !self.validity.get(index) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[index]),
            ColumnData::Float(v) => Value::Float(v[index]),
            ColumnData::Bool(v) => Value::Bool(v[index]),
            ColumnData::Str(v) => Value::Str(v[index].clone()),
        }
    }

    /// Append a value, checking it against the dtype.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if !self.dtype.admits(&value) {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype.to_string(),
                found: value.type_name().to_string(),
            });
        }
        match (&mut self.data, value) {
            (_, Value::Null) => {
                match &mut self.data {
                    ColumnData::Int(v) => v.push(0),
                    ColumnData::Float(v) => v.push(0.0),
                    ColumnData::Bool(v) => v.push(false),
                    ColumnData::Str(v) => v.push(String::new()),
                }
                self.validity.push(false);
            }
            (ColumnData::Int(v), Value::Int(i)) => {
                v.push(i);
                self.validity.push(true);
            }
            (ColumnData::Float(v), Value::Float(x)) => {
                v.push(x);
                self.validity.push(true);
            }
            (ColumnData::Float(v), Value::Int(i)) => {
                v.push(i as f64);
                self.validity.push(true);
            }
            (ColumnData::Bool(v), Value::Bool(b)) => {
                v.push(b);
                self.validity.push(true);
            }
            (ColumnData::Str(v), Value::Str(s)) => {
                v.push(s);
                self.validity.push(true);
            }
            _ => unreachable!("admits() already filtered mismatches"),
        }
        Ok(())
    }

    /// Overwrite the value at `index` (same type rules as [`push`](Self::push)).
    pub fn set(&mut self, index: usize, value: Value) -> Result<()> {
        if index >= self.len() {
            return Err(FrameError::RowOutOfBounds {
                index,
                len: self.len(),
            });
        }
        if !self.dtype.admits(&value) {
            return Err(FrameError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype.to_string(),
                found: value.type_name().to_string(),
            });
        }
        match (&mut self.data, value) {
            (_, Value::Null) => self.validity.set(index, false),
            (ColumnData::Int(v), Value::Int(i)) => {
                v[index] = i;
                self.validity.set(index, true);
            }
            (ColumnData::Float(v), Value::Float(x)) => {
                v[index] = x;
                self.validity.set(index, true);
            }
            (ColumnData::Float(v), Value::Int(i)) => {
                v[index] = i as f64;
                self.validity.set(index, true);
            }
            (ColumnData::Bool(v), Value::Bool(b)) => {
                v[index] = b;
                self.validity.set(index, true);
            }
            (ColumnData::Str(v), Value::Str(s)) => {
                v[index] = s;
                self.validity.set(index, true);
            }
            _ => unreachable!("admits() already filtered mismatches"),
        }
        Ok(())
    }

    /// Iterator over values as [`Value`]s (allocates for strings).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Non-NULL values as `f64`, paired with their row indices.
    /// Empty for non-numeric columns.
    pub fn f64_values(&self) -> Vec<(usize, f64)> {
        match &self.data {
            ColumnData::Int(v) => v
                .iter()
                .enumerate()
                .filter(|(i, _)| self.validity.get(*i))
                .map(|(i, &x)| (i, x as f64))
                .collect(),
            ColumnData::Float(v) => v
                .iter()
                .enumerate()
                .filter(|(i, _)| self.validity.get(*i))
                .map(|(i, &x)| (i, x))
                .collect(),
            ColumnData::Bool(v) => v
                .iter()
                .enumerate()
                .filter(|(i, _)| self.validity.get(*i))
                .map(|(i, &b)| (i, b as u8 as f64))
                .collect(),
            ColumnData::Str(_) => Vec::new(),
        }
    }

    /// Non-NULL string values paired with row indices; empty for
    /// non-string columns.
    pub fn str_values(&self) -> Vec<(usize, &str)> {
        match &self.data {
            ColumnData::Str(v) => v
                .iter()
                .enumerate()
                .filter(|(i, _)| self.validity.get(*i))
                .map(|(i, s)| (i, s.as_str()))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Map every non-NULL numeric value through `f` in place.
    /// Returns the number of values changed (for transformation
    /// coverage accounting). No-op on non-numeric columns.
    pub fn map_numeric_in_place<F: FnMut(f64) -> f64>(&mut self, mut f: F) -> usize {
        let mut changed = 0;
        match &mut self.data {
            ColumnData::Float(v) => {
                for (i, x) in v.iter_mut().enumerate() {
                    if self.validity.get(i) {
                        let y = f(*x);
                        if y != *x {
                            *x = y;
                            changed += 1;
                        }
                    }
                }
            }
            ColumnData::Int(v) => {
                for (i, x) in v.iter_mut().enumerate() {
                    if self.validity.get(i) {
                        let y = f(*x as f64).round() as i64;
                        if y != *x {
                            *x = y;
                            changed += 1;
                        }
                    }
                }
            }
            _ => {}
        }
        changed
    }

    /// Map every non-NULL string value through `f` in place; returns
    /// how many changed. No-op on non-string columns.
    pub fn map_str_in_place<F: FnMut(&str) -> Option<String>>(&mut self, mut f: F) -> usize {
        let mut changed = 0;
        if let ColumnData::Str(v) = &mut self.data {
            for (i, s) in v.iter_mut().enumerate() {
                if self.validity.get(i) {
                    if let Some(new) = f(s) {
                        if new != *s {
                            *s = new;
                            changed += 1;
                        }
                    }
                }
            }
        }
        changed
    }

    /// New column keeping only rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> Column {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        let mut out = Column::empty(self.name.clone(), self.dtype);
        for i in mask.ones() {
            out.push(self.get(i)).expect("same dtype");
        }
        out
    }

    /// New column with rows gathered at `indices` (repeats allowed —
    /// used by over/undersampling transformations).
    pub fn take(&self, indices: &[usize]) -> Column {
        let mut out = Column::empty(self.name.clone(), self.dtype);
        for &i in indices {
            out.push(self.get(i)).expect("same dtype");
        }
        out
    }

    /// Distinct non-NULL values (as display strings) with counts,
    /// sorted by value. Backs categorical domain discovery.
    pub fn value_counts(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for i in 0..self.len() {
            if !self.is_null(i) {
                *counts.entry(self.get(i).to_string()).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// Min and max over non-NULL numeric values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let vals = self.f64_values();
        if vals.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, x) in vals {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_roundtrip_with_nulls() {
        let col = Column::from_ints("age", vec![Some(1), None, Some(3)]);
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(0), Value::Int(1));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Int(3));
    }

    #[test]
    fn float_column_nan_is_null() {
        let col = Column::from_floats("x", vec![Some(1.0), Some(f64::NAN), None]);
        assert_eq!(col.null_count(), 2);
        assert_eq!(col.get(1), Value::Null);
    }

    #[test]
    fn push_type_checks() {
        let mut col = Column::empty("c", DType::Int);
        assert!(col.push(Value::Int(1)).is_ok());
        assert!(col.push(Value::Null).is_ok());
        let err = col.push(Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut col = Column::empty("c", DType::Float);
        col.push(Value::Int(3)).unwrap();
        assert_eq!(col.get(0), Value::Float(3.0));
    }

    #[test]
    fn set_overwrites_and_updates_validity() {
        let mut col = Column::from_ints("c", vec![Some(1), None]);
        col.set(1, Value::Int(9)).unwrap();
        assert_eq!(col.get(1), Value::Int(9));
        col.set(0, Value::Null).unwrap();
        assert!(col.is_null(0));
        assert!(matches!(
            col.set(5, Value::Int(0)),
            Err(FrameError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn map_numeric_counts_changes_and_skips_nulls() {
        let mut col = Column::from_floats("h", vec![Some(100.0), None, Some(50.0)]);
        let changed = col.map_numeric_in_place(|x| x / 2.54);
        assert_eq!(changed, 2);
        assert!(col.is_null(1));
        assert!((col.get(0).as_f64().unwrap() - 100.0 / 2.54).abs() < 1e-12);
    }

    #[test]
    fn map_numeric_rounds_for_int_columns() {
        let mut col = Column::from_ints("h", vec![Some(100)]);
        col.map_numeric_in_place(|x| x * 2.54);
        assert_eq!(col.get(0), Value::Int(254));
    }

    #[test]
    fn map_str_in_place_replaces() {
        let mut col = Column::from_strings(
            "g",
            DType::Categorical,
            vec![Some("4".into()), Some("0".into()), None],
        );
        let changed = col.map_str_in_place(|s| match s {
            "4" => Some("1".into()),
            "0" => Some("-1".into()),
            _ => None,
        });
        assert_eq!(changed, 2);
        assert_eq!(col.get(0), Value::Str("1".into()));
        assert_eq!(col.get(1), Value::Str("-1".into()));
    }

    #[test]
    fn filter_and_take() {
        let col = Column::from_ints("c", vec![Some(10), Some(20), Some(30)]);
        let mask = Bitmap::from_iter([true, false, true]);
        let f = col.filter(&mask);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1), Value::Int(30));
        let t = col.take(&[2, 2, 0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn value_counts_and_min_max() {
        let col = Column::from_strings(
            "g",
            DType::Categorical,
            vec![Some("M".into()), Some("F".into()), Some("M".into()), None],
        );
        assert_eq!(
            col.value_counts(),
            vec![("F".to_string(), 1), ("M".to_string(), 2)]
        );
        let num = Column::from_ints("a", vec![Some(5), Some(-2), None, Some(7)]);
        assert_eq!(num.min_max(), Some((-2.0, 7.0)));
        let empty = Column::empty("e", DType::Float);
        assert_eq!(empty.min_max(), None);
    }

    #[test]
    fn retag_between_string_types_only() {
        let mut col = Column::from_strings("t", DType::Text, vec![Some("a".into())]);
        assert!(col.retag(DType::Categorical).is_ok());
        assert_eq!(col.dtype(), DType::Categorical);
        let mut num = Column::from_ints("n", vec![Some(1)]);
        assert!(num.retag(DType::Text).is_err());
    }

    #[test]
    fn f64_values_includes_bools() {
        let col = Column::from_bools("b", vec![Some(true), None, Some(false)]);
        let vals = col.f64_values();
        assert_eq!(vals, vec![(0, 1.0), (2, 0.0)]);
    }
}
