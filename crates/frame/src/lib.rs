//! # dp-frame — columnar dataframe substrate
//!
//! A small, self-contained, columnar dataframe engine built for the
//! DataPrism reproduction. The paper's framework treats datasets as
//! relations `D ⊆ Dom^m` over a schema `R(A_1, …, A_m)`; this crate
//! provides that relation abstraction:
//!
//! - [`Value`] — a dynamically typed cell value (`Null`, `Int`, `Float`,
//!   `Bool`, `Str`).
//! - [`DType`] — logical column types. `Categorical` and `Text` are both
//!   string-backed but drive different profile-discovery semantics in
//!   the `dataprism` crate (domain sets vs learned patterns, Fig 1 of
//!   the paper).
//! - [`Column`] — typed storage plus a validity [`Bitmap`] for NULLs.
//! - [`DataFrame`] — named columns of equal length, with row access,
//!   filtering, projection, sampling, and group-by counting.
//! - [`Predicate`] — a small boolean expression AST over columns used
//!   for `Selectivity` profiles (Fig 1 row 6).
//! - [`csv`] — CSV reader/writer with type inference, used by examples
//!   so generated scenario data can be inspected on disk.
//!
//! The engine is deliberately eager and in-memory: the paper's
//! interventions repeatedly *transform whole columns* of the failing
//! dataset, so mutable typed vectors are the right storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod builder;
pub mod column;
pub mod csv;
pub mod describe;
pub mod dtype;
pub mod error;
pub mod frame;
pub mod groupby;
pub mod predicate;
pub mod sample;
pub mod schema;
pub mod value;

pub use bitmap::Bitmap;
pub use builder::DataFrameBuilder;
pub use column::{Column, ColumnData};
pub use dtype::DType;
pub use error::{FrameError, Result};
pub use frame::DataFrame;
pub use predicate::{CmpOp, Predicate};
pub use schema::{Field, Schema};
pub use value::Value;
