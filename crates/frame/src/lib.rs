//! # dp-frame — columnar dataframe substrate
//!
//! A small, self-contained, columnar dataframe engine built for the
//! DataPrism reproduction. The paper's framework treats datasets as
//! relations `D ⊆ Dom^m` over a schema `R(A_1, …, A_m)`; this crate
//! provides that relation abstraction:
//!
//! - [`Value`] — a dynamically typed cell value (`Null`, `Int`, `Float`,
//!   `Bool`, `Str`).
//! - [`DType`] — logical column types. `Categorical` and `Text` are both
//!   string-backed but drive different profile-discovery semantics in
//!   the `dataprism` crate (domain sets vs learned patterns, Fig 1 of
//!   the paper).
//! - [`Column`] — typed storage plus a validity [`Bitmap`] for NULLs.
//! - [`DataFrame`] — named columns of equal length, with row access,
//!   filtering, projection, sampling, and group-by counting.
//! - [`Predicate`] — a small boolean expression AST over columns used
//!   for `Selectivity` profiles (Fig 1 row 6).
//! - [`csv`] — CSV reader/writer with type inference, used by examples
//!   so generated scenario data can be inspected on disk.
//!
//! Storage is in-memory, chunked, and copy-on-write: a [`Column`] is
//! a sequence of fixed-size [`Chunk`]s (`CHUNK_ROWS` rows) behind
//! `Arc`s, so cloning a frame is O(#chunks) and the paper's
//! interventions — which repeatedly transform a handful of columns of
//! the failing dataset — un-share only the chunks they actually
//! write. Unwritten chunks keep their cached content fingerprints,
//! which the oracle's memoization reuses across interventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod builder;
pub mod column;
pub mod csv;
pub mod describe;
pub mod dtype;
pub mod error;
pub mod frame;
pub mod groupby;
pub mod predicate;
pub mod sample;
pub mod schema;
pub mod value;

pub use bitmap::Bitmap;
pub use builder::DataFrameBuilder;
pub use column::{Chunk, Column, ColumnData, CHUNK_ROWS};
pub use dtype::DType;
pub use error::{FrameError, Result};
pub use frame::{unique_heap_bytes, DataFrame};
pub use predicate::{CmpOp, Predicate};
pub use schema::{Field, Schema};
pub use value::Value;
