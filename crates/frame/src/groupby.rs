//! Group-by counting and contingency tables.
//!
//! χ²-based independence profiles (Fig 1 row 7) need the contingency
//! table of two categorical attributes; selectivity discovery needs
//! grouped counts. Both are provided here without a general
//! aggregation engine, which the paper does not require.

use crate::column::ColumnData;
use crate::error::Result;
use crate::frame::DataFrame;
use std::collections::BTreeMap;

/// Render the cell at `off` exactly as `Value`'s `Display` would,
/// without materializing a `Value` (strings borrow instead of clone).
fn render_cell(data: &ColumnData, off: usize) -> std::borrow::Cow<'_, str> {
    match data {
        ColumnData::Int(v) => std::borrow::Cow::Owned(v[off].to_string()),
        ColumnData::Float(v) => std::borrow::Cow::Owned(format!("{}", v[off])),
        ColumnData::Bool(v) => std::borrow::Cow::Owned(v[off].to_string()),
        ColumnData::Str(v) => std::borrow::Cow::Borrowed(v[off].as_str()),
    }
}

/// A two-way contingency table over the distinct values of two
/// columns. NULL cells are excluded (pairwise deletion).
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    /// Distinct values of the first attribute (row labels), sorted.
    pub rows: Vec<String>,
    /// Distinct values of the second attribute (column labels), sorted.
    pub cols: Vec<String>,
    /// `counts[i][j]` = number of tuples whose first attribute equals
    /// `rows[i]` and second equals `cols[j]`.
    pub counts: Vec<Vec<u64>>,
}

impl ContingencyTable {
    /// Build from two columns of `df`.
    ///
    /// Chunk-wise: the two columns share chunk boundaries (both are
    /// chunked at `CHUNK_ROWS`), so pairwise NULL deletion is a
    /// validity-bitmap AND per chunk and cells are counted straight
    /// off the typed buffers.
    pub fn from_frame(df: &DataFrame, a: &str, b: &str) -> Result<ContingencyTable> {
        let ca = df.column(a)?;
        let cb = df.column(b)?;
        // value of `a` -> value of `b` -> count; nested so the hot
        // loop looks up with borrowed strings and only allocates keys
        // on first sight of a cell.
        let mut cells: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        let mut col_set = std::collections::BTreeSet::new();
        for (sa, sb) in ca.chunks().iter().zip(cb.chunks()) {
            let both = sa.validity().and(sb.validity());
            for off in both.ones() {
                let va = render_cell(sa.data(), off);
                let vb = render_cell(sb.data(), off);
                if !cells.contains_key(va.as_ref()) {
                    cells.insert(va.clone().into_owned(), BTreeMap::new());
                }
                let inner = cells.get_mut(va.as_ref()).expect("inserted above");
                match inner.get_mut(vb.as_ref()) {
                    Some(n) => *n += 1,
                    None => {
                        col_set.insert(vb.clone().into_owned());
                        inner.insert(vb.into_owned(), 1);
                    }
                }
            }
        }
        let rows: Vec<String> = cells.keys().cloned().collect();
        let cols: Vec<String> = col_set.into_iter().collect();
        let mut counts = vec![vec![0u64; cols.len()]; rows.len()];
        for (i, (_, inner)) in cells.into_iter().enumerate() {
            for (vb, n) in inner {
                let j = cols.binary_search(&vb).expect("value in col set");
                counts[i][j] = n;
            }
        }
        Ok(ContingencyTable { rows, cols, counts })
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Row marginals.
    pub fn row_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column marginals.
    pub fn col_totals(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.cols.len()];
        for row in &self.counts {
            for (j, &c) in row.iter().enumerate() {
                out[j] += c;
            }
        }
        out
    }
}

/// Counts of each distinct (non-NULL) value of one column, sorted by
/// value.
pub fn group_counts(df: &DataFrame, column: &str) -> Result<Vec<(String, usize)>> {
    Ok(df.column(column)?.value_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dtype::DType;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_strings(
                "race",
                DType::Categorical,
                vec![
                    Some("A".into()),
                    Some("A".into()),
                    Some("W".into()),
                    Some("W".into()),
                    Some("W".into()),
                    None,
                ],
            ),
            Column::from_strings(
                "high",
                DType::Categorical,
                vec![
                    Some("no".into()),
                    Some("no".into()),
                    Some("yes".into()),
                    Some("yes".into()),
                    Some("no".into()),
                    Some("yes".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn contingency_counts_and_marginals() {
        let t = ContingencyTable::from_frame(&df(), "race", "high").unwrap();
        assert_eq!(t.rows, vec!["A", "W"]);
        assert_eq!(t.cols, vec!["no", "yes"]);
        assert_eq!(t.counts, vec![vec![2, 0], vec![1, 2]]);
        assert_eq!(t.total(), 5, "NULL rows excluded");
        assert_eq!(t.row_totals(), vec![2, 3]);
        assert_eq!(t.col_totals(), vec![3, 2]);
    }

    #[test]
    fn group_counts_sorted() {
        let counts = group_counts(&df(), "high").unwrap();
        assert_eq!(counts, vec![("no".to_string(), 3), ("yes".to_string(), 3)]);
    }

    #[test]
    fn contingency_spans_chunk_boundaries() {
        use crate::column::CHUNK_ROWS;
        let n = CHUNK_ROWS + 130;
        let a: Vec<Option<String>> = (0..n)
            .map(|i| match i % 5 {
                0 => None,
                j if j % 2 == 0 => Some("x".to_string()),
                _ => Some("y".to_string()),
            })
            .collect();
        let b: Vec<Option<i64>> = (0..n as i64).map(|i| Some(i % 3)).collect();
        let d = DataFrame::from_columns(vec![
            Column::from_strings("a", DType::Categorical, a.clone()),
            Column::from_ints("b", b.clone()),
        ])
        .unwrap();
        let t = ContingencyTable::from_frame(&d, "a", "b").unwrap();
        // Row-at-a-time reference.
        let mut expect: std::collections::BTreeMap<(String, String), u64> = Default::default();
        for i in 0..n {
            if let Some(va) = &a[i] {
                *expect
                    .entry((va.clone(), b[i].unwrap().to_string()))
                    .or_insert(0) += 1;
            }
        }
        assert_eq!(t.total(), expect.values().sum::<u64>());
        for ((va, vb), cnt) in expect {
            let i = t.rows.iter().position(|r| *r == va).unwrap();
            let j = t.cols.iter().position(|c| *c == vb).unwrap();
            assert_eq!(t.counts[i][j], cnt, "cell ({va}, {vb})");
        }
    }

    #[test]
    fn numeric_columns_group_by_rendered_value() {
        let d = DataFrame::from_columns(vec![Column::from_ints(
            "k",
            vec![Some(2), Some(1), Some(2)],
        )])
        .unwrap();
        let t = ContingencyTable::from_frame(&d, "k", "k").unwrap();
        assert_eq!(t.total(), 3);
        assert_eq!(t.counts[0][0] + t.counts[1][1], 3, "diagonal only");
    }
}
