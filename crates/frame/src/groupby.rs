//! Group-by counting and contingency tables.
//!
//! χ²-based independence profiles (Fig 1 row 7) need the contingency
//! table of two categorical attributes; selectivity discovery needs
//! grouped counts. Both are provided here without a general
//! aggregation engine, which the paper does not require.

use crate::error::Result;
use crate::frame::DataFrame;
use std::collections::BTreeMap;

/// A two-way contingency table over the distinct values of two
/// columns. NULL cells are excluded (pairwise deletion).
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    /// Distinct values of the first attribute (row labels), sorted.
    pub rows: Vec<String>,
    /// Distinct values of the second attribute (column labels), sorted.
    pub cols: Vec<String>,
    /// `counts[i][j]` = number of tuples whose first attribute equals
    /// `rows[i]` and second equals `cols[j]`.
    pub counts: Vec<Vec<u64>>,
}

impl ContingencyTable {
    /// Build from two columns of `df`.
    pub fn from_frame(df: &DataFrame, a: &str, b: &str) -> Result<ContingencyTable> {
        let ca = df.column(a)?;
        let cb = df.column(b)?;
        let mut cells: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut row_set = std::collections::BTreeSet::new();
        let mut col_set = std::collections::BTreeSet::new();
        for i in 0..df.n_rows() {
            if ca.is_null(i) || cb.is_null(i) {
                continue;
            }
            let va = ca.get(i).to_string();
            let vb = cb.get(i).to_string();
            row_set.insert(va.clone());
            col_set.insert(vb.clone());
            *cells.entry((va, vb)).or_insert(0) += 1;
        }
        let rows: Vec<String> = row_set.into_iter().collect();
        let cols: Vec<String> = col_set.into_iter().collect();
        let mut counts = vec![vec![0u64; cols.len()]; rows.len()];
        for ((va, vb), n) in cells {
            let i = rows.binary_search(&va).expect("value in row set");
            let j = cols.binary_search(&vb).expect("value in col set");
            counts[i][j] = n;
        }
        Ok(ContingencyTable { rows, cols, counts })
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Row marginals.
    pub fn row_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column marginals.
    pub fn col_totals(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.cols.len()];
        for row in &self.counts {
            for (j, &c) in row.iter().enumerate() {
                out[j] += c;
            }
        }
        out
    }
}

/// Counts of each distinct (non-NULL) value of one column, sorted by
/// value.
pub fn group_counts(df: &DataFrame, column: &str) -> Result<Vec<(String, usize)>> {
    Ok(df.column(column)?.value_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dtype::DType;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::from_strings(
                "race",
                DType::Categorical,
                vec![
                    Some("A".into()),
                    Some("A".into()),
                    Some("W".into()),
                    Some("W".into()),
                    Some("W".into()),
                    None,
                ],
            ),
            Column::from_strings(
                "high",
                DType::Categorical,
                vec![
                    Some("no".into()),
                    Some("no".into()),
                    Some("yes".into()),
                    Some("yes".into()),
                    Some("no".into()),
                    Some("yes".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn contingency_counts_and_marginals() {
        let t = ContingencyTable::from_frame(&df(), "race", "high").unwrap();
        assert_eq!(t.rows, vec!["A", "W"]);
        assert_eq!(t.cols, vec!["no", "yes"]);
        assert_eq!(t.counts, vec![vec![2, 0], vec![1, 2]]);
        assert_eq!(t.total(), 5, "NULL rows excluded");
        assert_eq!(t.row_totals(), vec![2, 3]);
        assert_eq!(t.col_totals(), vec![3, 2]);
    }

    #[test]
    fn group_counts_sorted() {
        let counts = group_counts(&df(), "high").unwrap();
        assert_eq!(counts, vec![("no".to_string(), 3), ("yes".to_string(), 3)]);
    }

    #[test]
    fn numeric_columns_group_by_rendered_value() {
        let d = DataFrame::from_columns(vec![Column::from_ints(
            "k",
            vec![Some(2), Some(1), Some(2)],
        )])
        .unwrap();
        let t = ContingencyTable::from_frame(&d, "k", "k").unwrap();
        assert_eq!(t.total(), 3);
        assert_eq!(t.counts[0][0] + t.counts[1][1], 3, "diagonal only");
    }
}
