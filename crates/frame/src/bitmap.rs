//! Validity bitmap: one bit per row, packed into `u64` words.

/// A growable bitmap used as a column validity mask (1 = valid,
/// 0 = NULL) and as a row-selection mask for filtering.
///
/// Packed storage keeps per-row NULL tracking at one bit instead of a
/// byte and makes `count_ones` (needed by the `Missing` profile's
/// violation function, Fig 1 row 5) a word-wise popcount.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmap of `len` bits, all set to `value`.
    pub fn with_value(len: usize, value: bool) -> Self {
        let n_words = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![fill; n_words],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Backing `u64` words. Bits at positions `>= len` are always
    /// zero (`with_value`/`push`/`set` maintain the invariant), so
    /// the slice is a canonical representation safe to hash or
    /// compare directly.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `index`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bitmap index {index} out of {}", self.len);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Set bit at `index`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bitmap index {index} out of {}", self.len);
        let (w, b) = (index / 64, index % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let i = self.len - 1;
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Iterator over bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of set bits, ascending. Word-wise: skips empty words
    /// and peels set bits with `trailing_zeros`, so sparse masks
    /// iterate in O(words + ones) rather than O(len).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        // Tail bits beyond `len` are zero by invariant, so no bound
        // check is needed on the emitted indices.
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Word-wise conjunction with an equal-length bitmap.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise disjunction with an equal-length bitmap.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise complement (restores the zero-tail invariant).
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// `count_ones` of the conjunction, without materializing it.
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Append all bits of `other`. When `self.len` is word-aligned —
    /// the case for concatenating full column chunks — this is a
    /// plain word copy.
    pub fn append(&mut self, other: &Bitmap) {
        if self.len.is_multiple_of(64) {
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
        } else {
            for b in other.iter() {
                self.push(b);
            }
        }
    }

    /// Keep only bits at positions where `keep[i]` is true, compacting.
    /// Used when filtering rows out of a column.
    pub fn retain_by(&self, keep: &Bitmap) -> Bitmap {
        assert_eq!(self.len, keep.len, "mask length mismatch");
        let mut out = Bitmap::new();
        for i in 0..self.len {
            if keep.get(i) {
                out.push(self.get(i));
            }
        }
        out
    }

    /// Zero any bits beyond `len` in the last word (keeps
    /// `count_ones` exact after bulk fills).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_value_counts_exactly() {
        let bm = Bitmap::with_value(100, true);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 100);
        assert_eq!(bm.count_zeros(), 0);
        let bm = Bitmap::with_value(65, false);
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.count_zeros(), 65);
    }

    #[test]
    fn push_get_set_across_word_boundary() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(64, true);
        bm.set(63, false);
        assert!(bm.get(64));
        assert!(!bm.get(63));
    }

    #[test]
    fn ones_iterates_set_indices() {
        let bm = Bitmap::from_iter([false, true, true, false, true]);
        let idx: Vec<usize> = bm.ones().collect();
        assert_eq!(idx, vec![1, 2, 4]);
    }

    #[test]
    fn retain_by_compacts() {
        let data = Bitmap::from_iter([true, false, true, true]);
        let keep = Bitmap::from_iter([true, true, false, true]);
        let out = data.retain_by(&keep);
        assert_eq!(out.len(), 3);
        let bits: Vec<bool> = out.iter().collect();
        assert_eq!(bits, vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn get_out_of_bounds_panics() {
        let bm = Bitmap::with_value(3, true);
        bm.get(3);
    }

    /// Reference per-bit implementations for differential checks.
    fn bitwise<F: Fn(bool, bool) -> bool>(a: &Bitmap, b: &Bitmap, f: F) -> Vec<bool> {
        a.iter().zip(b.iter()).map(|(x, y)| f(x, y)).collect()
    }

    fn patterned(len: usize, stride: usize) -> Bitmap {
        Bitmap::from_iter((0..len).map(|i| i % stride == 0))
    }

    #[test]
    fn word_ops_match_bitwise_on_unaligned_lengths() {
        // Lengths straddling word boundaries: 0, 1, 63, 64, 65, 127,
        // 128, 130 — the not() tail masking is the risky case.
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130] {
            let a = patterned(len, 3);
            let b = patterned(len, 5);
            assert_eq!(
                a.and(&b).iter().collect::<Vec<_>>(),
                bitwise(&a, &b, |x, y| x && y),
                "and, len {len}"
            );
            assert_eq!(
                a.or(&b).iter().collect::<Vec<_>>(),
                bitwise(&a, &b, |x, y| x || y),
                "or, len {len}"
            );
            assert_eq!(
                a.not().iter().collect::<Vec<_>>(),
                a.iter().map(|x| !x).collect::<Vec<_>>(),
                "not, len {len}"
            );
            assert_eq!(
                a.not().count_ones(),
                len - a.count_ones(),
                "tail, len {len}"
            );
            assert_eq!(
                a.and_count(&b),
                a.and(&b).count_ones(),
                "and_count, len {len}"
            );
        }
    }

    #[test]
    fn append_aligned_and_unaligned() {
        for (left, right) in [(0usize, 5usize), (64, 64), (128, 1), (7, 130), (63, 65)] {
            let a = patterned(left, 2);
            let b = patterned(right, 3);
            let mut out = a.clone();
            out.append(&b);
            let expect: Vec<bool> = a.iter().chain(b.iter()).collect();
            assert_eq!(out.len(), left + right);
            assert_eq!(out.iter().collect::<Vec<_>>(), expect, "{left}+{right}");
            // The appended bitmap stays canonical: pushing after an
            // append must behave, and words stay tail-masked.
            let mut grown = out.clone();
            grown.push(true);
            assert!(grown.get(left + right));
            assert_eq!(out.count_ones(), expect.iter().filter(|&&x| x).count());
        }
    }

    #[test]
    fn ones_skips_tail_bits_after_not() {
        // not() of an all-true bitmap has zero ones, even with a
        // partial final word — ones() must not emit tail indices.
        let bm = Bitmap::with_value(70, true).not();
        assert_eq!(bm.ones().count(), 0);
        let empty = Bitmap::new();
        assert_eq!(empty.ones().count(), 0);
    }
}
