//! Abuse-the-wire tests: malformed and truncated requests, oversized
//! lines, mid-request disconnects, racing clients, admission limits,
//! and shutdown persistence. The invariants: every failure is a
//! *typed* error response, the server never panics or wedges, and a
//! misbehaving client can never poison another client's cache
//! namespace.

use dp_serve::{field_u64, is_ok, Client, ServeConfig, Server};
use dp_trace::JsonValue;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn start_default() -> (Server, Client) {
    let server = Server::start(ServeConfig::default()).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    (server, client)
}

fn stop(server: Server, client: &mut Client) {
    assert!(is_ok(&client.shutdown().unwrap()));
    server.join();
}

fn error_code(v: &JsonValue) -> Option<String> {
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    v.get("code").and_then(|c| c.as_str()).map(str::to_string)
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let (server, mut client) = start_default();
    for (line, expected) in [
        ("not json at all", "malformed_request"),
        ("{\"op\":\"ping\"", "malformed_request"), // truncated object
        ("[1,2,3]", "malformed_request"),          // not an object
        ("{\"op\":42}", "malformed_request"),      // op not a string
        ("{\"op\":\"martian\"}", "unknown_op"),
        ("{\"op\":\"diagnose\"}", "malformed_request"), // missing system
        (
            "{\"op\":\"diagnose\",\"system\":\"s\",\"algo\":\"sideways\"}",
            "malformed_request",
        ),
        (
            "{\"op\":\"diagnose\",\"system\":\"nope\"}",
            "unknown_system",
        ),
        (
            "{\"op\":\"register\",\"system\":\"s\",\"scenario\":\"no-such\"}",
            "unknown_scenario",
        ),
    ] {
        let v = client.request(line).unwrap();
        assert_eq!(error_code(&v).as_deref(), Some(expected), "line: {line}");
    }
    // The connection is still perfectly usable after nine errors.
    assert!(is_ok(&client.ping().unwrap()));
    stop(server, &mut client);
}

#[test]
fn oversized_request_is_rejected_with_a_typed_error() {
    let server = Server::start(ServeConfig {
        max_line_bytes: 4096,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let huge = format!(
        "{{\"op\":\"warm\",\"system\":\"s\",\"trace\":\"{}\"}}",
        "x".repeat(64 * 1024)
    );
    let v = client.request(&huge).unwrap();
    assert_eq!(error_code(&v).as_deref(), Some("oversized_request"));
    // The server hangs up after an oversized line (the remainder is
    // unrecoverable) — but keeps serving new connections.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert!(is_ok(&fresh.ping().unwrap()));
    stop(server, &mut fresh);
}

#[test]
fn mid_request_disconnect_leaves_the_server_healthy() {
    let (server, mut client) = start_default();
    // A client that dies halfway through writing a request…
    {
        let mut dying = TcpStream::connect(server.local_addr()).unwrap();
        dying.write_all(b"{\"op\":\"regi").unwrap();
        dying.flush().unwrap();
        // dropped here without ever sending a newline
    }
    // …and one that dies right after the newline, without reading.
    {
        let mut dying = TcpStream::connect(server.local_addr()).unwrap();
        dying.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        dying.flush().unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    assert!(is_ok(&client.ping().unwrap()));
    assert!(is_ok(
        &client.register("ex", "example1", None, None).unwrap()
    ));
    assert!(is_ok(&client.diagnose("ex", "greedy", None).unwrap()));
    stop(server, &mut client);
}

#[test]
fn bad_warm_and_restore_payloads_never_poison_the_namespace() {
    let (server, mut client) = start_default();
    assert!(is_ok(
        &client.register("ex", "example1", None, None).unwrap()
    ));
    let baseline = client.diagnose("ex", "greedy", None).unwrap();
    assert!(is_ok(&baseline), "{baseline:?}");

    let v = client.warm("ex", "this is not jsonl\n").unwrap();
    assert_eq!(error_code(&v).as_deref(), Some("bad_trace"));
    // A trace from a future schema version is refused, not guessed at.
    let future = "{\"v\":9999,\"seq\":0,\"t_ns\":0,\"event\":{\"kind\":\"oracle_query\"}}\n";
    let v = client.warm("ex", future).unwrap();
    assert_eq!(error_code(&v).as_deref(), Some("bad_trace"));
    let v = client
        .restore("ex", "dp-score-cache v1\nnot a pair\n")
        .unwrap();
    assert_eq!(error_code(&v).as_deref(), Some("bad_snapshot"));
    let v = client.restore("ex", "wrong header\n").unwrap();
    assert_eq!(error_code(&v).as_deref(), Some("bad_snapshot"));

    // Diagnosis after all the garbage: still identical to before.
    let after = client.diagnose("ex", "greedy", None).unwrap();
    assert!(is_ok(&after), "{after:?}");
    assert_eq!(field_u64(&after, "digest"), field_u64(&baseline, "digest"));
    stop(server, &mut client);
}

#[test]
fn racing_clients_on_one_namespace_agree_bit_for_bit() {
    let (server, mut client) = start_default();
    assert!(is_ok(
        &client.register("ex", "example1", None, None).unwrap()
    ));
    let addr = server.local_addr();
    let n_clients = 4;
    let per_client = 2;
    let barrier = Arc::new(Barrier::new(n_clients));
    let handles: Vec<_> = (0..n_clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                barrier.wait();
                (0..per_client)
                    .map(|_| {
                        let v = c.diagnose("ex", "greedy", None).unwrap();
                        assert!(is_ok(&v), "{v:?}");
                        field_u64(&v, "digest").unwrap()
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    let digests: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert_eq!(digests.len(), n_clients * per_client);
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "racing clients saw different explanations: {digests:?}"
    );
    let stats = client.stats(Some("ex")).unwrap();
    assert_eq!(
        field_u64(&stats, "diagnoses"),
        Some((n_clients * per_client) as u64)
    );
    assert!(field_u64(&stats, "cache_entries").unwrap() > 0);
    stop(server, &mut client);
}

#[test]
fn diagnose_replies_and_stats_carry_lint_counters() {
    let (server, mut client) = start_default();
    assert!(is_ok(
        &client.register("ex", "example1", None, None).unwrap()
    ));
    let v = client.diagnose("ex", "greedy", None).unwrap();
    assert!(is_ok(&v), "{v:?}");
    // The bundled scenarios register with the default `Lint::Report`
    // config, so every reply carries the analyzed lint block.
    assert_eq!(v.get("lint_analyzed").and_then(|b| b.as_bool()), Some(true));
    for field in [
        "lint_errors",
        "lint_warnings",
        "lint_pruned",
        "lint_subsumed",
        "lint_unreachable",
        "lint_commuting_pairs",
    ] {
        assert!(field_u64(&v, field).is_some(), "missing {field}: {v:?}");
    }
    // Report mode never prunes or subsumes — it only reports.
    assert_eq!(field_u64(&v, "lint_pruned"), Some(0));
    assert_eq!(field_u64(&v, "lint_subsumed"), Some(0));
    let pairs = field_u64(&v, "lint_commuting_pairs").unwrap();

    // Per-namespace stats accumulate the same totals across runs.
    let v2 = client.diagnose("ex", "greedy", None).unwrap();
    assert!(is_ok(&v2));
    let stats = client.stats(Some("ex")).unwrap();
    assert_eq!(field_u64(&stats, "lint_pruned_total"), Some(0));
    assert_eq!(field_u64(&stats, "lint_subsumed_total"), Some(0));
    assert_eq!(
        field_u64(&stats, "lint_commuting_pairs_total"),
        Some(2 * pairs),
        "two identical diagnoses fold in twice: {stats:?}"
    );
    stop(server, &mut client);
}

#[test]
fn admission_control_sheds_load_with_typed_busy_errors() {
    let server = Server::start(ServeConfig {
        max_inflight: 1,
        max_queue: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // A non-trivial scenario so diagnoses overlap for real.
    assert!(is_ok(
        &client.register("card", "cardio", None, None).unwrap()
    ));

    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                barrier.wait();
                let v = c.diagnose("card", "greedy", None).unwrap();
                match v.get("ok").and_then(|b| b.as_bool()) {
                    Some(true) => ("ok", field_u64(&v, "digest")),
                    Some(false) => {
                        let code = v.get("code").and_then(|c| c.as_str()).unwrap().to_string();
                        assert_eq!(code, "busy", "only busy is acceptable: {v:?}");
                        ("busy", None)
                    }
                    None => panic!("untyped response: {v:?}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let oks: Vec<u64> = outcomes.iter().filter_map(|(_, d)| *d).collect();
    let busy = outcomes.iter().filter(|(s, _)| *s == "busy").count();
    assert!(!oks.is_empty(), "at least one diagnosis must get through");
    assert!(
        oks.windows(2).all(|w| w[0] == w[1]),
        "admitted diagnoses must still agree: {oks:?}"
    );
    let stats = client.stats(None).unwrap();
    assert_eq!(field_u64(&stats, "busy_rejections"), Some(busy as u64));
    assert_eq!(field_u64(&stats, "diagnoses_ok"), Some(oks.len() as u64));
    stop(server, &mut client);
}

#[test]
fn shutdown_flushes_snapshots_a_new_server_reloads() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("serve_snap_{}", std::process::id()));
    let config = ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let server = Server::start(config.clone()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(is_ok(
        &client.register("ex", "example1", None, None).unwrap()
    ));
    let cold = client.diagnose("ex", "greedy", None).unwrap();
    assert!(is_ok(&cold), "{cold:?}");
    let bye = client.shutdown().unwrap();
    assert!(is_ok(&bye), "{bye:?}");
    assert!(field_u64(&bye, "snapshots_flushed").unwrap() >= 1);
    server.join();
    assert!(dir.join("ex.dpcache").is_file(), "flushed snapshot file");

    // A new server process over the same snapshot dir: registering
    // the same name reloads the namespace, and the first diagnosis
    // is warm and bit-identical.
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reg = client.register("ex", "example1", None, None).unwrap();
    assert!(is_ok(&reg), "{reg:?}");
    assert!(
        field_u64(&reg, "snapshot_entries_reloaded").unwrap() > 0,
        "{reg:?}"
    );
    let warm = client.diagnose("ex", "greedy", None).unwrap();
    assert!(is_ok(&warm), "{warm:?}");
    assert_eq!(field_u64(&warm, "digest"), field_u64(&cold, "digest"));
    assert!(field_u64(&warm, "warm_hits").unwrap() > 0);
    stop(server, &mut client);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_server_rejects_new_work_with_a_typed_error() {
    let (server, mut client) = start_default();
    let mut other = Client::connect(server.local_addr()).unwrap();
    assert!(is_ok(&client.shutdown().unwrap()));
    // The racing second connection either gets a typed
    // `shutting_down` error or a clean close — never a hang or a
    // protocol violation.
    match other.request("{\"op\":\"register\",\"system\":\"x\",\"scenario\":\"example1\"}") {
        Ok(v) => assert_eq!(error_code(&v).as_deref(), Some("shutting_down")),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected failure mode: {e:?}"
        ),
    }
    server.join();
}
