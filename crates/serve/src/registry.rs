//! The server-side system registry: named diagnosis targets, each
//! with its own server-resident cache namespace.
//!
//! A `register` request binds a client-chosen name to one of the
//! bundled evaluation scenarios (built at a requested size and seed,
//! so tests can register cheap instances). Each registered system
//! owns an [`LruScoreCache`] namespace; diagnoses against the same
//! name share it, diagnoses against different names never touch each
//! other's entries.
//!
//! Locking discipline: the registry map lock is held only to look up
//! or insert an `Arc` entry; each entry has its own lock, held only
//! to copy the cache out before a diagnosis and absorb results back
//! after — never across a system evaluation. A client thread that
//! panics mid-diagnosis therefore cannot leave a namespace
//! half-updated, and poisoned locks are recovered (the protected
//! state is always consistent at unlock points).

use crate::lru::LruScoreCache;
use dataprism::{PrismConfig, SystemFactory};
use dp_frame::DataFrame;
use dp_scenarios::Scenario;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Recover from lock poisoning: every critical section in this crate
/// leaves the protected state consistent, so a panic elsewhere must
/// not cascade into every future request.
pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The immutable part of a registered system: what a diagnosis needs,
/// shareable across racing connection threads without holding the
/// namespace lock.
pub struct SystemSpec {
    /// Scenario key this system was built from (`income`, …).
    pub scenario: String,
    /// Dataset the system functions properly on.
    pub d_pass: DataFrame,
    /// Dataset the system malfunctions on.
    pub d_fail: DataFrame,
    /// The scenario's diagnosis configuration.
    pub config: PrismConfig,
    /// Builds fresh system instances for the parallel runtime.
    pub factory: Box<dyn SystemFactory + Send + Sync>,
}

/// Mutable per-system state guarded by the namespace lock.
pub struct SystemEntry {
    /// The shared immutable spec.
    pub spec: Arc<SystemSpec>,
    /// This system's server-resident cache namespace.
    pub cache: LruScoreCache,
    /// Diagnoses completed against this system.
    pub diagnoses: u64,
    /// Cumulative lint totals across this namespace's diagnoses
    /// (zero when the registered config runs `Lint::Off`).
    pub lint: LintTotals,
    /// The live stream watcher, installed by `watch`. `None` until a
    /// client opts in to continuous monitoring.
    pub watcher: Option<dp_monitor::Watcher>,
    /// Cumulative monitoring totals. Unlike the watcher's own
    /// `RunMetrics` — which describe only the current stream — these
    /// survive a re-`watch`, mirroring how the cache survives
    /// re-registration.
    pub drift: DriftTotals,
}

/// Running continuous-monitoring totals for one namespace.
#[derive(Debug, Default, Clone, Copy)]
pub struct DriftTotals {
    /// Row batches folded into live sketches.
    pub batches_ingested: u64,
    /// Rows across all ingested batches.
    pub rows_ingested: u64,
    /// Drift checks scored against the baseline profiles.
    pub checks: u64,
    /// Drift checks that crossed τ_drift.
    pub triggers: u64,
}

/// Running lint-pass totals for one namespace, folded in after every
/// successful diagnosis so `stats` can report how much static
/// analysis saved without replaying traces.
#[derive(Debug, Default, Clone, Copy)]
pub struct LintTotals {
    /// Error-severity candidates dropped before ranking (L1/L2/L7).
    pub pruned: u64,
    /// Candidates merged into equivalence-class representatives (L6).
    pub subsumed: u64,
    /// τ-unreachability certificates issued (L7).
    pub unreachable: u64,
    /// Candidate pairs certified commuting (L8).
    pub commuting_pairs: u64,
}

/// Scenario keys `register` accepts.
pub const SCENARIOS: [&str; 6] = [
    "example1",
    "sentiment",
    "income",
    "cardio",
    "ezgo",
    "sensors",
];

/// Build a bundled scenario by key. `rows`/`seed` default to small,
/// serving-friendly sizes (the full-size variants are the bench
/// harness's business).
pub fn build_scenario(key: &str, rows: Option<usize>, seed: Option<u64>) -> Option<Scenario> {
    use dp_scenarios::{cardio, example1, ezgo, income, sensors, sentiment};
    let s = seed;
    Some(match key {
        "example1" => example1::scenario(),
        "sentiment" => sentiment::scenario_with_size(rows.unwrap_or(240), s.unwrap_or(11)),
        "income" => income::scenario_with_size(rows.unwrap_or(300), s.unwrap_or(7)),
        "cardio" => cardio::scenario_with_size(rows.unwrap_or(300), s.unwrap_or(5)),
        "ezgo" => ezgo::scenario_with_size(rows.unwrap_or(400), s.unwrap_or(2)),
        "sensors" => sensors::scenario_with_size(rows.unwrap_or(250), s.unwrap_or(4)),
        _ => return None,
    })
}

/// All registered systems, by client-chosen name.
pub struct Registry {
    systems: Mutex<HashMap<String, Arc<Mutex<SystemEntry>>>>,
    /// Byte budget for each newly created cache namespace.
    budget_bytes: usize,
}

impl Registry {
    /// An empty registry whose namespaces are bounded by
    /// `budget_bytes` each.
    pub fn new(budget_bytes: usize) -> Registry {
        Registry {
            systems: Mutex::new(HashMap::new()),
            budget_bytes,
        }
    }

    /// Register (or re-register) `name` as an instance of scenario
    /// `key`. Re-registering replaces the spec but **keeps** the
    /// existing cache namespace — same scenario key, rows, and seed
    /// produce the same system, and a changed spec changes the
    /// fingerprints anyway, so stale entries are merely unused.
    /// Returns `None` if the scenario key is unknown.
    pub fn register(
        &self,
        name: &str,
        key: &str,
        rows: Option<usize>,
        seed: Option<u64>,
    ) -> Option<usize> {
        let scenario = build_scenario(key, rows, seed)?;
        let spec = Arc::new(SystemSpec {
            scenario: key.to_string(),
            d_pass: scenario.d_pass,
            d_fail: scenario.d_fail,
            config: scenario.config,
            factory: scenario.factory,
        });
        let mut systems = lock_or_recover(&self.systems);
        let entry = systems
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(SystemEntry {
                    spec: Arc::clone(&spec),
                    cache: LruScoreCache::with_budget(self.budget_bytes),
                    diagnoses: 0,
                    lint: LintTotals::default(),
                    watcher: None,
                    drift: DriftTotals::default(),
                }))
            })
            .clone();
        drop(systems);
        let mut entry = lock_or_recover(&entry);
        entry.spec = spec;
        Some(entry.cache.len())
    }

    /// Look up a registered system's entry.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<SystemEntry>>> {
        lock_or_recover(&self.systems).get(name).cloned()
    }

    /// Names of all registered systems, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock_or_recover(&self.systems).keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot every namespace (for the shutdown flush): sorted
    /// `(name, snapshot_text)` pairs.
    pub fn snapshot_all(&self) -> Vec<(String, String)> {
        self.names()
            .into_iter()
            .filter_map(|name| {
                let entry = self.get(&name)?;
                let entry = lock_or_recover(&entry);
                Some((name, entry.cache.to_score_cache().to_snapshot()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_and_names() {
        let reg = Registry::new(1 << 20);
        assert!(reg.register("inc", "income", Some(60), Some(7)).is_some());
        assert!(reg.register("ex", "example1", None, None).is_some());
        assert!(reg
            .register("bad", "no-such-scenario", None, None)
            .is_none());
        assert_eq!(reg.names(), vec!["ex".to_string(), "inc".to_string()]);
        assert!(reg.get("inc").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn reregister_keeps_the_namespace() {
        let reg = Registry::new(1 << 20);
        reg.register("inc", "income", Some(60), Some(7)).unwrap();
        {
            let entry = reg.get("inc").unwrap();
            lock_or_recover(&entry).cache.insert(42, 0.5);
        }
        let resident = reg.register("inc", "income", Some(60), Some(7)).unwrap();
        assert_eq!(resident, 1, "cache survives re-registration");
    }

    #[test]
    fn every_scenario_key_builds() {
        for key in SCENARIOS {
            assert!(build_scenario(key, Some(40), Some(3)).is_some(), "{key}");
        }
    }
}
