//! A minimal blocking client for the line protocol, used by the CLI
//! smoke mode and the test suites. One request line out, one
//! response line in.

use crate::protocol::MAX_REQUEST_BYTES;
use dp_trace::{json_escape, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Send one raw line (no trailing newline) and read one response
    /// line.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Send one raw line and parse the response as JSON.
    pub fn request(&mut self, line: &str) -> std::io::Result<JsonValue> {
        let response = self.request_raw(line)?;
        JsonValue::parse(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// `ping`.
    pub fn ping(&mut self) -> std::io::Result<JsonValue> {
        self.request("{\"op\":\"ping\"}")
    }

    /// `register` a system as an instance of a bundled scenario.
    pub fn register(
        &mut self,
        system: &str,
        scenario: &str,
        rows: Option<usize>,
        seed: Option<u64>,
    ) -> std::io::Result<JsonValue> {
        let mut line = format!(
            "{{\"op\":\"register\",\"system\":{},\"scenario\":{}",
            json_escape(system),
            json_escape(scenario)
        );
        if let Some(rows) = rows {
            line.push_str(&format!(",\"rows\":{rows}"));
        }
        if let Some(seed) = seed {
            line.push_str(&format!(",\"seed\":{seed}"));
        }
        line.push('}');
        self.request(&line)
    }

    /// `diagnose` a registered system.
    pub fn diagnose(
        &mut self,
        system: &str,
        algo: &str,
        threads: Option<usize>,
    ) -> std::io::Result<JsonValue> {
        self.diagnose_with(system, algo, threads, None, None)
    }

    /// `diagnose` with executor overrides: speculation `mode`
    /// (`"static"`/`"adaptive"`) and in-flight speculative frame
    /// `budget` for this one diagnosis.
    pub fn diagnose_with(
        &mut self,
        system: &str,
        algo: &str,
        threads: Option<usize>,
        mode: Option<&str>,
        budget: Option<usize>,
    ) -> std::io::Result<JsonValue> {
        let mut line = format!(
            "{{\"op\":\"diagnose\",\"system\":{},\"algo\":{}",
            json_escape(system),
            json_escape(algo)
        );
        if let Some(threads) = threads {
            line.push_str(&format!(",\"threads\":{threads}"));
        }
        if let Some(mode) = mode {
            line.push_str(&format!(",\"mode\":{}", json_escape(mode)));
        }
        if let Some(budget) = budget {
            line.push_str(&format!(",\"budget\":{budget}"));
        }
        line.push('}');
        self.request(&line)
    }

    /// `warm` a system's cache namespace from JSONL trace text.
    pub fn warm(&mut self, system: &str, trace: &str) -> std::io::Result<JsonValue> {
        let line = format!(
            "{{\"op\":\"warm\",\"system\":{},\"trace\":{}}}",
            json_escape(system),
            json_escape(trace)
        );
        if line.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "trace too large for one request line",
            ));
        }
        self.request(&line)
    }

    /// `snapshot` a system's cache namespace; returns the snapshot
    /// text.
    pub fn snapshot(&mut self, system: &str) -> std::io::Result<String> {
        let v = self.request(&format!(
            "{{\"op\":\"snapshot\",\"system\":{}}}",
            json_escape(system)
        ))?;
        v.get("snapshot")
            .and_then(|s| s.as_str())
            .map(str::to_string)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "missing snapshot field")
            })
    }

    /// `restore` a snapshot into a system's cache namespace.
    pub fn restore(&mut self, system: &str, snapshot: &str) -> std::io::Result<JsonValue> {
        self.request(&format!(
            "{{\"op\":\"restore\",\"system\":{},\"snapshot\":{}}}",
            json_escape(system),
            json_escape(snapshot)
        ))
    }

    /// `watch`: start continuous monitoring of a system.
    pub fn watch(
        &mut self,
        system: &str,
        tau: Option<f64>,
        window: Option<usize>,
    ) -> std::io::Result<JsonValue> {
        let mut line = format!("{{\"op\":\"watch\",\"system\":{}", json_escape(system));
        if let Some(tau) = tau {
            line.push_str(&format!(",\"tau\":{tau:?}"));
        }
        if let Some(window) = window {
            line.push_str(&format!(",\"window\":{window}"));
        }
        line.push('}');
        self.request(&line)
    }

    /// `ingest`: append one CSV batch to a watched system's stream.
    pub fn ingest(&mut self, system: &str, rows_csv: &str) -> std::io::Result<JsonValue> {
        self.request(&format!(
            "{{\"op\":\"ingest\",\"system\":{},\"rows_csv\":{}}}",
            json_escape(system),
            json_escape(rows_csv)
        ))
    }

    /// `drift`: score the watched window; with `diagnose`, escalate
    /// drifted profiles into a targeted re-diagnosis
    /// (`algo` = `"greedy"` or `"group_test"`).
    pub fn drift(
        &mut self,
        system: &str,
        diagnose: bool,
        algo: &str,
    ) -> std::io::Result<JsonValue> {
        self.request(&format!(
            "{{\"op\":\"drift\",\"system\":{},\"diagnose\":{diagnose},\"algo\":{}}}",
            json_escape(system),
            json_escape(algo)
        ))
    }

    /// `metrics`: the Prometheus text-format scrape body.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let v = self.request("{\"op\":\"metrics\"}")?;
        v.get("body")
            .and_then(|s| s.as_str())
            .map(str::to_string)
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "missing body field")
            })
    }

    /// `stats`, server-wide or for one system.
    pub fn stats(&mut self, system: Option<&str>) -> std::io::Result<JsonValue> {
        match system {
            Some(s) => self.request(&format!(
                "{{\"op\":\"stats\",\"system\":{}}}",
                json_escape(s)
            )),
            None => self.request("{\"op\":\"stats\"}"),
        }
    }

    /// `shutdown` the server gracefully.
    pub fn shutdown(&mut self) -> std::io::Result<JsonValue> {
        self.request("{\"op\":\"shutdown\"}")
    }
}

/// Convenience: was the response `"ok": true`?
pub fn is_ok(v: &JsonValue) -> bool {
    v.get("ok").and_then(|b| b.as_bool()) == Some(true)
}

/// Convenience: pull a u64 field out of a response.
pub fn field_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(|f| f.as_u64())
}
