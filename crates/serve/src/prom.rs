//! Prometheus text-format rendering for the `metrics` op.
//!
//! One scrape carries three layers: server-wide request counters,
//! per-namespace diagnosis/cache/lint totals, and the continuous-
//! monitoring counters (ingest, drift checks/triggers, and the
//! ingest-latency histogram) for watched namespaces. The output
//! follows the exposition format version 0.0.4 — `# HELP`/`# TYPE`
//! once per metric family, one sample line per namespace, label
//! values escaped — and is deterministic for a given input (names
//! pre-sorted by the caller), so it can be golden-tested byte for
//! byte.

use crate::registry::{DriftTotals, LintTotals};
use dp_trace::{LatencyHistogram, LATENCY_BOUNDS_NS};

/// Server-wide counters for one scrape.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerScrape {
    /// Request lines handled.
    pub requests: u64,
    /// Lines rejected before dispatch.
    pub protocol_errors: u64,
    /// Diagnoses rejected by admission control.
    pub busy_rejections: u64,
    /// Diagnoses that returned an explanation.
    pub diagnoses_ok: u64,
    /// Diagnoses that returned an error.
    pub diagnoses_err: u64,
    /// Registered systems.
    pub systems: usize,
}

/// One namespace's slice of the scrape.
#[derive(Debug, Clone)]
pub struct NamespaceScrape {
    /// Registered system name (the `system` label value).
    pub name: String,
    /// Resident cache entries.
    pub cache_entries: usize,
    /// Cache evictions since registration.
    pub evictions: u64,
    /// Completed diagnoses.
    pub diagnoses: u64,
    /// Cumulative lint totals.
    pub lint: LintTotals,
    /// Cumulative monitoring totals.
    pub drift: DriftTotals,
    /// Whether a watcher is currently active.
    pub watching: bool,
    /// The active watcher's ingest-latency histogram, when watching.
    pub ingest_latency: Option<LatencyHistogram>,
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn f64_text(v: f64) -> String {
    // Shortest round-trip decimal; Prometheus parsers accept
    // scientific notation.
    format!("{v:?}")
}

struct Page {
    buf: String,
}

impl Page {
    fn new() -> Page {
        Page { buf: String::new() }
    }

    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.buf.push_str(&format!("# HELP {name} {help}\n"));
        self.buf.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, system: Option<&str>, value: u64) {
        self.sample_text(name, system, &value.to_string());
    }

    fn sample_text(&mut self, name: &str, system: Option<&str>, value: &str) {
        match system {
            Some(s) => self.buf.push_str(&format!(
                "{name}{{system=\"{}\"}} {value}\n",
                escape_label(s)
            )),
            None => self.buf.push_str(&format!("{name} {value}\n")),
        }
    }

    /// One counter family with a sample per namespace.
    fn per_namespace(
        &mut self,
        name: &str,
        kind: &str,
        help: &str,
        namespaces: &[NamespaceScrape],
        value: impl Fn(&NamespaceScrape) -> u64,
    ) {
        if namespaces.is_empty() {
            return;
        }
        self.family(name, kind, help);
        for ns in namespaces {
            self.sample(name, Some(&ns.name), value(ns));
        }
    }
}

/// Render one full scrape. `namespaces` must be sorted by name (the
/// registry's `names()` order) so the output is deterministic.
pub fn render(server: &ServerScrape, namespaces: &[NamespaceScrape]) -> String {
    let mut page = Page::new();
    page.family(
        "dp_serve_requests_total",
        "counter",
        "Request lines handled.",
    );
    page.sample("dp_serve_requests_total", None, server.requests);
    page.family(
        "dp_serve_protocol_errors_total",
        "counter",
        "Request lines rejected before dispatch.",
    );
    page.sample(
        "dp_serve_protocol_errors_total",
        None,
        server.protocol_errors,
    );
    page.family(
        "dp_serve_busy_rejections_total",
        "counter",
        "Diagnoses rejected by admission control.",
    );
    page.sample(
        "dp_serve_busy_rejections_total",
        None,
        server.busy_rejections,
    );
    page.family(
        "dp_serve_diagnoses_ok_total",
        "counter",
        "Diagnoses that returned an explanation.",
    );
    page.sample("dp_serve_diagnoses_ok_total", None, server.diagnoses_ok);
    page.family(
        "dp_serve_diagnoses_err_total",
        "counter",
        "Diagnoses that returned an error.",
    );
    page.sample("dp_serve_diagnoses_err_total", None, server.diagnoses_err);
    page.family("dp_serve_systems", "gauge", "Registered systems.");
    page.sample("dp_serve_systems", None, server.systems as u64);

    page.per_namespace(
        "dp_cache_entries",
        "gauge",
        "Resident cache entries in the namespace.",
        namespaces,
        |ns| ns.cache_entries as u64,
    );
    page.per_namespace(
        "dp_cache_evictions_total",
        "counter",
        "Cache entries evicted by the namespace budget.",
        namespaces,
        |ns| ns.evictions,
    );
    page.per_namespace(
        "dp_diagnoses_total",
        "counter",
        "Completed diagnoses against the namespace.",
        namespaces,
        |ns| ns.diagnoses,
    );
    page.per_namespace(
        "dp_lint_pruned_total",
        "counter",
        "Candidates pruned by the lint pass before ranking.",
        namespaces,
        |ns| ns.lint.pruned,
    );
    page.per_namespace(
        "dp_lint_subsumed_total",
        "counter",
        "Candidates merged into equivalence-class representatives.",
        namespaces,
        |ns| ns.lint.subsumed,
    );
    page.per_namespace(
        "dp_lint_unreachable_total",
        "counter",
        "Tau-unreachability certificates issued.",
        namespaces,
        |ns| ns.lint.unreachable,
    );
    page.per_namespace(
        "dp_lint_commuting_pairs_total",
        "counter",
        "Candidate pairs certified commuting.",
        namespaces,
        |ns| ns.lint.commuting_pairs,
    );
    page.per_namespace(
        "dp_monitor_watching",
        "gauge",
        "Whether a watcher is active on the namespace.",
        namespaces,
        |ns| ns.watching as u64,
    );
    page.per_namespace(
        "dp_monitor_batches_ingested_total",
        "counter",
        "Row batches folded into live sketches.",
        namespaces,
        |ns| ns.drift.batches_ingested,
    );
    page.per_namespace(
        "dp_monitor_rows_ingested_total",
        "counter",
        "Rows across all ingested batches.",
        namespaces,
        |ns| ns.drift.rows_ingested,
    );
    page.per_namespace(
        "dp_monitor_drift_checks_total",
        "counter",
        "Drift checks scored against the baseline profiles.",
        namespaces,
        |ns| ns.drift.checks,
    );
    page.per_namespace(
        "dp_monitor_drift_triggers_total",
        "counter",
        "Drift checks that crossed tau_drift.",
        namespaces,
        |ns| ns.drift.triggers,
    );

    let watched: Vec<&NamespaceScrape> = namespaces
        .iter()
        .filter(|ns| ns.ingest_latency.is_some())
        .collect();
    if !watched.is_empty() {
        page.family(
            "dp_monitor_ingest_latency_seconds",
            "histogram",
            "Latency of batch ingests (sketch builds plus merges).",
        );
        for ns in watched {
            let hist = ns.ingest_latency.as_ref().expect("filtered to watched");
            let label = escape_label(&ns.name);
            let mut cumulative = 0u64;
            for (bucket, bound_ns) in hist.buckets.iter().zip(LATENCY_BOUNDS_NS.iter()) {
                cumulative += bucket;
                page.buf.push_str(&format!(
                    "dp_monitor_ingest_latency_seconds_bucket{{system=\"{label}\",le=\"{}\"}} {cumulative}\n",
                    f64_text(*bound_ns as f64 / 1e9),
                ));
            }
            page.buf.push_str(&format!(
                "dp_monitor_ingest_latency_seconds_bucket{{system=\"{label}\",le=\"+Inf\"}} {}\n",
                hist.count
            ));
            page.buf.push_str(&format!(
                "dp_monitor_ingest_latency_seconds_sum{{system=\"{label}\"}} {}\n",
                f64_text(hist.sum_ns as f64 / 1e9)
            ));
            page.buf.push_str(&format!(
                "dp_monitor_ingest_latency_seconds_count{{system=\"{label}\"}} {}\n",
                hist.count
            ));
        }
    }
    page.buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape_fixture() -> (ServerScrape, Vec<NamespaceScrape>) {
        let server = ServerScrape {
            requests: 12,
            protocol_errors: 1,
            busy_rejections: 0,
            diagnoses_ok: 3,
            diagnoses_err: 1,
            systems: 2,
        };
        let mut hist = LatencyHistogram::default();
        hist.record(5_000); // < 10µs bucket
        hist.record(50_000); // < 100µs bucket
        hist.record(50_000);
        let namespaces = vec![
            NamespaceScrape {
                name: "inc".into(),
                cache_entries: 41,
                evictions: 2,
                diagnoses: 3,
                lint: LintTotals {
                    pruned: 5,
                    subsumed: 1,
                    unreachable: 2,
                    commuting_pairs: 4,
                },
                drift: DriftTotals {
                    batches_ingested: 3,
                    rows_ingested: 90,
                    checks: 3,
                    triggers: 1,
                },
                watching: true,
                ingest_latency: Some(hist),
            },
            NamespaceScrape {
                name: "sent \"q\"".into(),
                cache_entries: 0,
                evictions: 0,
                diagnoses: 1,
                lint: LintTotals::default(),
                drift: DriftTotals::default(),
                watching: false,
                ingest_latency: None,
            },
        ];
        (server, namespaces)
    }

    /// The scrape is golden: any byte-level change to the exposition
    /// (names, ordering, escaping, histogram math) must be a
    /// conscious edit here.
    #[test]
    fn scrape_is_byte_identical_to_the_golden_page() {
        let (server, namespaces) = scrape_fixture();
        let page = render(&server, &namespaces);
        let golden = "\
# HELP dp_serve_requests_total Request lines handled.
# TYPE dp_serve_requests_total counter
dp_serve_requests_total 12
# HELP dp_serve_protocol_errors_total Request lines rejected before dispatch.
# TYPE dp_serve_protocol_errors_total counter
dp_serve_protocol_errors_total 1
# HELP dp_serve_busy_rejections_total Diagnoses rejected by admission control.
# TYPE dp_serve_busy_rejections_total counter
dp_serve_busy_rejections_total 0
# HELP dp_serve_diagnoses_ok_total Diagnoses that returned an explanation.
# TYPE dp_serve_diagnoses_ok_total counter
dp_serve_diagnoses_ok_total 3
# HELP dp_serve_diagnoses_err_total Diagnoses that returned an error.
# TYPE dp_serve_diagnoses_err_total counter
dp_serve_diagnoses_err_total 1
# HELP dp_serve_systems Registered systems.
# TYPE dp_serve_systems gauge
dp_serve_systems 2
# HELP dp_cache_entries Resident cache entries in the namespace.
# TYPE dp_cache_entries gauge
dp_cache_entries{system=\"inc\"} 41
dp_cache_entries{system=\"sent \\\"q\\\"\"} 0
# HELP dp_cache_evictions_total Cache entries evicted by the namespace budget.
# TYPE dp_cache_evictions_total counter
dp_cache_evictions_total{system=\"inc\"} 2
dp_cache_evictions_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_diagnoses_total Completed diagnoses against the namespace.
# TYPE dp_diagnoses_total counter
dp_diagnoses_total{system=\"inc\"} 3
dp_diagnoses_total{system=\"sent \\\"q\\\"\"} 1
# HELP dp_lint_pruned_total Candidates pruned by the lint pass before ranking.
# TYPE dp_lint_pruned_total counter
dp_lint_pruned_total{system=\"inc\"} 5
dp_lint_pruned_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_lint_subsumed_total Candidates merged into equivalence-class representatives.
# TYPE dp_lint_subsumed_total counter
dp_lint_subsumed_total{system=\"inc\"} 1
dp_lint_subsumed_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_lint_unreachable_total Tau-unreachability certificates issued.
# TYPE dp_lint_unreachable_total counter
dp_lint_unreachable_total{system=\"inc\"} 2
dp_lint_unreachable_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_lint_commuting_pairs_total Candidate pairs certified commuting.
# TYPE dp_lint_commuting_pairs_total counter
dp_lint_commuting_pairs_total{system=\"inc\"} 4
dp_lint_commuting_pairs_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_monitor_watching Whether a watcher is active on the namespace.
# TYPE dp_monitor_watching gauge
dp_monitor_watching{system=\"inc\"} 1
dp_monitor_watching{system=\"sent \\\"q\\\"\"} 0
# HELP dp_monitor_batches_ingested_total Row batches folded into live sketches.
# TYPE dp_monitor_batches_ingested_total counter
dp_monitor_batches_ingested_total{system=\"inc\"} 3
dp_monitor_batches_ingested_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_monitor_rows_ingested_total Rows across all ingested batches.
# TYPE dp_monitor_rows_ingested_total counter
dp_monitor_rows_ingested_total{system=\"inc\"} 90
dp_monitor_rows_ingested_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_monitor_drift_checks_total Drift checks scored against the baseline profiles.
# TYPE dp_monitor_drift_checks_total counter
dp_monitor_drift_checks_total{system=\"inc\"} 3
dp_monitor_drift_checks_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_monitor_drift_triggers_total Drift checks that crossed tau_drift.
# TYPE dp_monitor_drift_triggers_total counter
dp_monitor_drift_triggers_total{system=\"inc\"} 1
dp_monitor_drift_triggers_total{system=\"sent \\\"q\\\"\"} 0
# HELP dp_monitor_ingest_latency_seconds Latency of batch ingests (sketch builds plus merges).
# TYPE dp_monitor_ingest_latency_seconds histogram
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"1e-5\"} 1
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"0.0001\"} 3
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"0.001\"} 3
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"0.01\"} 3
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"0.1\"} 3
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"1.0\"} 3
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"10.0\"} 3
dp_monitor_ingest_latency_seconds_bucket{system=\"inc\",le=\"+Inf\"} 3
dp_monitor_ingest_latency_seconds_sum{system=\"inc\"} 0.000105
dp_monitor_ingest_latency_seconds_count{system=\"inc\"} 3
";
        assert_eq!(page, golden);
    }

    #[test]
    fn empty_registry_renders_server_counters_only() {
        let page = render(&ServerScrape::default(), &[]);
        assert!(page.contains("dp_serve_requests_total 0"));
        assert!(!page.contains("{system="));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }
}
