//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests carry an `"op"` discriminator; responses carry
//! `"ok": true` plus op-specific fields, or `"ok": false` with a
//! stable machine-readable `"code"` (see [`ErrorCode`]) and a human
//! `"error"` string. Exact values travel as raw decimal digit
//! strings — JSON numbers are arbitrary precision and the workspace
//! parser keeps the digits — so `u64` digests and `f64` score bit
//! patterns cross the wire losslessly.
//!
//! ```text
//! → {"op":"register","system":"inc","scenario":"income","rows":120,"seed":7}
//! ← {"ok":true,"op":"register","system":"inc","cache_entries":0}
//! → {"op":"diagnose","system":"inc"}
//! ← {"ok":true,"op":"diagnose","digest":...,"warm_hits":0,...}
//! ```
//!
//! Parsing reuses [`dp_trace::JsonValue`]; serialization reuses
//! [`dp_trace::json_escape`], so both line formats in the workspace
//! escape identically.

use dataprism::SpeculationMode;
use dp_trace::{json_escape, JsonValue};

/// Hard cap on one request line, including the newline. Large enough
/// for a warm-start trace of tens of thousands of oracle queries,
/// small enough that a hostile client cannot balloon server memory.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024 * 1024;

/// Stable machine-readable error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON, not an object, or missing/held
    /// ill-typed fields.
    MalformedRequest,
    /// The line exceeded [`MAX_REQUEST_BYTES`].
    OversizedRequest,
    /// Unrecognized `"op"`.
    UnknownOp,
    /// The named system is not registered.
    UnknownSystem,
    /// `register` named a scenario key the server does not bundle.
    UnknownScenario,
    /// Admission control: in-flight and queued diagnosis slots are
    /// all taken. Back off and retry.
    Busy,
    /// `warm` payload was not a readable trace stream (malformed
    /// JSONL or a foreign schema version).
    BadTrace,
    /// `restore` payload was not a readable cache snapshot.
    BadSnapshot,
    /// `ingest` payload was not readable CSV for the watched schema.
    BadBatch,
    /// `ingest`/`drift` against a system with no active watcher
    /// (send `watch` first).
    NotWatching,
    /// The diagnosis itself returned an error (assumption violated,
    /// budget exhausted, bad inputs). Deterministic: warm or cold,
    /// the same request fails the same way.
    DiagnosisFailed,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedRequest => "malformed_request",
            ErrorCode::OversizedRequest => "oversized_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownSystem => "unknown_system",
            ErrorCode::UnknownScenario => "unknown_scenario",
            ErrorCode::Busy => "busy",
            ErrorCode::BadTrace => "bad_trace",
            ErrorCode::BadSnapshot => "bad_snapshot",
            ErrorCode::BadBatch => "bad_batch",
            ErrorCode::NotWatching => "not_watching",
            ErrorCode::DiagnosisFailed => "diagnosis_failed",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// Which algorithm a `diagnose` request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// Greedy Algorithm 1 (the default; fewest interventions in the
    /// paper's evaluation).
    #[default]
    Greedy,
    /// Group testing (Algorithms 2–3, min-bisection).
    GroupTest,
    /// Group testing with greedy fallback on an A3 violation.
    Auto,
}

impl Algo {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Algo::Greedy => "greedy",
            Algo::GroupTest => "group_test",
            Algo::Auto => "auto",
        }
    }
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Bind `system` to a bundled scenario.
    Register {
        /// Client-chosen system name (the cache namespace key).
        system: String,
        /// Bundled scenario key (see [`crate::registry::SCENARIOS`]).
        scenario: String,
        /// Dataset size override.
        rows: Option<usize>,
        /// Scenario seed override.
        seed: Option<u64>,
    },
    /// Run a diagnosis against a registered system.
    Diagnose {
        /// Registered system name.
        system: String,
        /// Algorithm to run.
        algo: Algo,
        /// Worker-thread override (defaults to the scenario config).
        threads: Option<usize>,
        /// Speculation-executor mode override
        /// (`"static"`/`"adaptive"`; defaults to the server config).
        mode: Option<SpeculationMode>,
        /// In-flight speculative frame budget override for this
        /// diagnosis (defaults to the namespace's slice of the
        /// server-wide budget).
        budget: Option<usize>,
    },
    /// Warm a system's cache namespace from a JSONL trace stream
    /// (the `--trace` output of a prior run), carried inline.
    Warm {
        /// Registered system name.
        system: String,
        /// The JSONL trace text.
        trace: String,
    },
    /// Serialize a system's cache namespace to snapshot text.
    Snapshot {
        /// Registered system name.
        system: String,
    },
    /// Load a snapshot into a system's cache namespace.
    Restore {
        /// Registered system name.
        system: String,
        /// Snapshot text produced by a prior `snapshot` (or the
        /// shutdown flush).
        snapshot: String,
    },
    /// Start continuous monitoring of a system: discover the
    /// baseline profile set from its passing dataset and set up live
    /// sketches. Re-watching resets the stream (the namespace's
    /// cumulative drift totals survive).
    Watch {
        /// Registered system name.
        system: String,
        /// Drift threshold `τ_drift` override (default 0.1).
        tau: Option<f64>,
        /// Scoring-window length in batches (default 2).
        window: Option<usize>,
    },
    /// Append one batch of rows (inline CSV, header row required,
    /// columns as the watched schema) to a watched system's stream.
    Ingest {
        /// Registered system name.
        system: String,
        /// CSV text of the batch.
        rows_csv: String,
    },
    /// Score the watched window against the baseline profiles;
    /// optionally escalate drifted profiles into a targeted
    /// re-diagnosis on the spot.
    Drift {
        /// Registered system name.
        system: String,
        /// Run the targeted re-diagnosis when anything drifts.
        diagnose: bool,
        /// Algorithm for the escalation (greedy/group_test).
        algo: Algo,
    },
    /// Server and per-system counters.
    Stats {
        /// Restrict to one system (all systems when absent).
        system: Option<String>,
    },
    /// Prometheus text-format scrape of server, namespace, and
    /// monitoring counters.
    Metrics,
    /// Graceful shutdown: drain, flush snapshots, exit.
    Shutdown,
}

fn field_str(obj: &JsonValue, key: &str) -> Result<String, (ErrorCode, String)> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| {
            (
                ErrorCode::MalformedRequest,
                format!("missing or non-string field '{key}'"),
            )
        })
}

fn field_opt_u64(obj: &JsonValue, key: &str) -> Result<Option<u64>, (ErrorCode, String)> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            (
                ErrorCode::MalformedRequest,
                format!("field '{key}' is not an unsigned integer"),
            )
        }),
    }
}

fn field_opt_f64(obj: &JsonValue, key: &str) -> Result<Option<f64>, (ErrorCode, String)> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            (
                ErrorCode::MalformedRequest,
                format!("field '{key}' is not a number"),
            )
        }),
    }
}

/// Decode one request line. Every failure maps to a typed error the
/// caller turns into an `"ok": false` response — a malformed line
/// must never tear down the connection, let alone the server.
pub fn parse_request(line: &str) -> Result<Request, (ErrorCode, String)> {
    let value = JsonValue::parse(line)
        .map_err(|e| (ErrorCode::MalformedRequest, format!("invalid JSON: {e}")))?;
    if !matches!(value, JsonValue::Obj(_)) {
        return Err((
            ErrorCode::MalformedRequest,
            "request is not a JSON object".to_string(),
        ));
    }
    let op = field_str(&value, "op")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "register" => Ok(Request::Register {
            system: field_str(&value, "system")?,
            scenario: field_str(&value, "scenario")?,
            rows: field_opt_u64(&value, "rows")?.map(|v| v as usize),
            seed: field_opt_u64(&value, "seed")?,
        }),
        "diagnose" => {
            let algo = match value.get("algo").and_then(|v| v.as_str()) {
                None => Algo::Greedy,
                Some("greedy") => Algo::Greedy,
                Some("group_test") => Algo::GroupTest,
                Some("auto") => Algo::Auto,
                Some(other) => {
                    return Err((
                        ErrorCode::MalformedRequest,
                        format!("unknown algo '{other}' (greedy|group_test|auto)"),
                    ))
                }
            };
            let mode = match value.get("mode").and_then(|v| v.as_str()) {
                None => None,
                Some("static") => Some(SpeculationMode::Static),
                Some("adaptive") => Some(SpeculationMode::Adaptive),
                Some(other) => {
                    return Err((
                        ErrorCode::MalformedRequest,
                        format!("unknown mode '{other}' (static|adaptive)"),
                    ))
                }
            };
            Ok(Request::Diagnose {
                system: field_str(&value, "system")?,
                algo,
                threads: field_opt_u64(&value, "threads")?.map(|v| v as usize),
                mode,
                budget: field_opt_u64(&value, "budget")?.map(|v| v as usize),
            })
        }
        "warm" => Ok(Request::Warm {
            system: field_str(&value, "system")?,
            trace: field_str(&value, "trace")?,
        }),
        "snapshot" => Ok(Request::Snapshot {
            system: field_str(&value, "system")?,
        }),
        "restore" => Ok(Request::Restore {
            system: field_str(&value, "system")?,
            snapshot: field_str(&value, "snapshot")?,
        }),
        "watch" => Ok(Request::Watch {
            system: field_str(&value, "system")?,
            tau: field_opt_f64(&value, "tau")?,
            window: field_opt_u64(&value, "window")?.map(|v| v as usize),
        }),
        "ingest" => Ok(Request::Ingest {
            system: field_str(&value, "system")?,
            rows_csv: field_str(&value, "rows_csv")?,
        }),
        "drift" => {
            let algo = match value.get("algo").and_then(|v| v.as_str()) {
                None | Some("greedy") => Algo::Greedy,
                Some("group_test") => Algo::GroupTest,
                Some(other) => {
                    return Err((
                        ErrorCode::MalformedRequest,
                        format!("unknown algo '{other}' (greedy|group_test)"),
                    ))
                }
            };
            let diagnose = match value.get("diagnose") {
                None | Some(JsonValue::Null) => false,
                Some(v) => v.as_bool().ok_or_else(|| {
                    (
                        ErrorCode::MalformedRequest,
                        "field 'diagnose' is not a bool".to_string(),
                    )
                })?,
            };
            Ok(Request::Drift {
                system: field_str(&value, "system")?,
                diagnose,
                algo,
            })
        }
        "metrics" => Ok(Request::Metrics),
        "stats" => Ok(Request::Stats {
            system: match value.get("system") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_str().map(str::to_string).ok_or_else(|| {
                    (
                        ErrorCode::MalformedRequest,
                        "field 'system' is not a string".to_string(),
                    )
                })?),
            },
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err((ErrorCode::UnknownOp, format!("unknown op '{other}'"))),
    }
}

/// Builder for one `"ok": true` response line.
pub struct Reply {
    buf: String,
}

impl Reply {
    /// Start an ok-response for `op`.
    pub fn ok(op: &str) -> Reply {
        Reply {
            buf: format!("{{\"ok\":true,\"op\":{}", json_escape(op)),
        }
    }

    /// Append an unsigned integer field (raw decimal digits — exact
    /// for any u64).
    pub fn u64(mut self, key: &str, v: u64) -> Reply {
        self.buf.push_str(&format!(",{}:{v}", json_escape(key)));
        self
    }

    /// Append a usize field.
    pub fn usize(self, key: &str, v: usize) -> Reply {
        self.u64(key, v as u64)
    }

    /// Append a bool field.
    pub fn bool(mut self, key: &str, v: bool) -> Reply {
        self.buf.push_str(&format!(",{}:{v}", json_escape(key)));
        self
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, v: &str) -> Reply {
        self.buf
            .push_str(&format!(",{}:{}", json_escape(key), json_escape(v)));
        self
    }

    /// Append an `f64` twice: human-readable under `key` (shortest
    /// round-trip decimal) and exact under `key_bits` (the
    /// `f64::to_bits` pattern as decimal digits).
    pub fn f64_exact(mut self, key: &str, v: f64) -> Reply {
        self.buf.push_str(&format!(
            ",{}:{v:?},{}:{}",
            json_escape(key),
            json_escape(&format!("{key}_bits")),
            v.to_bits()
        ));
        self
    }

    /// Append an array of usize ids.
    pub fn ids(mut self, key: &str, ids: &[usize]) -> Reply {
        self.buf.push_str(&format!(",{}:[", json_escape(key)));
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&id.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Append an array of strings.
    pub fn strs(mut self, key: &str, items: &[String]) -> Reply {
        self.buf.push_str(&format!(",{}:[", json_escape(key)));
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&json_escape(item));
        }
        self.buf.push(']');
        self
    }

    /// Finish the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// One `"ok": false` response line.
pub fn error_response(code: ErrorCode, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"code\":{},\"error\":{}}}",
        json_escape(code.as_str()),
        json_escape(detail)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("{\"op\":\"register\",\"system\":\"inc\",\"scenario\":\"income\",\"rows\":120,\"seed\":7}")
                .unwrap(),
            Request::Register {
                system: "inc".into(),
                scenario: "income".into(),
                rows: Some(120),
                seed: Some(7),
            }
        );
        assert_eq!(
            parse_request(
                "{\"op\":\"diagnose\",\"system\":\"inc\",\"algo\":\"auto\",\"threads\":8}"
            )
            .unwrap(),
            Request::Diagnose {
                system: "inc".into(),
                algo: Algo::Auto,
                threads: Some(8),
                mode: None,
                budget: None,
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"diagnose\",\"system\":\"inc\"}").unwrap(),
            Request::Diagnose {
                system: "inc".into(),
                algo: Algo::Greedy,
                threads: None,
                mode: None,
                budget: None,
            }
        );
        assert_eq!(
            parse_request(
                "{\"op\":\"diagnose\",\"system\":\"inc\",\"mode\":\"adaptive\",\"budget\":16}"
            )
            .unwrap(),
            Request::Diagnose {
                system: "inc".into(),
                algo: Algo::Greedy,
                threads: None,
                mode: Some(SpeculationMode::Adaptive),
                budget: Some(16),
            }
        );
        assert!(matches!(
            parse_request("{\"op\":\"warm\",\"system\":\"inc\",\"trace\":\"\"}").unwrap(),
            Request::Warm { .. }
        ));
        assert!(matches!(
            parse_request("{\"op\":\"stats\"}").unwrap(),
            Request::Stats { system: None }
        ));
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn parses_the_monitoring_ops() {
        assert_eq!(
            parse_request("{\"op\":\"watch\",\"system\":\"inc\",\"tau\":0.25,\"window\":3}")
                .unwrap(),
            Request::Watch {
                system: "inc".into(),
                tau: Some(0.25),
                window: Some(3),
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"watch\",\"system\":\"inc\"}").unwrap(),
            Request::Watch {
                system: "inc".into(),
                tau: None,
                window: None,
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"ingest\",\"system\":\"inc\",\"rows_csv\":\"a,b\\n1,2\\n\"}")
                .unwrap(),
            Request::Ingest {
                system: "inc".into(),
                rows_csv: "a,b\n1,2\n".into(),
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"drift\",\"system\":\"inc\"}").unwrap(),
            Request::Drift {
                system: "inc".into(),
                diagnose: false,
                algo: Algo::Greedy,
            }
        );
        assert_eq!(
            parse_request(
                "{\"op\":\"drift\",\"system\":\"inc\",\"diagnose\":true,\"algo\":\"group_test\"}"
            )
            .unwrap(),
            Request::Drift {
                system: "inc".into(),
                diagnose: true,
                algo: Algo::GroupTest,
            }
        );
        assert_eq!(
            parse_request("{\"op\":\"metrics\"}").unwrap(),
            Request::Metrics
        );
        // Auto has a greedy fallback path a drift escalation does not
        // need; it is rejected rather than silently remapped.
        let (code, _) =
            parse_request("{\"op\":\"drift\",\"system\":\"s\",\"algo\":\"auto\"}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        let (code, _) =
            parse_request("{\"op\":\"watch\",\"system\":\"s\",\"tau\":\"hot\"}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        let (code, _) = parse_request("{\"op\":\"ingest\",\"system\":\"s\"}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
    }

    #[test]
    fn typed_errors_for_bad_lines() {
        let (code, _) = parse_request("not json").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        let (code, _) = parse_request("[1,2,3]").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        let (code, _) = parse_request("{\"op\":\"martian\"}").unwrap_err();
        assert_eq!(code, ErrorCode::UnknownOp);
        let (code, msg) = parse_request("{\"op\":\"diagnose\"}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        assert!(msg.contains("system"), "{msg}");
        let (code, _) =
            parse_request("{\"op\":\"diagnose\",\"system\":\"s\",\"algo\":\"x\"}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        let (code, _) =
            parse_request("{\"op\":\"diagnose\",\"system\":\"s\",\"threads\":-2}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        let (code, msg) =
            parse_request("{\"op\":\"diagnose\",\"system\":\"s\",\"mode\":\"turbo\"}").unwrap_err();
        assert_eq!(code, ErrorCode::MalformedRequest);
        assert!(msg.contains("static|adaptive"), "{msg}");
    }

    #[test]
    fn replies_are_parseable_and_exact() {
        let line = Reply::ok("diagnose")
            .str("system", "inc \"quoted\"")
            .u64("digest", u64::MAX)
            .bool("resolved", true)
            .f64_exact("final_score", 0.1 + 0.2)
            .ids("pvt_ids", &[3, 7])
            .finish();
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("digest").and_then(|d| d.as_u64()), Some(u64::MAX));
        assert_eq!(
            v.get("final_score_bits").and_then(|b| b.as_u64()),
            Some((0.1f64 + 0.2).to_bits()),
            "score bits cross the wire exactly"
        );
        assert_eq!(
            v.get("system").and_then(|s| s.as_str()),
            Some("inc \"quoted\"")
        );
    }

    #[test]
    fn error_responses_carry_stable_codes() {
        let line = error_response(ErrorCode::Busy, "all 4 slots taken");
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        assert_eq!(v.get("code").and_then(|c| c.as_str()), Some("busy"));
    }
}
