//! The `dp_serve` daemon binary.
//!
//! ```text
//! dp_serve [--addr HOST:PORT] [--max-inflight N] [--max-queue N]
//!          [--budget-bytes N] [--snapshot-dir DIR]
//!          [--speculation static|adaptive] [--frame-budget N]
//! dp_serve --smoke
//! ```
//!
//! `--smoke` runs an end-to-end self-check instead of serving:
//! start on an ephemeral port, register the income scenario, run two
//! diagnoses, and verify the second one was served warm from the
//! server-resident cache with a bit-identical explanation.

use dataprism::SpeculationMode;
use dp_serve::{field_u64, is_ok, Client, ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: dp_serve [--addr HOST:PORT] [--max-inflight N] [--max-queue N]\n                [--budget-bytes N] [--snapshot-dir DIR]\n                [--speculation static|adaptive] [--frame-budget N] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServeConfig, bool) {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7717".to_string(),
        ..ServeConfig::default()
    };
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--max-queue" => {
                config.max_queue = value("--max-queue").parse().unwrap_or_else(|_| usage())
            }
            "--budget-bytes" => {
                config.budget_bytes = value("--budget-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--snapshot-dir" => config.snapshot_dir = Some(value("--snapshot-dir").into()),
            "--speculation" => {
                config.speculation = match value("--speculation").as_str() {
                    "static" => SpeculationMode::Static,
                    "adaptive" => SpeculationMode::Adaptive,
                    _ => usage(),
                }
            }
            "--frame-budget" => {
                config.speculation_budget =
                    Some(value("--frame-budget").parse().unwrap_or_else(|_| usage()))
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    (config, smoke)
}

fn smoke_test() -> Result<(), String> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = Server::start(config).map_err(|e| format!("start: {e}"))?;
    let addr = server.local_addr();
    println!("dp_serve smoke: listening on {addr}");

    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let pong = client.ping().map_err(|e| format!("ping: {e}"))?;
    if !is_ok(&pong) {
        return Err("ping not ok".to_string());
    }

    let reg = client
        .register("income", "income", None, None)
        .map_err(|e| format!("register: {e}"))?;
    if !is_ok(&reg) {
        return Err(format!("register failed: {reg:?}"));
    }

    let cold = client
        .diagnose("income", "greedy", None)
        .map_err(|e| format!("diagnose (cold): {e}"))?;
    if !is_ok(&cold) {
        return Err(format!("cold diagnosis failed: {cold:?}"));
    }
    let warm = client
        .diagnose("income", "greedy", None)
        .map_err(|e| format!("diagnose (warm): {e}"))?;
    if !is_ok(&warm) {
        return Err(format!("warm diagnosis failed: {warm:?}"));
    }

    let cold_digest = field_u64(&cold, "digest").ok_or("cold digest missing")?;
    let warm_digest = field_u64(&warm, "digest").ok_or("warm digest missing")?;
    if cold_digest != warm_digest {
        return Err(format!(
            "explanations diverged: cold digest {cold_digest}, warm digest {warm_digest}"
        ));
    }
    let warm_hits = field_u64(&warm, "warm_hits").ok_or("warm_hits missing")?;
    if warm_hits == 0 {
        return Err("second diagnosis reported no warm cache hits".to_string());
    }
    let cold_misses = field_u64(&cold, "cache_misses").ok_or("cache_misses missing")?;
    let warm_misses = field_u64(&warm, "cache_misses").ok_or("cache_misses missing")?;
    if warm_misses >= cold_misses {
        return Err(format!(
            "warm run did not get cheaper: {warm_misses} misses vs {cold_misses} cold"
        ));
    }
    println!(
        "dp_serve smoke: digest {cold_digest:#018x} identical; warm run {warm_hits} warm hits, {warm_misses} misses (cold: {cold_misses})"
    );

    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    server.join();
    println!("dp_serve smoke: OK");
    Ok(())
}

fn main() -> ExitCode {
    let (config, smoke) = parse_args();
    if smoke {
        return match smoke_test() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("dp_serve smoke: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dp_serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("dp_serve: listening on {}", server.local_addr());
    // Serve until a client sends the `shutdown` op.
    server.join();
    println!("dp_serve: shut down");
    ExitCode::SUCCESS
}
