//! The daemon: a TCP accept loop, one handler thread per
//! connection, and the request dispatch that ties the registry,
//! admission control, and the cached diagnosis entry points together.
//!
//! Concurrency model:
//!
//! * The registry map lock and each namespace lock are held only for
//!   pointer clones and cache copy-in/copy-out — never across a
//!   system evaluation, so racing clients on one namespace serialize
//!   on microseconds of bookkeeping, not on diagnoses.
//! * Admission control bounds the number of in-flight diagnoses
//!   (`max_inflight`) with a bounded wait queue (`max_queue`);
//!   clients beyond both get a typed `busy` error instead of an
//!   unbounded pile-up of worker threads.
//! * Shutdown sets a flag, wakes the accept loop with a self-connect,
//!   lets every connection thread notice within one read-timeout
//!   tick, and flushes each cache namespace to a reloadable snapshot
//!   file before the server exits.

use crate::prom::{self, NamespaceScrape, ServerScrape};
use crate::protocol::{
    error_response, parse_request, Algo, ErrorCode, Reply, Request, MAX_REQUEST_BYTES,
};
use crate::registry::{lock_or_recover, Registry, SystemEntry};
use dataprism::{
    explain_greedy_parallel_cached_with_pvts, explain_group_test_parallel_cached_with_pvts,
    DataPrism, PartitionStrategy, ScoreCache, SpeculationMode,
};
use dp_monitor::{MonitorConfig, Watcher};
use dp_trace::Tracer;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-namespace cache budget: 4 MiB (~43k entries).
pub const DEFAULT_BUDGET_BYTES: usize = 4 << 20;

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Max diagnoses evaluating concurrently.
    pub max_inflight: usize,
    /// Max diagnoses waiting for a slot before `busy` is returned.
    pub max_queue: usize,
    /// Byte budget per cache namespace.
    pub budget_bytes: usize,
    /// Where shutdown flushes (and startup reloads) cache snapshots;
    /// `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Hard cap on one request line.
    pub max_line_bytes: usize,
    /// Speculation-executor mode applied to every diagnosis (a
    /// per-request `mode` field overrides it).
    pub speculation: SpeculationMode,
    /// Server-wide bound on in-flight speculative frames, divided
    /// evenly across the `max_inflight` admission slots so one slow
    /// system's detached frontier cannot starve the other namespaces
    /// of executor capacity. `None` leaves each diagnosis on the
    /// mode's own default (unbounded Static, derived Adaptive).
    pub speculation_budget: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 2,
            max_queue: 8,
            budget_bytes: DEFAULT_BUDGET_BYTES,
            snapshot_dir: None,
            max_line_bytes: MAX_REQUEST_BYTES,
            speculation: SpeculationMode::Static,
            speculation_budget: None,
        }
    }
}

/// What `Admission::admit` decided.
enum Admit {
    /// Go ahead; holds the slot until dropped.
    Permit(Permit),
    /// In-flight and queue slots all taken.
    Busy,
    /// The server started draining while we waited.
    ShuttingDown,
}

struct AdmState {
    inflight: usize,
    waiting: usize,
}

/// Bounded in-flight diagnosis slots with a bounded FIFO-ish wait
/// queue (wakeup order is the condvar's, not strictly FIFO — the
/// bound is what matters).
struct Admission {
    state: Mutex<AdmState>,
    cv: Condvar,
    max_inflight: usize,
    max_queue: usize,
}

impl Admission {
    fn new(max_inflight: usize, max_queue: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmState {
                inflight: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
        }
    }

    fn admit(self: &Arc<Admission>, shutting_down: &AtomicBool) -> Admit {
        let mut st = lock_or_recover(&self.state);
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Admit::Permit(Permit {
                admission: Arc::clone(self),
            });
        }
        if st.waiting >= self.max_queue {
            return Admit::Busy;
        }
        st.waiting += 1;
        loop {
            // Timed wait so a queued client notices shutdown even if
            // no permit is ever released.
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
            if shutting_down.load(Ordering::SeqCst) {
                st.waiting -= 1;
                return Admit::ShuttingDown;
            }
            if st.inflight < self.max_inflight {
                st.waiting -= 1;
                st.inflight += 1;
                return Admit::Permit(Permit {
                    admission: Arc::clone(self),
                });
            }
        }
    }
}

/// An in-flight diagnosis slot; releases on drop (including unwind),
/// so a panicking handler can never leak capacity.
struct Permit {
    admission: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = lock_or_recover(&self.admission.state);
        st.inflight -= 1;
        drop(st);
        self.admission.cv.notify_one();
    }
}

#[derive(Default)]
struct ServerStats {
    requests: u64,
    protocol_errors: u64,
    busy_rejections: u64,
    diagnoses_ok: u64,
    diagnoses_err: u64,
}

struct Shared {
    config: ServeConfig,
    registry: Registry,
    admission: Arc<Admission>,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
    stats: Mutex<ServerStats>,
    /// Snapshots loaded from `snapshot_dir` at startup, keyed by
    /// system name; folded into a namespace when that name is
    /// registered.
    pending_snapshots: Mutex<HashMap<String, ScoreCache>>,
}

/// A running daemon. Dropping the handle does **not** stop it; send
/// a `shutdown` request (or call [`Server::shutdown`]) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live (so
    /// [`Server::local_addr`] is immediately connectable).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let pending = load_pending_snapshots(config.snapshot_dir.as_deref());
        let shared = Arc::new(Shared {
            registry: Registry::new(config.budget_bytes),
            admission: Arc::new(Admission::new(config.max_inflight, config.max_queue)),
            shutting_down: AtomicBool::new(false),
            local_addr,
            stats: Mutex::new(ServerStats::default()),
            pending_snapshots: Mutex::new(pending),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("dp-serve-accept".to_string())
            .spawn(move || accept_loop(accept_shared, listener))?;
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Trigger a graceful shutdown from the owning process (the wire
    /// `shutdown` op does the same from a client).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Wait until the accept loop and every connection thread have
    /// exited. Call after [`Server::shutdown`] (or after a client
    /// sent the `shutdown` op).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn load_pending_snapshots(dir: Option<&std::path::Path>) -> HashMap<String, ScoreCache> {
    let mut out = HashMap::new();
    let Some(dir) = dir else {
        return out;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("dpcache") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        // A corrupt snapshot file means a cold start for that
        // system, not a failed server start.
        if let Ok(cache) = ScoreCache::from_snapshot(&text) {
            out.insert(stem.to_string(), cache);
        }
    }
    out
}

/// Only filesystem-safe characters make it into snapshot filenames.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn flush_snapshots(shared: &Shared) -> usize {
    let Some(dir) = shared.config.snapshot_dir.as_deref() else {
        return 0;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return 0;
    }
    let mut flushed = 0;
    for (name, text) in shared.registry.snapshot_all() {
        let path = dir.join(format!("{}.dpcache", sanitize_name(&name)));
        if std::fs::write(&path, text).is_ok() {
            flushed += 1;
        }
    }
    flushed
}

fn initiate_shutdown(shared: &Shared) -> usize {
    let already = shared.shutting_down.swap(true, Ordering::SeqCst);
    // Wake queued diagnosis waiters so they return `shutting_down`.
    shared.admission.cv.notify_all();
    let flushed = if already { 0 } else { flush_snapshots(shared) };
    // Wake the blocking accept() with a throwaway connection.
    let _ = TcpStream::connect(shared.local_addr);
    flushed
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("dp-serve-conn".to_string())
            .spawn(move || handle_conn(conn_shared, stream))
        {
            conns.push(handle);
        }
        // Opportunistically reap finished connections so a
        // long-lived server does not accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Outcome of reading one line from a connection.
enum LineRead {
    Line(Vec<u8>),
    /// Clean or mid-request disconnect.
    Eof,
    /// The line outgrew the cap before a newline arrived.
    Oversized,
    /// The server is draining and no request is pending.
    Shutdown,
}

/// Incremental size-capped line reader over a stream with a read
/// timeout: timeouts are polls (to notice shutdown), not errors.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn next_line(&mut self, shared: &Shared, cap: usize) -> LineRead {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineRead::Line(line);
            }
            if self.pending.len() > cap {
                return LineRead::Oversized;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineRead::Eof,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if shared.shutting_down.load(Ordering::SeqCst) && self.pending.is_empty() {
                        return LineRead::Shutdown;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return LineRead::Eof,
            }
        }
    }
}

fn handle_conn(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        pending: Vec::new(),
    };
    loop {
        match reader.next_line(&shared, shared.config.max_line_bytes) {
            LineRead::Eof | LineRead::Shutdown => return,
            LineRead::Oversized => {
                // The rest of the oversized line is unrecoverable
                // without buffering it, so answer and hang up.
                bump(&shared, |s| s.protocol_errors += 1);
                let resp = error_response(
                    ErrorCode::OversizedRequest,
                    &format!("request exceeds {} bytes", shared.config.max_line_bytes),
                );
                let _ = write_line(&mut writer, &resp);
                return;
            }
            LineRead::Line(raw) => {
                bump(&shared, |s| s.requests += 1);
                let line = String::from_utf8_lossy(&raw);
                let (response, shutdown_after) = handle_request(&shared, &line);
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
                if shutdown_after {
                    return;
                }
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn bump(shared: &Shared, f: impl FnOnce(&mut ServerStats)) {
    f(&mut lock_or_recover(&shared.stats));
}

/// Dispatch one request line; returns the response line and whether
/// the connection should close (after a `shutdown`).
fn handle_request(shared: &Shared, line: &str) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((code, detail)) => {
            bump(shared, |s| s.protocol_errors += 1);
            return (error_response(code, &detail), false);
        }
    };
    let draining = shared.shutting_down.load(Ordering::SeqCst);
    match request {
        Request::Ping => (
            Reply::ok("ping")
                .str("version", env!("CARGO_PKG_VERSION"))
                .bool("shutting_down", draining)
                .finish(),
            false,
        ),
        _ if draining => (
            error_response(ErrorCode::ShuttingDown, "server is draining"),
            false,
        ),
        Request::Register {
            system,
            scenario,
            rows,
            seed,
        } => (
            handle_register(shared, &system, &scenario, rows, seed),
            false,
        ),
        Request::Diagnose {
            system,
            algo,
            threads,
            mode,
            budget,
        } => (
            handle_diagnose(shared, &system, algo, threads, mode, budget),
            false,
        ),
        Request::Warm { system, trace } => (handle_warm(shared, &system, &trace), false),
        Request::Snapshot { system } => (handle_snapshot(shared, &system), false),
        Request::Restore { system, snapshot } => {
            (handle_restore(shared, &system, &snapshot), false)
        }
        Request::Watch {
            system,
            tau,
            window,
        } => (handle_watch(shared, &system, tau, window), false),
        Request::Ingest { system, rows_csv } => (handle_ingest(shared, &system, &rows_csv), false),
        Request::Drift {
            system,
            diagnose,
            algo,
        } => (handle_drift(shared, &system, diagnose, algo), false),
        Request::Stats { system } => (handle_stats(shared, system.as_deref()), false),
        Request::Metrics => (handle_metrics(shared), false),
        Request::Shutdown => {
            let flushed = initiate_shutdown(shared);
            (
                Reply::ok("shutdown")
                    .usize("snapshots_flushed", flushed)
                    .finish(),
                true,
            )
        }
    }
}

fn with_entry<R>(
    shared: &Shared,
    system: &str,
    f: impl FnOnce(&mut SystemEntry) -> R,
) -> Result<R, String> {
    let entry = shared.registry.get(system).ok_or_else(|| {
        error_response(
            ErrorCode::UnknownSystem,
            &format!("system '{system}' is not registered"),
        )
    })?;
    let mut entry = lock_or_recover(&entry);
    Ok(f(&mut entry))
}

fn handle_register(
    shared: &Shared,
    system: &str,
    scenario: &str,
    rows: Option<usize>,
    seed: Option<u64>,
) -> String {
    let Some(_) = shared.registry.register(system, scenario, rows, seed) else {
        return error_response(
            ErrorCode::UnknownScenario,
            &format!("unknown scenario '{scenario}'"),
        );
    };
    // Fold in a snapshot persisted by a previous server process, if
    // one was loaded for this name at startup.
    let pending = lock_or_recover(&shared.pending_snapshots).remove(system);
    let (resident, reloaded) = with_entry(shared, system, |entry| {
        let reloaded = pending.as_ref().map(|c| entry.cache.absorb(c)).unwrap_or(0);
        (entry.cache.len(), reloaded)
    })
    .expect("entry was just registered");
    Reply::ok("register")
        .str("system", system)
        .str("scenario", scenario)
        .usize("cache_entries", resident)
        .usize("snapshot_entries_reloaded", reloaded)
        .finish()
}

/// The per-namespace slice of the server-wide speculative frame
/// budget: every admitted diagnosis gets an equal share of the
/// `max_inflight` slots' worth, so however slow one system's oracle
/// is, its queued frontier is bounded independently of its
/// neighbors'.
fn namespace_budget(config: &ServeConfig) -> Option<usize> {
    config
        .speculation_budget
        .map(|total| (total / config.max_inflight.max(1)).max(1))
}

fn handle_diagnose(
    shared: &Shared,
    system: &str,
    algo: Algo,
    threads: Option<usize>,
    mode: Option<SpeculationMode>,
    budget: Option<usize>,
) -> String {
    let permit = match shared.admission.admit(&shared.shutting_down) {
        Admit::Permit(p) => p,
        Admit::Busy => {
            bump(shared, |s| s.busy_rejections += 1);
            return error_response(
                ErrorCode::Busy,
                &format!(
                    "{} diagnoses in flight and {} queued; retry later",
                    shared.config.max_inflight, shared.config.max_queue
                ),
            );
        }
        Admit::ShuttingDown => {
            return error_response(ErrorCode::ShuttingDown, "server is draining")
        }
    };
    // Copy-in: clone the immutable spec pointer and snapshot the
    // namespace, then release the lock for the whole evaluation.
    let copied = with_entry(shared, system, |entry| {
        (Arc::clone(&entry.spec), entry.cache.to_score_cache())
    });
    let (spec, mut cache) = match copied {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let mut config = spec.config.clone();
    if let Some(t) = threads {
        config.num_threads = t.clamp(1, 64);
    }
    let speculation = mode.unwrap_or(shared.config.speculation);
    config.speculation = speculation;
    config.speculation_budget = budget.or_else(|| namespace_budget(&shared.config));
    let prism = DataPrism::new(config);
    let result = match algo {
        Algo::Greedy => {
            prism.diagnose_parallel_cached(&*spec.factory, &spec.d_fail, &spec.d_pass, &mut cache)
        }
        Algo::GroupTest => prism.diagnose_group_test_parallel_cached(
            &*spec.factory,
            &spec.d_fail,
            &spec.d_pass,
            &mut cache,
        ),
        Algo::Auto => prism.diagnose_auto_parallel_cached(
            &*spec.factory,
            &spec.d_fail,
            &spec.d_pass,
            &mut cache,
        ),
    };
    drop(permit);
    // Copy-out: even a failed diagnosis paid for its evaluations;
    // absorb them so the next attempt is warm.
    let absorbed = with_entry(shared, system, |entry| {
        let new_entries = entry.cache.absorb(&cache);
        if let Ok(exp) = &result {
            entry.diagnoses += 1;
            entry.lint.pruned += exp.lint.pruned.len() as u64;
            entry.lint.subsumed += exp.lint.subsumed.len() as u64;
            entry.lint.unreachable += exp.lint.unreachable_ids().len() as u64;
            entry.lint.commuting_pairs += exp.lint.commuting.len() as u64;
        }
        (new_entries, entry.cache.len(), entry.cache.evictions)
    });
    let (new_entries, resident, evictions) = match absorbed {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match result {
        Ok(exp) => {
            bump(shared, |s| s.diagnoses_ok += 1);
            Reply::ok("diagnose")
                .str("system", system)
                .str("algo", algo.as_str())
                .u64("digest", exp.digest())
                .ids("pvt_ids", &exp.pvt_ids())
                .usize("interventions", exp.interventions)
                .bool("resolved", exp.resolved)
                .f64_exact("initial_score", exp.initial_score)
                .f64_exact("final_score", exp.final_score)
                .u64("charged_queries", exp.metrics.charged_queries)
                .u64("cache_hits", exp.metrics.cache_hits)
                .u64("cache_misses", exp.metrics.cache_misses)
                .u64("warm_hits", exp.metrics.warm_hits)
                .str("speculation", speculation.as_str())
                .u64("speculative_shed", exp.metrics.speculative_shed)
                .u64("peak_inflight", exp.metrics.peak_inflight)
                .bool("lint_analyzed", exp.lint.analyzed)
                .usize("lint_errors", exp.lint.count(dataprism::Severity::Error))
                .usize("lint_warnings", exp.lint.count(dataprism::Severity::Warn))
                .usize("lint_pruned", exp.lint.pruned.len())
                .usize("lint_subsumed", exp.lint.subsumed.len())
                .usize("lint_unreachable", exp.lint.unreachable_ids().len())
                .usize("lint_commuting_pairs", exp.lint.commuting.len())
                .usize("new_cache_entries", new_entries)
                .usize("cache_entries", resident)
                .u64("evictions", evictions)
                .finish()
        }
        Err(e) => {
            bump(shared, |s| s.diagnoses_err += 1);
            error_response(ErrorCode::DiagnosisFailed, &e.to_string())
        }
    }
}

fn handle_warm(shared: &Shared, system: &str, trace: &str) -> String {
    let mut staged = ScoreCache::new();
    let loaded = match staged.warm_from_jsonl(trace) {
        Ok(n) => n,
        Err(e) => return error_response(ErrorCode::BadTrace, &e.to_string()),
    };
    match with_entry(shared, system, |entry| {
        (entry.cache.absorb(&staged), entry.cache.len())
    }) {
        Ok((new_entries, resident)) => Reply::ok("warm")
            .str("system", system)
            .usize("spans_loaded", loaded)
            .usize("new_cache_entries", new_entries)
            .usize("cache_entries", resident)
            .finish(),
        Err(resp) => resp,
    }
}

fn handle_snapshot(shared: &Shared, system: &str) -> String {
    match with_entry(shared, system, |entry| {
        (
            entry.cache.to_score_cache().to_snapshot(),
            entry.cache.len(),
        )
    }) {
        Ok((text, resident)) => Reply::ok("snapshot")
            .str("system", system)
            .usize("cache_entries", resident)
            .str("snapshot", &text)
            .finish(),
        Err(resp) => resp,
    }
}

fn handle_restore(shared: &Shared, system: &str, snapshot: &str) -> String {
    let staged = match ScoreCache::from_snapshot(snapshot) {
        Ok(c) => c,
        Err(e) => return error_response(ErrorCode::BadSnapshot, &e.to_string()),
    };
    match with_entry(shared, system, |entry| {
        (entry.cache.absorb(&staged), entry.cache.len())
    }) {
        Ok((new_entries, resident)) => Reply::ok("restore")
            .str("system", system)
            .usize("new_cache_entries", new_entries)
            .usize("cache_entries", resident)
            .finish(),
        Err(resp) => resp,
    }
}

fn handle_watch(shared: &Shared, system: &str, tau: Option<f64>, window: Option<usize>) -> String {
    let tau = tau.unwrap_or(MonitorConfig::default().tau_drift);
    if !tau.is_finite() || tau < 0.0 {
        return error_response(
            ErrorCode::MalformedRequest,
            &format!("tau must be a finite non-negative number, got {tau}"),
        );
    }
    let window = window
        .unwrap_or(MonitorConfig::default().window_batches)
        .max(1);
    // Copy the spec pointer out, then discover the baseline outside
    // the namespace lock (profile discovery scans the whole passing
    // dataset).
    let spec = match with_entry(shared, system, |entry| Arc::clone(&entry.spec)) {
        Ok(spec) => spec,
        Err(resp) => return resp,
    };
    let watcher = Watcher::new(
        spec.d_pass.clone(),
        spec.config.clone(),
        MonitorConfig {
            tau_drift: tau,
            window_batches: window,
        },
    );
    let profiles = watcher.profiles().len();
    match with_entry(shared, system, |entry| entry.watcher = Some(watcher)) {
        Ok(()) => Reply::ok("watch")
            .str("system", system)
            .usize("profiles", profiles)
            .f64_exact("tau", tau)
            .usize("window", window)
            .finish(),
        Err(resp) => resp,
    }
}

fn handle_ingest(shared: &Shared, system: &str, rows_csv: &str) -> String {
    // Parse against the watched schema outside the namespace lock —
    // the CSV can be most of a request line.
    let spec = match with_entry(shared, system, |entry| {
        entry.watcher.is_some().then(|| Arc::clone(&entry.spec))
    }) {
        Ok(Some(spec)) => spec,
        Ok(None) => return not_watching(system),
        Err(resp) => return resp,
    };
    let fields: Vec<(&str, dp_frame::DType)> = spec
        .d_pass
        .columns()
        .iter()
        .map(|c| (c.name(), c.dtype()))
        .collect();
    let batch = match dp_frame::csv::read_csv_with_schema(rows_csv.as_bytes(), &fields) {
        Ok(b) => b,
        Err(e) => return error_response(ErrorCode::BadBatch, &e.to_string()),
    };
    let batch_rows = batch.n_rows() as u64;
    let ingested = with_entry(shared, system, |entry| {
        let Some(watcher) = entry.watcher.as_mut() else {
            return Err(not_watching(system));
        };
        watcher
            .ingest(batch, &Tracer::off())
            .map_err(|e| error_response(ErrorCode::BadBatch, &e.to_string()))?;
        entry.drift.batches_ingested += 1;
        entry.drift.rows_ingested += batch_rows;
        Ok((
            watcher.batches(),
            watcher.rows(),
            watcher.window_frame().map(|w| w.n_rows()).unwrap_or(0),
        ))
    });
    match ingested {
        Ok(Ok((batches, rows, window_rows))) => Reply::ok("ingest")
            .str("system", system)
            .u64("batches", batches)
            .u64("rows_total", rows)
            .usize("window_rows", window_rows)
            .finish(),
        Ok(Err(resp)) | Err(resp) => resp,
    }
}

fn not_watching(system: &str) -> String {
    error_response(
        ErrorCode::NotWatching,
        &format!("system '{system}' has no active watcher; send watch first"),
    )
}

fn handle_drift(shared: &Shared, system: &str, diagnose: bool, algo: Algo) -> String {
    // Phase 1, under the namespace lock: score the window, fold the
    // cumulative totals, and — when escalating — copy out everything
    // the re-diagnosis needs so the evaluation itself runs unlocked.
    let checked = with_entry(shared, system, |entry| {
        let Some(watcher) = entry.watcher.as_mut() else {
            return Err(not_watching(system));
        };
        let report = watcher.check_drift(&Tracer::off());
        entry.drift.checks += 1;
        if report.any_drifted() {
            entry.drift.triggers += 1;
        }
        let escalation = if diagnose && report.any_drifted() {
            let drifted = report.drifted();
            let pvts = watcher.candidates(&drifted);
            match (watcher.window_frame(), pvts.is_empty()) {
                (Some(window), false) => Some((
                    Arc::clone(&entry.spec),
                    entry.cache.to_score_cache(),
                    window,
                    pvts,
                )),
                _ => None,
            }
        } else {
            None
        };
        Ok((report, escalation))
    });
    let (report, escalation) = match checked {
        Ok(Ok(v)) => v,
        Ok(Err(resp)) | Err(resp) => return resp,
    };
    let drifted = report.drifted();
    let max_score = report.scores.iter().map(|s| s.score).fold(0.0f64, f64::max);
    let reply = Reply::ok("drift")
        .str("system", system)
        .usize("profiles", report.scores.len())
        .ids("drifted", &drifted)
        .f64_exact("max_score", max_score)
        .f64_exact("threshold", report.threshold)
        .usize("screened", report.screened())
        .u64("window_rows", report.window_rows);
    let Some((spec, mut cache, window, pvts)) = escalation else {
        return reply.bool("diagnosed", false).finish();
    };
    // Phase 2: the targeted re-diagnosis is a full system evaluation,
    // so it pays the same admission toll as `diagnose`.
    let permit = match shared.admission.admit(&shared.shutting_down) {
        Admit::Permit(p) => p,
        Admit::Busy => {
            bump(shared, |s| s.busy_rejections += 1);
            return error_response(
                ErrorCode::Busy,
                &format!(
                    "{} diagnoses in flight and {} queued; retry later",
                    shared.config.max_inflight, shared.config.max_queue
                ),
            );
        }
        Admit::ShuttingDown => {
            return error_response(ErrorCode::ShuttingDown, "server is draining")
        }
    };
    let candidates = pvts.len();
    let mut config = spec.config.clone();
    config.speculation = shared.config.speculation;
    config.speculation_budget = namespace_budget(&shared.config);
    let result = match algo {
        Algo::GroupTest => explain_group_test_parallel_cached_with_pvts(
            &*spec.factory,
            &window,
            &spec.d_pass,
            pvts,
            &config,
            PartitionStrategy::MinBisection,
            &mut cache,
        ),
        // `Algo::Auto` is rejected at parse time for drift requests.
        _ => explain_greedy_parallel_cached_with_pvts(
            &*spec.factory,
            &window,
            &spec.d_pass,
            pvts,
            &config,
            &mut cache,
        ),
    };
    drop(permit);
    let absorbed = with_entry(shared, system, |entry| {
        let new_entries = entry.cache.absorb(&cache);
        if result.is_ok() {
            entry.diagnoses += 1;
        }
        (new_entries, entry.cache.len())
    });
    let (new_entries, resident) = match absorbed {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match result {
        Ok(exp) => {
            bump(shared, |s| s.diagnoses_ok += 1);
            reply
                .bool("diagnosed", true)
                .str("algo", algo.as_str())
                .usize("candidates", candidates)
                .u64("digest", exp.digest())
                .ids("pvt_ids", &exp.pvt_ids())
                .usize("interventions", exp.interventions)
                .bool("resolved", exp.resolved)
                .f64_exact("initial_score", exp.initial_score)
                .f64_exact("final_score", exp.final_score)
                .u64("charged_queries", exp.metrics.charged_queries)
                .u64("warm_hits", exp.metrics.warm_hits)
                .usize("new_cache_entries", new_entries)
                .usize("cache_entries", resident)
                .finish()
        }
        Err(e) => {
            bump(shared, |s| s.diagnoses_err += 1);
            error_response(ErrorCode::DiagnosisFailed, &e.to_string())
        }
    }
}

fn handle_metrics(shared: &Shared) -> String {
    let names = shared.registry.names();
    let server = {
        let stats = lock_or_recover(&shared.stats);
        ServerScrape {
            requests: stats.requests,
            protocol_errors: stats.protocol_errors,
            busy_rejections: stats.busy_rejections,
            diagnoses_ok: stats.diagnoses_ok,
            diagnoses_err: stats.diagnoses_err,
            systems: names.len(),
        }
    };
    let mut namespaces = Vec::with_capacity(names.len());
    for name in names {
        let scrape = with_entry(shared, &name, |entry| NamespaceScrape {
            name: name.clone(),
            cache_entries: entry.cache.len(),
            evictions: entry.cache.evictions,
            diagnoses: entry.diagnoses,
            lint: entry.lint,
            drift: entry.drift,
            watching: entry.watcher.is_some(),
            ingest_latency: entry.watcher.as_ref().map(|w| w.metrics().ingest_latency),
        });
        // A name can vanish between `names()` and the lookup
        // (deregistration does not exist today, but the scrape must
        // not 500 if it ever does).
        if let Ok(scrape) = scrape {
            namespaces.push(scrape);
        }
    }
    Reply::ok("metrics")
        .str("body", &prom::render(&server, &namespaces))
        .finish()
}

fn handle_stats(shared: &Shared, system: Option<&str>) -> String {
    match system {
        Some(name) => match with_entry(shared, name, |entry| {
            (
                entry.spec.scenario.clone(),
                entry.cache.len(),
                entry.cache.capacity(),
                entry.cache.footprint_bytes(),
                entry.cache.evictions,
                entry.diagnoses,
                entry.lint,
                entry.watcher.is_some(),
                entry.drift,
            )
        }) {
            Ok((
                scenario,
                resident,
                capacity,
                footprint,
                evictions,
                diagnoses,
                lint,
                watching,
                drift,
            )) => Reply::ok("stats")
                .str("system", name)
                .str("scenario", &scenario)
                .usize("cache_entries", resident)
                .usize("cache_capacity", capacity)
                .usize("footprint_bytes", footprint)
                .u64("evictions", evictions)
                .u64("diagnoses", diagnoses)
                .u64("lint_pruned_total", lint.pruned)
                .u64("lint_subsumed_total", lint.subsumed)
                .u64("lint_unreachable_total", lint.unreachable)
                .u64("lint_commuting_pairs_total", lint.commuting_pairs)
                .bool("watching", watching)
                .u64("batches_ingested_total", drift.batches_ingested)
                .u64("rows_ingested_total", drift.rows_ingested)
                .u64("drift_checks_total", drift.checks)
                .u64("drift_triggers_total", drift.triggers)
                .finish(),
            Err(resp) => resp,
        },
        None => {
            let names = shared.registry.names();
            let stats = lock_or_recover(&shared.stats);
            Reply::ok("stats")
                .strs("systems", &names)
                .usize("max_inflight", shared.config.max_inflight)
                .usize("max_queue", shared.config.max_queue)
                .usize("budget_bytes", shared.config.budget_bytes)
                .str("speculation", shared.config.speculation.as_str())
                .usize(
                    "namespace_frame_budget",
                    namespace_budget(&shared.config).unwrap_or(0),
                )
                .u64("requests", stats.requests)
                .u64("protocol_errors", stats.protocol_errors)
                .u64("busy_rejections", stats.busy_rejections)
                .u64("diagnoses_ok", stats.diagnoses_ok)
                .u64("diagnoses_err", stats.diagnoses_err)
                .finish()
        }
    }
}
