//! A budgeted LRU over the fingerprint → score cache.
//!
//! Each registered system owns one [`LruScoreCache`] — its
//! server-resident cache namespace. Entries are the same `(u64
//! fingerprint, f64 score)` pairs a [`dataprism::ScoreCache`] holds,
//! plus a recency tick; when the estimated footprint exceeds the
//! configured byte budget, the least-recently-used entries are
//! evicted (and counted, for the `stats` op).
//!
//! Recency is touched on lookup and on (re-)insertion. A diagnosis
//! run interacts with the namespace copy-in/copy-out: the server
//! snapshots the namespace into a plain `ScoreCache`
//! ([`LruScoreCache::to_score_cache`]), runs the diagnosis unlocked,
//! and absorbs the exported result back ([`LruScoreCache::absorb`])
//! — so a panicking run can never poison or half-update the
//! namespace.

use dataprism::ScoreCache;
use std::collections::{BTreeMap, HashMap};

/// Estimated bytes one cache entry costs across the two indexes
/// (key + value + tick in the map, tick + key in the recency index,
/// plus container overhead). Deliberately generous — the budget is a
/// memory-pressure bound, not an accounting exercise.
pub const ENTRY_COST_BYTES: usize = 96;

/// A fingerprint → score map with LRU eviction under a byte budget.
#[derive(Debug)]
pub struct LruScoreCache {
    /// fingerprint → (score, recency tick).
    map: HashMap<u64, (f64, u64)>,
    /// recency tick → fingerprint; the first entry is the LRU victim.
    recency: BTreeMap<u64, u64>,
    /// Next recency tick (monotonic; u64 never wraps in practice).
    tick: u64,
    /// Max entries derived from the byte budget (at least 1).
    max_entries: usize,
    /// Entries evicted over the namespace's lifetime.
    pub evictions: u64,
}

impl LruScoreCache {
    /// A cache namespace bounded by `budget_bytes` (rounded down to
    /// whole entries, minimum one).
    pub fn with_budget(budget_bytes: usize) -> LruScoreCache {
        LruScoreCache {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            max_entries: (budget_bytes / ENTRY_COST_BYTES).max(1),
            evictions: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the namespace holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity implied by the byte budget.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Estimated resident footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.map.len() * ENTRY_COST_BYTES
    }

    fn touch(&mut self, fp: u64) {
        if let Some((_, old_tick)) = self.map.get(&fp).copied() {
            self.recency.remove(&old_tick);
            let t = self.tick;
            self.tick += 1;
            self.recency.insert(t, fp);
            self.map.get_mut(&fp).expect("entry exists").1 = t;
        }
    }

    /// Insert (or refresh) one entry, evicting LRU entries if the
    /// budget is exceeded.
    pub fn insert(&mut self, fp: u64, score: f64) {
        if self.map.contains_key(&fp) {
            self.map.get_mut(&fp).expect("entry exists").0 = score;
            self.touch(fp);
            return;
        }
        let t = self.tick;
        self.tick += 1;
        self.map.insert(fp, (score, t));
        self.recency.insert(t, fp);
        while self.map.len() > self.max_entries {
            let (&victim_tick, &victim_fp) =
                self.recency.iter().next().expect("recency tracks map");
            self.recency.remove(&victim_tick);
            self.map.remove(&victim_fp);
            self.evictions += 1;
        }
    }

    /// Look up a score, refreshing the entry's recency.
    pub fn get(&mut self, fp: u64) -> Option<f64> {
        let score = self.map.get(&fp).map(|&(s, _)| s)?;
        self.touch(fp);
        Some(score)
    }

    /// Snapshot the namespace into a plain cross-run [`ScoreCache`]
    /// (the copy a diagnosis run is seeded with).
    pub fn to_score_cache(&self) -> ScoreCache {
        let mut out = ScoreCache::new();
        for (&fp, &(score, _)) in &self.map {
            out.insert(fp, score);
        }
        out
    }

    /// Fold a run's exported [`ScoreCache`] back in, in fingerprint
    /// order (deterministic recency among the new entries), evicting
    /// under the budget as usual. Returns how many entries were new.
    pub fn absorb(&mut self, cache: &ScoreCache) -> usize {
        let mut entries: Vec<(u64, f64)> = cache.iter().collect();
        entries.sort_unstable_by_key(|&(fp, _)| fp);
        let before = self.map.len() + self.evictions as usize;
        for (fp, score) in entries {
            self.insert(fp, score);
        }
        self.map.len() + self.evictions as usize - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_touch() {
        let mut lru = LruScoreCache::with_budget(ENTRY_COST_BYTES * 8);
        assert_eq!(lru.capacity(), 8);
        lru.insert(1, 0.5);
        lru.insert(2, 0.25);
        assert_eq!(lru.get(1), Some(0.5));
        assert_eq!(lru.get(3), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.footprint_bytes(), 2 * ENTRY_COST_BYTES);
    }

    #[test]
    fn evicts_least_recently_used_under_budget() {
        let mut lru = LruScoreCache::with_budget(ENTRY_COST_BYTES * 3);
        lru.insert(1, 0.1);
        lru.insert(2, 0.2);
        lru.insert(3, 0.3);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(lru.get(1), Some(0.1));
        lru.insert(4, 0.4);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions, 1);
        assert_eq!(lru.get(2), None, "LRU entry evicted");
        assert_eq!(lru.get(1), Some(0.1));
        assert_eq!(lru.get(4), Some(0.4));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut lru = LruScoreCache::with_budget(ENTRY_COST_BYTES * 2);
        lru.insert(1, 0.1);
        lru.insert(2, 0.2);
        lru.insert(1, 0.9); // refresh: now 2 is the victim
        lru.insert(3, 0.3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(1), Some(0.9));
        assert_eq!(lru.get(2), None);
    }

    #[test]
    fn copy_out_copy_in_round_trip() {
        let mut lru = LruScoreCache::with_budget(ENTRY_COST_BYTES * 16);
        lru.insert(10, 0.5);
        lru.insert(20, 0.75);
        let snap = lru.to_score_cache();
        assert_eq!(snap.len(), 2);
        let mut other = LruScoreCache::with_budget(ENTRY_COST_BYTES * 16);
        assert_eq!(other.absorb(&snap), 2);
        assert_eq!(other.absorb(&snap), 0, "re-absorb adds nothing");
        assert_eq!(other.get(20), Some(0.75));
    }

    #[test]
    fn tiny_budget_still_holds_one_entry() {
        let mut lru = LruScoreCache::with_budget(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1, 0.1);
        lru.insert(2, 0.2);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(2), Some(0.2));
    }
}
