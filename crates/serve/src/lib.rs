//! `dp_serve` — a long-lived DataPrism diagnosis daemon.
//!
//! The paper's tools are batch programs: build the datasets, run one
//! diagnosis, exit — and every run re-pays every system evaluation.
//! This crate keeps the expensive state resident instead. A daemon
//! holds named *systems* (instances of the bundled evaluation
//! scenarios), each with its own server-resident fingerprint → score
//! cache namespace, and serves diagnosis requests over a
//! line-delimited JSON protocol on plain TCP (no external
//! dependencies).
//!
//! The headline property is **exact warm-starting**: systems are
//! deterministic functions of dataset content, and every charged
//! oracle query of a traced run is recorded with its fingerprint and
//! score in exact encodings — so a namespace warmed from a prior
//! run's trace (or from its own previous request) serves later
//! diagnoses that are *bit-identical* to cold ones, just cheaper.
//! `tests/serve_conformance.rs` (repo root) pins this across every
//! scenario × algorithm × thread count × warmth combination.
//!
//! Pieces:
//!
//! * [`protocol`] — request/response line formats, typed error codes.
//! * [`registry`] — named systems, per-system cache namespaces.
//! * [`lru`] — the budgeted LRU each namespace runs under.
//! * [`server`] — accept loop, admission control, graceful shutdown
//!   with snapshot flush/reload.
//! * [`prom`] — the Prometheus text-format scrape behind `metrics`.
//! * [`client`] — a minimal blocking client (CLI + tests).
//!
//! Beyond one-shot diagnosis, a namespace can be put under
//! **continuous monitoring** (`watch` → `ingest` → `drift`): the
//! server keeps `dp_monitor` live sketches over the appended batches
//! and escalates drifted profiles into a targeted re-diagnosis that
//! reuses the namespace's warm cache.
//!
//! Quick tour (in-process):
//!
//! ```
//! use dp_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.register("ex", "example1", None, None).unwrap();
//! let cold = client.diagnose("ex", "greedy", None).unwrap();
//! let warm = client.diagnose("ex", "greedy", None).unwrap();
//! // Same explanation, bit for bit…
//! assert_eq!(cold.get("digest").unwrap().as_u64(),
//!            warm.get("digest").unwrap().as_u64());
//! // …but the second run hit the server-resident cache.
//! assert!(warm.get("warm_hits").unwrap().as_u64().unwrap() > 0);
//! client.shutdown().unwrap();
//! server.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod lru;
pub mod prom;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{field_u64, is_ok, Client};
pub use lru::{LruScoreCache, ENTRY_COST_BYTES};
pub use protocol::{Algo, ErrorCode, Request, MAX_REQUEST_BYTES};
pub use registry::{Registry, SCENARIOS};
pub use server::{ServeConfig, Server, DEFAULT_BUDGET_BYTES};
